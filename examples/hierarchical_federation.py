"""Sharded, hierarchical, robust, resumable federation — the full topology stack.

This example runs the same federated fine-tuning job three production knobs
away from the flat defaults:

* **4 expert shards** (:class:`~repro.federated.ShardedParameterServer`): the
  server's ``ExpertKey`` space is partitioned round-robin, each shard folding
  its own streaming aggregator — bit-identical parameters, sharded state.
* **2-tier aggregation** (``num_edge_aggregators=3``): participants upload to
  edge aggregators, which pre-fold their group's updates and forward one
  wire-framed partial aggregate per expert over a metered edge→root channel.
  The per-round backhaul traffic surfaces as ``RoundResult.edge_bytes``.
  Because every participant has a cost model, the participant→edge assignment
  is **cost-aware** by default: a greedy bin-pack on upload cost balances the
  per-edge upload makespan instead of ``pid % num_edges``.
* **Trimmed-mean aggregation** (``aggregation="trimmed_mean"``): per
  coordinate, the extreme contributions are trimmed before averaging —
  robust to corrupted or adversarial clients.

It then scales the topology to a **3-tier parallel tree**
(``edge_tiers=(3, 2)``: participants → 3 edges → 2 super-edges → root) with
the whole fold plane behind a process pool
(``aggregation_executor="process"``): expert shards fold concurrently and
tier-0 nodes pre-fold their subtree in workers — bit-identical to the serial
fold, with per-tier backhaul metrics in ``RoundResult.tier_bytes``.

On top of that the run is **durable**: every 2 rounds the full run state
(model, metrics, RNG streams, per-tier channel positions, scheduler position)
is checkpointed — with ``checkpoint_keep_last=2`` pruning older snapshots —
the run is "killed" halfway, resumed from the latest snapshot, and the
resumed result is verified to match an uninterrupted reference run exactly.

With ``--trace-dir DIR`` the 3-tier parallel run also records full telemetry
(:mod:`repro.obs`): a JSONL span/metrics event log, a Chrome trace you can
open in Perfetto (ui.perfetto.dev), and a Prometheus text snapshot — then
prints the per-round breakdown table (``scripts/run_report.py`` renders the
rest).

Run with:  python examples/hierarchical_federation.py [--trace-dir traces/]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro import (
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    make_gsm8k_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.runtime import latest_checkpoint
from repro.systems import CostModel, MemoryModel, heterogeneous_fleet

NUM_ROUNDS = 4
CHECKPOINT_EVERY = 2


def build_tuner(run_config: RunConfig, num_clients: int = 12, seed: int = 0):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=240, seed=seed)
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    devices = heterogeneous_fleet(num_clients, seed=seed, spread=0.5)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for pid, (shard, device) in enumerate(zip(shards, devices)):
        participants.append(Participant(
            pid, train.subset(shard), device=device,
            resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
            seed=seed + pid))
        cost_models[pid] = CostModel(device, memory)
    server = ParameterServer(MoETransformer(config))
    return FMDFineTuner(server, participants, test, cost_models=cost_models,
                        config=run_config)


def topology_config(checkpoint_dir: str | None = None, **overrides) -> RunConfig:
    knobs = dict(
        batch_size=8, max_local_batches=1, learning_rate=1e-2,
        eval_max_samples=24, seed=0, participants_per_round=6,
        # --- the aggregation topology ---
        num_shards=4,
        num_edge_aggregators=3,
        edge_latency_s=0.01,
        aggregation="trimmed_mean",
        trim_ratio=0.2,
        # --- durability ---
        checkpoint_every=CHECKPOINT_EVERY if checkpoint_dir else 0,
        checkpoint_dir=checkpoint_dir,
        checkpoint_keep_last=2,
    )
    knobs.update(overrides)
    return RunConfig(**knobs)


def three_tier_parallel_config(checkpoint_dir: str | None = None,
                               trace_dir: str | None = None) -> RunConfig:
    """The 3-tier tree with the fold plane behind the process pool."""
    return topology_config(
        checkpoint_dir,
        num_edge_aggregators=0,            # superseded by the explicit tiers
        edge_tiers=(3, 2),                 # participants -> 3 edges -> 2 super-edges -> root
        aggregation_executor="process",    # pooled shard folds + tier-0 pre-folds
        aggregation_workers=2,
        telemetry=trace_dir is not None,
        telemetry_dir=trace_dir,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default=None,
                        help="record repro.obs telemetry for the 3-tier "
                             "parallel run into this directory")
    args = parser.parse_args(argv)

    print(f"reference: uninterrupted {NUM_ROUNDS}-round run "
          "(4 shards, 3 edges, trimmed mean)")
    reference_tuner = build_tuner(topology_config())
    reference = reference_tuner.run(num_rounds=NUM_ROUNDS)

    print(f"{'round':>6} {'metric':>8} {'loss':>8} {'edge KiB':>9} {'edge s':>7}")
    for r in reference.rounds:
        print(f"{r.round_index:>6} {r.metric_value:>8.3f} {r.train_loss:>8.3f} "
              f"{r.edge_bytes / 1024:>9.1f} {r.edge_seconds:>7.2f}")

    sharded = reference_tuner.server
    print(f"\nshard load (updates folded in the last round): "
          f"{sharded.last_shard_contributions}")
    print(f"edge tier (client updates folded per edge, last round): "
          f"{reference_tuner.topology.last_edge_counts}")
    print(f"edge grouping: {reference_tuner.topology.grouping.name} "
          "(greedy bin-pack on each participant's upload cost)")

    print("\n3-tier parallel tree: participants -> 3 edges -> 2 super-edges "
          "-> 4 shards, folds in a process pool"
          + (" (telemetry on)" if args.trace_dir else ""))
    parallel_tuner = build_tuner(three_tier_parallel_config(
        trace_dir=args.trace_dir))
    parallel = parallel_tuner.run(num_rounds=2)
    print(f"topology: {parallel_tuner.topology.describe()}")
    for r in parallel.rounds:
        per_tier = ", ".join(
            f"tier{k}: {bytes_ / 1024:.1f} KiB / {payloads} partials"
            for k, (bytes_, payloads) in enumerate(zip(r.tier_bytes,
                                                       r.tier_payloads)))
        print(f"  round {r.round_index}: {per_tier}")

    if args.trace_dir:
        from repro.obs import JSONL_FILE, format_table, load_events, round_table

        events = load_events(os.path.join(args.trace_dir, JSONL_FILE))
        print(f"\ntelemetry written to {args.trace_dir}/ "
              "(trace.jsonl, trace_chrome.json for Perfetto, metrics.prom)")
        headers, rows = round_table(events)
        print(format_table(headers, rows))

    with tempfile.TemporaryDirectory(prefix="hier-fed-ckpt-") as workdir:
        checkpoint_dir = os.path.join(workdir, "checkpoints")
        print(f"\ndurable run: checkpoint every {CHECKPOINT_EVERY} rounds "
              f"(keeping the newest 2), 'killed' after round {CHECKPOINT_EVERY}")
        killed = build_tuner(topology_config(checkpoint_dir))
        killed.run(num_rounds=CHECKPOINT_EVERY)  # the coordinator dies here

        snapshot = latest_checkpoint(checkpoint_dir)
        print(f"resuming from {os.path.basename(snapshot)} "
              f"to round {NUM_ROUNDS}")
        resumed_tuner = build_tuner(topology_config(checkpoint_dir))
        resumed = resumed_tuner.run(num_rounds=NUM_ROUNDS, resume_from=snapshot)

    matches = resumed.tracker.as_series() == reference.tracker.as_series()
    print(f"\nresumed run == uninterrupted run: {matches}")
    if not matches:
        raise SystemExit("resume mismatch — this should never happen")
    print(f"final metric {resumed.final_metric():.3f} after "
          f"{len(resumed.rounds)} rounds, "
          f"total simulated time {resumed.total_time:.1f}s")


if __name__ == "__main__":
    main()
