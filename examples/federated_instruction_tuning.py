"""Federated instruction tuning scenario (Dolly-like workload).

This example mirrors the paper's motivating deployment: organisations hold
private instruction-following data (here the Dolly-like generation task), their
GPUs cannot fit all experts for fine-tuning, and they collaborate through a
parameter server.  It runs Flux end to end, prints the ROUGE-L trajectory, and
shows the per-phase time breakdown of a round (profiling / merging /
assignment / training / communication) that the paper's overhead analysis
reports.

Run with:  python examples/federated_instruction_tuning.py
"""

from __future__ import annotations

from repro import (
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    llama_moe_mini,
    make_dolly_like,
    partition_dirichlet,
)
from repro.core import EpsilonSchedule
from repro.metrics import evaluate_model
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel


def main() -> None:
    vocab = Vocabulary(size=256, num_topics=8)
    config = llama_moe_mini(vocab_size=vocab.size)

    dataset = make_dolly_like(vocab=vocab, num_samples=500, seed=3)
    train, test = dataset.split(seed=3)
    num_clients = 6
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=3)

    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for pid, shard in enumerate(shards):
        participants.append(Participant(
            pid, train.subset(shard),
            resources=ParticipantResources(max_experts=12, max_tuning_experts=6),
            seed=pid))
        cost_models[pid] = CostModel(CONSUMER_GPU, memory)

    server = ParameterServer(MoETransformer(config))
    initial_rouge = evaluate_model(server.global_model, test, max_samples=60)
    print(f"ROUGE-L of the pre-trained (untuned) global model: {initial_rouge:.3f}")

    tuner = FluxFineTuner(
        server, participants, test,
        cost_models=cost_models,
        config=RunConfig(batch_size=16, max_local_batches=3, learning_rate=1e-2,
                         eval_max_samples=60),
        flux_config=FluxConfig(
            profiling_bits=4,
            stale_profiling=True,
            epsilon=EpsilonSchedule(initial=0.5, final=0.95, warmup_rounds=5)),
    )
    result = tuner.run(num_rounds=8)

    print("\nROUGE-L over federated rounds:")
    for entry in result.tracker.history:
        bar = "#" * int(entry.metric_value * 40)
        print(f"  round {entry.round_index}: {entry.metric_value:.3f} "
              f"({entry.simulated_time:7.1f}s simulated) {bar}")

    print("\nwhere the time goes (totals across the run):")
    totals = result.timeline.phase_totals()
    overall = sum(totals.values()) or 1.0
    for phase, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:>14}: {seconds:8.1f}s ({seconds / overall * 100:5.1f}%)")

    final_rouge = result.tracker.final_metric()
    print(f"\nROUGE-L improved from {initial_rouge:.3f} to {final_rouge:.3f} "
          f"in {result.total_time:.1f} simulated seconds")


if __name__ == "__main__":
    main()
