"""Model surgery with the customized-MoE and merging APIs.

Demonstrates the lower-level building blocks Flux is made of, mirroring the
paper's implementation section (§7):

* ``customized_moe`` — rebuild a model with a different number of experts per
  layer (the ``Flux.moe.customized_moe`` API);
* ``save_checkpoint`` / ``load_model`` — load pre-trained parameters into a
  customized architecture (the ``Flux.moe.load_model`` API);
* quantized profiling, adaptive merge planning and gate re-routing — build the
  compact model a Flux participant actually fine-tunes, and measure how close
  its outputs stay to the full model.

Run with:  python examples/customized_moe_surgery.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import (
    FluxConfig,
    MoETransformer,
    Vocabulary,
    customized_moe,
    llama_moe_mini,
    load_model,
    make_dolly_like,
    save_checkpoint,
)
from repro.analysis import output_error
from repro.core import QuantizedProfiler, build_compact_model, plan_compact_model
from repro.data import make_batches


def main() -> None:
    vocab = Vocabulary(size=256, num_topics=8)
    config = llama_moe_mini(vocab_size=vocab.size)
    model = MoETransformer(config)
    print(f"original model: {model.local_experts_per_layer()} experts per layer, "
          f"{model.num_parameters():,} parameters")

    # --- customized_moe: different expert scale per layer ------------------
    custom = customized_moe(model, [8, 6, 4, 2])
    print(f"customized model: {custom.local_experts_per_layer()} experts per layer, "
          f"{custom.num_parameters():,} parameters")

    # --- checkpointing into a customized architecture ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "llama_moe_mini.npz")
        save_checkpoint(model, path)
        reloaded = load_model(path, exps_config={0: 4, 1: 4})
        print(f"checkpoint reloaded with per-layer override: "
              f"{reloaded.local_experts_per_layer()} experts per layer")

    # --- quantized profiling + adaptive merging + gate re-routing ----------
    dataset = make_dolly_like(vocab=vocab, num_samples=160, seed=2)
    batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                           max_seq_len=config.max_seq_len)
    outcome = QuantizedProfiler(bits=4).profile(model, batches)
    profile = outcome.profile
    print("\nper-layer activation variance:",
          [round(float(v), 5) for v in profile.layer_variance()])

    # keep the two most active experts of each layer as tuning experts
    tuning = {layer: list(np.argsort(-freq)[:2].astype(int))
              for layer, freq in enumerate(profile.frequencies)}
    flux_config = FluxConfig(layer_budget_strategy="adaptive",
                             merging_strategy="attention_frequency")
    plan = plan_compact_model(model, tuning, profile, max_non_tuning_slots=8,
                              config=flux_config)
    compact, tuning_slots, _ = build_compact_model(model, plan, profile, flux_config)

    print("\ncompact model plan:")
    for layer in range(model.num_layers):
        print(f"  layer {layer}: tuning={plan.tuning_experts[layer]} "
              f"merged clusters={plan.clusters[layer]} "
              f"(budget {plan.layer_budgets[layer]})")
    print(f"compact model holds {sum(compact.local_experts_per_layer())} experts "
          f"instead of {sum(model.local_experts_per_layer())}")

    error = output_error(model, compact, batches[:3])
    print(f"forward output error of the compact model vs the full model: {error:.4f}")
    print(f"trainable expert slots: {sorted(tuning_slots.keys())}")


if __name__ == "__main__":
    main()
