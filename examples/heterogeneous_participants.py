"""Heterogeneous participants: per-device expert budgets and role assignment.

The paper's setting has participants with very different compute (consumer
GPUs of various sizes).  This example derives each participant's expert
budgets B_i / B_tune_i from its device profile and the full-scale DeepSeek-MoE
memory model, runs Flux, and shows how the role-assignment module gives
stronger devices more tuning experts while the slowest device still bounds the
synchronous round time.

Run with:  python examples/heterogeneous_participants.py
"""

from __future__ import annotations


from repro import (
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    deepseek_moe_mini,
    make_mmlu_like,
    partition_dirichlet,
)
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CostModel, MemoryModel, heterogeneous_fleet


def main() -> None:
    vocab = Vocabulary(size=256, num_topics=8)
    config = deepseek_moe_mini(vocab_size=vocab.size, n_layers=3)
    total_experts = sum(config.experts_per_layer())

    dataset = make_mmlu_like(vocab=vocab, num_samples=400, seed=1)
    train, test = dataset.split(seed=1)
    num_clients = 6
    shards = partition_dirichlet(train, num_clients, alpha=0.3, seed=1)

    # A fleet of consumer GPUs whose compute varies by +-50%.
    devices = heterogeneous_fleet(num_clients, seed=1, spread=0.5)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["deepseek-moe"])

    participants, cost_models = [], {}
    print(f"{'participant':>12} {'device tflops':>14} {'B_i (full scale)':>18} "
          f"{'B_i (mini)':>12} {'B_tune (mini)':>14}")
    for pid, (shard, device) in enumerate(zip(shards, devices)):
        # Full-scale budgets from the device profile...
        full_scale = ParticipantResources.from_device(memory, device,
                                                      round_time_budget_s=600.0,
                                                      tokens_per_round=16 * 256)
        # ...mapped proportionally onto the mini model's expert count.
        scale = total_experts / memory.num_experts_total
        max_experts = max(int(full_scale.max_experts * scale), config.n_layers * 2)
        max_tuning = max(int(full_scale.max_tuning_experts * scale), 2)
        max_tuning = min(max_tuning, max_experts - config.n_layers)
        resources = ParticipantResources(max_experts=min(max_experts, total_experts),
                                         max_tuning_experts=max_tuning)
        print(f"{pid:>12} {device.compute_tflops:>14.1f} {full_scale.max_experts:>18} "
              f"{resources.max_experts:>12} {resources.max_tuning_experts:>14}")
        participants.append(Participant(pid, train.subset(shard), device=device,
                                        resources=resources, seed=pid))
        cost_models[pid] = CostModel(device, memory)

    server = ParameterServer(MoETransformer(config))
    tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                          config=RunConfig(batch_size=16, max_local_batches=2,
                                           learning_rate=1e-2, eval_max_samples=48),
                          flux_config=FluxConfig())
    result = tuner.run(num_rounds=4)

    print("\nper-round durations (bounded by the slowest participant):")
    for round_result in result.rounds:
        slowest = max(round_result.timeline.participant_times.values())
        print(f"  round {round_result.round_index}: duration {round_result.round_duration:.1f}s "
              f"(slowest participant {slowest:.1f}s, metric {round_result.metric_value:.3f})")

    assignments = tuner.current_assignments()
    print("\ntuning experts assigned in the final round:")
    for pid, assignment in sorted(assignments.items()):
        print(f"  participant {pid}: {len(assignment.exploitation)} tuning, "
              f"{len(assignment.exploration)} exploration "
              f"(epsilon={assignment.epsilon:.2f})")


if __name__ == "__main__":
    main()
