"""Asynchronous and semi-synchronous federation with the event-driven runtime.

The synchronous FedAvg round is gated by its slowest participant: one
straggling device stalls everyone.  This example runs the same federation —
heterogeneous devices, 10% stragglers at 4x slowdown, 5% dropouts — under the
three aggregation policies of :mod:`repro.runtime`:

* ``sync``      — the paper's synchronous loop (slowest participant gates);
* ``semisync``  — aggregate whoever finished by the round deadline
                  (the 70%-duration quantile here), drop stragglers;
* ``async``     — FedBuff-style buffered aggregation: clients train
                  continuously, updates are weighted by
                  ``(1 + staleness) ** -0.5``, the server aggregates every
                  ``buffer_size`` arrivals.

and prints simulated time-to-accuracy for each, plus the per-round staleness
the asynchronous run observed.

Run with:  python examples/async_federation.py
"""

from __future__ import annotations

from repro import (
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    make_gsm8k_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CostModel, MemoryModel, heterogeneous_fleet


def build_federation(num_clients: int = 12, seed: int = 0):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=240, seed=seed)
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    devices = heterogeneous_fleet(num_clients, seed=seed, spread=0.5)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for pid, (shard, device) in enumerate(zip(shards, devices)):
        participants.append(Participant(
            pid, train.subset(shard), device=device,
            resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
            seed=seed + pid))
        cost_models[pid] = CostModel(device, memory)
    return config, participants, test, cost_models


def run_policy(scheduler: str, num_rounds: int = 6, seed: int = 0, **runtime_knobs):
    config, participants, test, cost_models = build_federation(seed=seed)
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, learning_rate=1e-2,
        eval_max_samples=24, seed=seed,
        participants_per_round=6,
        scheduler=scheduler,
        straggler_prob=0.10, straggler_slowdown=4.0, dropout_prob=0.05,
        **runtime_knobs,
    )
    server = ParameterServer(MoETransformer(config))
    tuner = FMDFineTuner(server, participants, test, cost_models=cost_models,
                         config=run_config)
    return tuner.run(num_rounds=num_rounds)


def main() -> None:
    runs = {
        "sync": run_policy("sync"),
        "semisync": run_policy("semisync", deadline_quantile=0.7),
        "async": run_policy("async", buffer_size=4, staleness_exponent=0.5),
    }

    # Common quality target: 95% of the weakest policy's best metric.
    target = 0.95 * min(r.tracker.best_metric() for r in runs.values())
    print(f"{'policy':>10} {'rounds':>7} {'total sim time':>15} "
          f"{'time to target':>15} {'best metric':>12}")
    for name, result in runs.items():
        reached = result.tracker.time_to_target(target)
        reached_text = f"{reached:.1f}s" if reached is not None else "never"
        print(f"{name:>10} {len(result.rounds):>7} {result.total_time:>14.1f}s "
              f"{reached_text:>15} {result.tracker.best_metric():>12.3f}")

    print("\nsemi-sync straggler handling (per round):")
    for round_result in runs["semisync"].rounds:
        print(f"  round {round_result.round_index}: "
              f"{round_result.num_aggregated}/{round_result.num_selected} aggregated, "
              f"{round_result.num_stragglers} dropped at the deadline, "
              f"duration {round_result.round_duration:.1f}s")

    print("\nasync staleness (per aggregation):")
    for round_result in runs["async"].rounds:
        print(f"  aggregation {round_result.round_index}: "
              f"{round_result.num_aggregated} buffered updates, "
              f"mean staleness {round_result.mean_staleness:.2f} versions, "
              f"at simulated t={round_result.simulated_time:.1f}s")


if __name__ == "__main__":
    main()
