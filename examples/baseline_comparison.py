"""Compare Flux against the FMD / FMQ / FMES baselines on one dataset.

Reproduces the shape of the paper's headline result at example scale: all four
methods fine-tune the same global model on the same non-IID federation, and the
script reports each method's best metric, total simulated time and
time-to-accuracy (the paper's primary metric).

Run with:  python examples/baseline_comparison.py [dataset]
           (dataset is one of dolly / gsm8k / mmlu / piqa; default gsm8k)
"""

from __future__ import annotations

import sys

from repro import (
    FMDFineTuner,
    FMESFineTuner,
    FMQFineTuner,
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    llama_moe_mini,
    make_dataset,
    partition_dirichlet,
)
from repro.core import EpsilonSchedule
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

METHODS = {
    "fmd": FMDFineTuner,
    "fmq": FMQFineTuner,
    "fmes": FMESFineTuner,
    "flux": FluxFineTuner,
}


def build_federation(dataset_name: str, num_clients: int = 8, seed: int = 0):
    vocab = Vocabulary(size=256, num_topics=8)
    config = llama_moe_mini(vocab_size=vocab.size)
    dataset = make_dataset(dataset_name, vocab=vocab, num_samples=400, seed=seed)
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for pid, shard in enumerate(shards):
        participants.append(Participant(
            pid, train.subset(shard),
            resources=ParticipantResources(max_experts=12, max_tuning_experts=6),
            seed=seed + pid))
        cost_models[pid] = CostModel(CONSUMER_GPU, memory)
    return config, participants, test, cost_models


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "gsm8k"
    rounds = 8
    config, participants, test, cost_models = build_federation(dataset_name)
    run_config = RunConfig(batch_size=16, max_local_batches=3, learning_rate=1e-2,
                           eval_max_samples=60)

    results = {}
    for name, cls in METHODS.items():
        server = ParameterServer(MoETransformer(config))
        if name == "flux":
            tuner = cls(server, participants, test, cost_models=cost_models, config=run_config,
                        flux_config=FluxConfig(
                            epsilon=EpsilonSchedule(initial=0.5, final=0.95, warmup_rounds=5)))
        else:
            tuner = cls(server, participants, test, cost_models=cost_models, config=run_config)
        print(f"running {name} for {rounds} rounds ...")
        results[name] = tuner.run(num_rounds=rounds)

    # Quality target: 85% of the best metric reached by full fine-tuning (FMD).
    target = results["fmd"].tracker.best_metric() * 0.85
    print(f"\ndataset: {dataset_name}   quality target: {target:.3f}")
    print(f"{'method':>8} {'best metric':>12} {'total sim time':>16} {'time to target':>16}")
    for name, result in results.items():
        reached = result.tracker.time_to_target(target)
        reached_text = f"{reached:.1f}s" if reached is not None else "not reached"
        print(f"{name:>8} {result.tracker.best_metric():>12.3f} "
              f"{result.total_time:>15.1f}s {reached_text:>16}")

    flux_time = results["flux"].tracker.time_to_target(target)
    fmd_time = results["fmd"].tracker.time_to_target(target)
    if flux_time and fmd_time:
        print(f"\nFlux time-to-accuracy speedup over FMD: {fmd_time / flux_time:.2f}x")


if __name__ == "__main__":
    main()
