"""Parameter-efficient and privacy-enhanced federated fine-tuning.

Two optional extensions the paper mentions in passing (§3, §7) and this
repository implements fully:

* **LoRA adapters on experts** — participants train and exchange only low-rank
  adapter matrices instead of full expert weights, shrinking upload size.
* **Differentially-private uploads** — each expert update is clipped and noised
  with the Gaussian mechanism before leaving the participant.

The example wraps every expert of a mini model with LoRA, trains locally on one
participant's shard, privatizes the adapter deltas, and reports the parameter
savings and the (rough) privacy guarantee.

Run with:  python examples/lora_and_privacy.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MoETransformer,
    Participant,
    ParticipantResources,
    Vocabulary,
    llama_moe_mini,
    make_dolly_like,
)
from repro.autograd import Adam
from repro.federated import ExpertUpdate, GaussianMechanism, epsilon_estimate
from repro.models import apply_lora_to_experts, lora_parameter_savings


def main() -> None:
    vocab = Vocabulary(size=256, num_topics=8)
    config = llama_moe_mini(vocab_size=vocab.size)
    model = MoETransformer(config)

    dataset = make_dolly_like(vocab=vocab, num_samples=200, seed=5)
    train, _ = dataset.split(seed=5)
    participant = Participant(0, train,
                              resources=ParticipantResources(max_experts=12,
                                                              max_tuning_experts=6))

    # 1. Wrap every expert with rank-2 LoRA adapters (base weights frozen).
    adapters = apply_lora_to_experts(model, rank=2, alpha=8.0, seed=0)
    savings = lora_parameter_savings(model, rank=2)
    print(f"experts wrapped with LoRA: {len(adapters)}")
    print(f"per-expert upload reduction from exchanging adapters only: {savings * 100:.1f}%")

    # 2. Local fine-tuning of the adapters (plus the dense trunk stays frozen).
    for name, param in model.named_parameters():
        if "lora_" not in name:
            param.requires_grad = False
    trainable = [p for p in model.parameters() if p.requires_grad]
    optimizer = Adam(trainable, lr=5e-3)
    batches = participant.local_batches(16, max_batches=3, max_seq_len=config.max_seq_len)
    for batch in batches:
        optimizer.zero_grad()
        loss = model.compute_loss(batch.input_ids, labels=batch.labels,
                                  attention_mask=batch.attention_mask)
        loss.backward()
        optimizer.step()
    print(f"local LoRA fine-tuning loss: {loss.item():.3f}")

    # 3. Privatize the adapter states before upload.
    mechanism = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.8, seed=0)
    updates = []
    for (layer, expert), lora_expert in list(adapters.items())[:4]:
        updates.append(ExpertUpdate(participant_id=0, layer=layer, expert=expert,
                                    state=lora_expert.adapter_state(), weight=1.0))
    privatized = mechanism.privatize_updates(updates)
    raw_norm = np.linalg.norm(np.concatenate(
        [v.reshape(-1) for u in updates for v in u.state.values()]))
    private_norm = np.linalg.norm(np.concatenate(
        [v.reshape(-1) for u in privatized for v in u.state.values()]))
    print(f"adapter update norm before/after privatization: {raw_norm:.3f} -> {private_norm:.3f}")

    epsilon = epsilon_estimate(noise_multiplier=0.8, num_rounds=20, sample_rate=0.5)
    print(f"rough privacy guarantee after 20 rounds (delta=1e-5): epsilon ≈ {epsilon:.2f}")


if __name__ == "__main__":
    main()
