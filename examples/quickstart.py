"""Quickstart: federated fine-tuning of a mini MoE LLM with Flux.

Builds a small federation (non-IID GSM8K-like data across 4 participants with
constrained expert budgets), runs a few Flux rounds, and prints the
round-by-round metric together with the simulated wall-clock time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    llama_moe_mini,
    make_gsm8k_like,
    partition_dirichlet,
)
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel


def main() -> None:
    # 1. Model: a scaled-down LLaMA-MoE-like transformer (4 MoE layers x 8 experts).
    vocab = Vocabulary(size=256, num_topics=8)
    config = llama_moe_mini(vocab_size=vocab.size)
    server = ParameterServer(MoETransformer(config))

    # 2. Data: synthetic GSM8K-like problems, split and partitioned non-IID.
    dataset = make_gsm8k_like(vocab=vocab, num_samples=400, seed=0)
    train, test = dataset.split(seed=0)
    shards = partition_dirichlet(train, num_clients=4, alpha=0.5, seed=0)

    # 3. Participants: consumer-GPU devices that can hold 12 experts and tune 6.
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants = []
    cost_models = {}
    for pid, shard in enumerate(shards):
        participants.append(Participant(
            pid, train.subset(shard),
            resources=ParticipantResources(max_experts=12, max_tuning_experts=6),
            seed=pid,
        ))
        cost_models[pid] = CostModel(CONSUMER_GPU, memory)

    # 4. Flux fine-tuner: quantized stale profiling, adaptive merging, dynamic roles.
    tuner = FluxFineTuner(
        server, participants, test,
        cost_models=cost_models,
        config=RunConfig(batch_size=16, max_local_batches=3, learning_rate=1e-2,
                         eval_max_samples=60),
        flux_config=FluxConfig(profiling_bits=4, stale_profiling=True),
    )
    result = tuner.run(num_rounds=6)

    # 5. Inspect the outcome.
    print(f"method: {result.method}")
    print(f"{'round':>6} {'sim time (s)':>14} {'accuracy':>10} {'rel. accuracy':>14}")
    for entry in result.tracker.history:
        print(f"{entry.round_index:>6} {entry.simulated_time:>14.1f} "
              f"{entry.metric_value:>10.3f} {entry.relative_accuracy:>14.3f}")
    reached = result.tracker.time_to_target()
    if reached is not None:
        print(f"target reached after {reached:.1f} simulated seconds")
    else:
        print("target not reached yet - increase num_rounds for full convergence")


if __name__ == "__main__":
    main()
