#!/usr/bin/env python
"""Render per-round / per-tier breakdown tables from a telemetry trace.

Reads the JSONL event log a run wrote under ``RunConfig(telemetry=True,
telemetry_dir=...)`` and prints:

* a **per-round** table — wall/simulated duration and the
  select/train/transfer/fold/checkpoint wall-time breakdown (the trace-level
  analogue of the paper's overhead-breakdown figure);
* a **per-tier** table — backhaul bytes/payloads per aggregation tier;
* an **aggregation service** table — ``repro_service_*`` fold-plane counters
  (per-tier service folds, per-codec wire frame bytes, reference bytes,
  transport totals), for runs with ``aggregation_executor="service"``;
* run-wide **totals** and a per-span-**category** summary.

Usage::

    python scripts/run_report.py <telemetry-dir-or-trace.jsonl> [--tables round,tier]

The argument may be the telemetry directory itself (``trace.jsonl`` is found
inside) or a direct path to the JSONL file.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import (  # noqa: E402
    JSONL_FILE,
    category_table,
    format_table,
    load_events,
    round_table,
    service_table,
    tier_table,
    totals_table,
)

TABLES = {
    "round": ("Per-round breakdown", round_table),
    "tier": ("Per-tier backhaul", tier_table),
    "service": ("Aggregation service", service_table),
    "totals": ("Run totals", totals_table),
    "category": ("Span categories", category_table),
}


def resolve_trace_path(path: str) -> str:
    if os.path.isdir(path):
        path = os.path.join(path, JSONL_FILE)
    if not os.path.exists(path):
        raise SystemExit(f"no trace found at {path!r} — run with "
                         "RunConfig(telemetry=True, telemetry_dir=...) first")
    return path


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("trace", help="telemetry directory or trace.jsonl path")
    parser.add_argument("--tables", default="round,tier,service,totals,category",
                        help="comma-separated subset of: "
                             + ", ".join(TABLES))
    args = parser.parse_args(argv)

    wanted = [name.strip() for name in args.tables.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in TABLES]
    if unknown:
        parser.error(f"unknown table(s) {unknown} (expected {sorted(TABLES)})")

    events = load_events(resolve_trace_path(args.trace))
    for name in wanted:
        title, builder = TABLES[name]
        headers, rows = builder(events)
        print(f"== {title} ==")
        print(format_table(headers, rows))
        print()


if __name__ == "__main__":
    main()
