"""CI resume-smoke: kill a federated run mid-flight, resume it, assert equality.

For every configuration in the matrix, three phases:

1. **reference** — an uninterrupted ``NUM_ROUNDS``-round run (in-process).
2. **kill** — the same run re-launched as a *subprocess* with checkpointing
   enabled; the child hard-exits via ``os._exit`` (no cleanup, no atexit —
   the closest a Python process gets to SIGKILL) at the start of round
   ``KILL_AT_ROUND``.  Only the on-disk snapshot survives.
3. **resume** — a fresh tuner resumes from the latest surviving snapshot and
   finishes the run; its :class:`~repro.federated.RunResult` and final model
   parameters must match the reference *exactly*.

Matrix:

* ``sharded-edges`` — 2 expert shards, one edge tier, trimmed mean (the
  historical smoke).
* ``pooled-tree`` — 3-tier aggregation tree (participants → 2 edges →
  2 super-edges → root), 2 shards, and the whole fold plane behind the
  process-pool ``AggregationPool`` — the kill lands while a pool is live, so
  resume also proves no pool state is (or needs to be) durable.
* ``delta-chain`` — snapshots every round as a sparse-delta chain
  (``checkpoint_delta_every=4``: full at round 1, deltas after) written by
  the background checkpoint writer (``checkpoint_async=True``); the hard
  kill races the in-flight write, so resume must come back bit-identically
  from whichever complete snapshot survived — the delta tip or its base.

Exit status 0 on success, 1 on any mismatch.  Used by the nightly CI job,
which also uploads the surviving checkpoint directories as an artifact::

    python scripts/resume_smoke.py --workdir resume-smoke
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(REPO_ROOT, "src")):
    sys.path.append(os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    make_gsm8k_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.runtime import latest_checkpoint  # noqa: E402

NUM_ROUNDS = 4
CHECKPOINT_EVERY = 2
KILL_AT_ROUND = 3  # after the round-2 snapshot, before the run completes

#: the hard-kill/resume matrix: config-name -> RunConfig overrides
#: (``checkpoint_every`` here overrides the matrix-wide default cadence)
CONFIGS = {
    "sharded-edges": dict(
        num_shards=2, num_edge_aggregators=2,
        aggregation="trimmed_mean", trim_ratio=0.2,
    ),
    "pooled-tree": dict(
        num_shards=2, edge_tiers=(2, 2),
        aggregation="trimmed_mean", trim_ratio=0.2,
        aggregation_executor="process", aggregation_workers=2,
    ),
    "delta-chain": dict(
        num_shards=2, num_edge_aggregators=2,
        aggregation="trimmed_mean", trim_ratio=0.2,
        checkpoint_every=1, checkpoint_delta_every=4, checkpoint_async=True,
    ),
}


#: ``--backend service``: the whole matrix re-runs with the fold plane behind
#: live :mod:`repro.service` aggregator servers (TCP child processes), so the
#: hard kill orphans half-folded server-side round state and the resume must
#: come back bit-identically through *fresh* servers (the nightly lane)
SERVICE_OVERRIDES = dict(
    aggregation_executor="service", aggregation_workers=2,
    service_transport="tcp",
)


def build_tuner(name: str, checkpoint_dir: str | None = None,
                kill_at: int | None = None, trace_dir: str | None = None,
                backend: str = "config"):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=160, seed=3)
    train, test = dataset.split(seed=3)
    shards = partition_dirichlet(train, 8, alpha=0.5, seed=3)
    participants = [
        Participant(pid, train.subset(shard),
                    resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
                    seed=3 + pid)
        for pid, shard in enumerate(shards)
    ]
    overrides = dict(CONFIGS[name])
    if backend == "service":
        overrides.update(SERVICE_OVERRIDES)
    checkpoint_every = overrides.pop("checkpoint_every", CHECKPOINT_EVERY)
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, eval_max_samples=16, seed=3,
        participants_per_round=4,
        checkpoint_every=checkpoint_every if checkpoint_dir else 0,
        checkpoint_dir=checkpoint_dir,
        telemetry=trace_dir is not None,
        telemetry_dir=trace_dir,
        **overrides,
    )
    server = ParameterServer(MoETransformer(config))

    if kill_at is None:
        return FMDFineTuner(server, participants, test, config=run_config)

    class KilledMidFlight(FMDFineTuner):
        def before_round(self, round_index, selected):
            if round_index == kill_at:
                # Bypass every Python-level cleanup path, like a SIGKILL or
                # OOM would: the only state that survives is what the
                # checkpointer already put on disk.
                os._exit(137)
            super().before_round(round_index, selected)

    return KilledMidFlight(server, participants, test, config=run_config)


def check_round_spans(trace_dir: str, num_rounds: int) -> list[str]:
    """Assert the resumed trace holds exactly one round span per round.

    The killed child wrote spans for every round it completed; the resume
    prunes the re-executed rounds' events before appending its own.  A
    duplicated (or missing) round index means that prune/append contract
    broke.
    """
    from repro.obs import JSONL_FILE, load_events

    events = load_events(os.path.join(trace_dir, JSONL_FILE))
    rounds = sorted(event["round"] for event in events
                    if event.get("type") == "span" and event.get("cat") == "round")
    failures = []
    if rounds != list(range(num_rounds)):
        failures.append(
            f"round spans after resume: expected exactly one per round "
            f"0..{num_rounds - 1}, got {rounds}")
    run_spans = sum(1 for event in events
                    if event.get("type") == "span" and event.get("cat") == "run")
    if run_spans != 1:
        failures.append(f"expected exactly 1 run span after resume "
                        f"(the child's never completes), got {run_spans}")
    return failures


def run_config_smoke(name: str, workdir: str,
                     trace_root: str | None = None,
                     backend: str = "config") -> list[str]:
    """Kill+resume one matrix configuration; return a list of failures."""
    checkpoint_dir = os.path.join(workdir, name, "checkpoints")
    if os.path.isdir(checkpoint_dir):
        # A stale checkpoint from a previous invocation would let the resume
        # phase restore a *completed* run (zero rounds executed) and print a
        # vacuous PASS — every run must start from an empty snapshot dir.
        shutil.rmtree(checkpoint_dir)
    trace_dir = os.path.join(trace_root, name) if trace_root else None
    if trace_dir and os.path.isdir(trace_dir):
        shutil.rmtree(trace_dir)  # same staleness hazard as checkpoints

    tag = f"{name} ({backend} backend)" if backend != "config" else name
    print(f"=== {tag} ===", flush=True)
    print(f"[1/3] reference: uninterrupted {NUM_ROUNDS}-round run", flush=True)
    reference_tuner = build_tuner(name, backend=backend)
    reference = reference_tuner.run(num_rounds=NUM_ROUNDS)

    cadence = CONFIGS[name].get("checkpoint_every", CHECKPOINT_EVERY)
    print(f"[2/3] kill: subprocess dies mid round {KILL_AT_ROUND} "
          f"(snapshots every {cadence} round(s))", flush=True)
    child_argv = [sys.executable, os.path.abspath(__file__),
                  "--workdir", workdir, "--phase", "killed-child",
                  "--config", name, "--backend", backend]
    if trace_root:
        child_argv += ["--trace-dir", trace_root]
    child = subprocess.run(child_argv, cwd=REPO_ROOT)
    if child.returncode != 137:
        return [f"expected the child to die with os._exit(137), "
                f"got {child.returncode}"]

    snapshot = latest_checkpoint(checkpoint_dir)
    if snapshot is None:
        return [f"no surviving checkpoint under {checkpoint_dir}"]
    print(f"[3/3] resume: from {os.path.basename(snapshot)} "
          f"to round {NUM_ROUNDS}", flush=True)
    resumed_tuner = build_tuner(name, checkpoint_dir, trace_dir=trace_dir,
                                backend=backend)
    resumed = resumed_tuner.run(num_rounds=NUM_ROUNDS, resume_from=snapshot)

    failures = []
    if trace_dir:
        failures += check_round_spans(trace_dir, NUM_ROUNDS)
    if resumed.tracker.as_series() != reference.tracker.as_series():
        failures.append("metric history differs")
    if len(resumed.rounds) != len(reference.rounds):
        failures.append("round counts differ")
    for got, want in zip(resumed.rounds, reference.rounds):
        for field_name in ("train_loss", "metric_value", "simulated_time",
                           "round_duration", "num_aggregated", "edge_bytes",
                           "tier_bytes"):
            if getattr(got, field_name) != getattr(want, field_name):
                failures.append(
                    f"round {want.round_index}: {field_name} "
                    f"{getattr(got, field_name)!r} != {getattr(want, field_name)!r}")
    ref_state = reference_tuner.server.global_model.state_dict()
    res_state = resumed_tuner.server.global_model.state_dict()
    for tensor_name in ref_state:
        if not np.array_equal(ref_state[tensor_name], res_state[tensor_name]):
            failures.append(f"model parameter {tensor_name} differs")
    if not failures:
        print(f"PASS [{tag}]: killed-then-resumed run is identical to the "
              f"uninterrupted reference ({len(resumed.rounds)} rounds, "
              f"final metric {resumed.final_metric():.3f})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="resume-smoke",
                        help="directory for checkpoints (uploaded as a CI artifact)")
    parser.add_argument("--config", choices=sorted(CONFIGS), default=None,
                        help="run a single matrix configuration (default: all)")
    parser.add_argument("--backend", choices=["config", "service"], default="config",
                        help="'service' forces the fold plane of every matrix "
                             "configuration behind live TCP aggregator servers "
                             "(the nightly service-resume lane)")
    parser.add_argument("--trace-dir", default=None,
                        help="record repro.obs telemetry for the killed+resumed "
                             "runs under this directory (one subdir per "
                             "config) and assert the resumed trace has no "
                             "duplicated round spans")
    parser.add_argument("--phase", choices=["main", "killed-child"], default="main",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.phase == "killed-child":
        checkpoint_dir = os.path.join(args.workdir, args.config, "checkpoints")
        trace_dir = (os.path.join(args.trace_dir, args.config)
                     if args.trace_dir else None)
        build_tuner(args.config, checkpoint_dir, kill_at=KILL_AT_ROUND,
                    trace_dir=trace_dir, backend=args.backend).run(num_rounds=NUM_ROUNDS)
        print("child: run completed without dying?!", flush=True)
        return 1  # the kill switch must have fired before this point

    all_failures = {}
    for name in ([args.config] if args.config else sorted(CONFIGS)):
        failures = run_config_smoke(name, args.workdir, args.trace_dir,
                                    backend=args.backend)
        if failures:
            all_failures[name] = failures
    if all_failures:
        print("FAIL: resumed run(s) do not match the uninterrupted reference:")
        for name, failures in all_failures.items():
            for failure in failures:
                print(f"  - [{name}] {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
