"""CI resume-smoke: kill a federated run mid-flight, resume it, assert equality.

Three phases:

1. **reference** — an uninterrupted ``NUM_ROUNDS``-round run (in-process).
2. **kill** — the same run re-launched as a *subprocess* with checkpointing
   enabled; the child hard-exits via ``os._exit`` (no cleanup, no atexit —
   the closest a Python process gets to SIGKILL) at the start of round
   ``KILL_AT_ROUND``.  Only the on-disk snapshot survives.
3. **resume** — a fresh tuner resumes from the latest surviving snapshot and
   finishes the run; its :class:`~repro.federated.RunResult` and final model
   parameters must match the reference *exactly*.

Exit status 0 on success, 1 on any mismatch.  Used by the nightly CI job,
which also uploads the surviving checkpoint directory as an artifact::

    python scripts/resume_smoke.py --workdir resume-smoke
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(REPO_ROOT, "src")):
    sys.path.append(os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    make_gsm8k_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.runtime import latest_checkpoint  # noqa: E402

NUM_ROUNDS = 4
CHECKPOINT_EVERY = 2
KILL_AT_ROUND = 3  # after the round-2 snapshot, before the run completes


def build_tuner(checkpoint_dir: str | None = None, kill_at: int | None = None):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=160, seed=3)
    train, test = dataset.split(seed=3)
    shards = partition_dirichlet(train, 8, alpha=0.5, seed=3)
    participants = [
        Participant(pid, train.subset(shard),
                    resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
                    seed=3 + pid)
        for pid, shard in enumerate(shards)
    ]
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, eval_max_samples=16, seed=3,
        participants_per_round=4,
        num_shards=2, num_edge_aggregators=2, aggregation="trimmed_mean",
        trim_ratio=0.2,
        checkpoint_every=CHECKPOINT_EVERY if checkpoint_dir else 0,
        checkpoint_dir=checkpoint_dir,
    )
    server = ParameterServer(MoETransformer(config))

    if kill_at is None:
        return FMDFineTuner(server, participants, test, config=run_config)

    class KilledMidFlight(FMDFineTuner):
        def before_round(self, round_index, selected):
            if round_index == kill_at:
                # Bypass every Python-level cleanup path, like a SIGKILL or
                # OOM would: the only state that survives is what the
                # checkpointer already put on disk.
                os._exit(137)
            super().before_round(round_index, selected)

    return KilledMidFlight(server, participants, test, config=run_config)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="resume-smoke",
                        help="directory for checkpoints (uploaded as a CI artifact)")
    parser.add_argument("--phase", choices=["main", "killed-child"], default="main",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    checkpoint_dir = os.path.join(args.workdir, "checkpoints")

    if args.phase == "main" and os.path.isdir(checkpoint_dir):
        # A stale checkpoint from a previous invocation would let the resume
        # phase restore a *completed* run (zero rounds executed) and print a
        # vacuous PASS — every run must start from an empty snapshot dir.
        shutil.rmtree(checkpoint_dir)

    if args.phase == "killed-child":
        build_tuner(checkpoint_dir, kill_at=KILL_AT_ROUND).run(num_rounds=NUM_ROUNDS)
        print("child: run completed without dying?!", flush=True)
        return 1  # the kill switch must have fired before this point

    print(f"[1/3] reference: uninterrupted {NUM_ROUNDS}-round run", flush=True)
    reference_tuner = build_tuner()
    reference = reference_tuner.run(num_rounds=NUM_ROUNDS)

    print(f"[2/3] kill: subprocess dies mid round {KILL_AT_ROUND} "
          f"(snapshots every {CHECKPOINT_EVERY} rounds)", flush=True)
    child = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--workdir", args.workdir, "--phase", "killed-child"],
        cwd=REPO_ROOT)
    if child.returncode != 137:
        print(f"FAIL: expected the child to die with os._exit(137), "
              f"got {child.returncode}")
        return 1

    snapshot = latest_checkpoint(checkpoint_dir)
    if snapshot is None:
        print(f"FAIL: no surviving checkpoint under {checkpoint_dir}")
        return 1
    print(f"[3/3] resume: from {os.path.basename(snapshot)} "
          f"to round {NUM_ROUNDS}", flush=True)
    resumed_tuner = build_tuner(checkpoint_dir)
    resumed = resumed_tuner.run(num_rounds=NUM_ROUNDS, resume_from=snapshot)

    failures = []
    if resumed.tracker.as_series() != reference.tracker.as_series():
        failures.append("metric history differs")
    if len(resumed.rounds) != len(reference.rounds):
        failures.append("round counts differ")
    for got, want in zip(resumed.rounds, reference.rounds):
        for field_name in ("train_loss", "metric_value", "simulated_time",
                           "round_duration", "num_aggregated", "edge_bytes"):
            if getattr(got, field_name) != getattr(want, field_name):
                failures.append(
                    f"round {want.round_index}: {field_name} "
                    f"{getattr(got, field_name)!r} != {getattr(want, field_name)!r}")
    ref_state = reference_tuner.server.global_model.state_dict()
    res_state = resumed_tuner.server.global_model.state_dict()
    for name in ref_state:
        if not np.array_equal(ref_state[name], res_state[name]):
            failures.append(f"model parameter {name} differs")

    if failures:
        print("FAIL: resumed run does not match the uninterrupted reference:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"PASS: killed-then-resumed run is identical to the uninterrupted "
          f"reference ({len(resumed.rounds)} rounds, "
          f"final metric {resumed.final_metric():.3f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
