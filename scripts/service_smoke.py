"""CI service-smoke: run the fold plane through live aggregator servers.

Drives a short federated run over an aggregation-tree topology (participants
→ edge aggregators → root, 2 expert shards) with the whole fold plane behind
``aggregation_executor="service"`` — persistent :mod:`repro.service` servers
speaking the CRC-framed repro.comm protocol over TCP (one child process per
server) or an in-process socketpair.  The run's results must be bit-identical
to the same run folded serially in-process.

``--edge-tiers`` sets the aggregator-tier widths (default ``2``: one edge
tier).  ``--edge-tiers 2,2`` adds an *inner* tier, whose partial-of-partials
folds also route through the servers — the smoke then additionally requires
``repro_service_tier_folds_total`` counters for every tier, proving the
inner-tier routing actually happened over the wire.

``--kill-server`` additionally hard-kills one aggregator server (SIGKILL on
the child process) at the start of the final round, while the run is live.
The next fold request to that server finds a dead connection; the client
reconnects — respawning the server on a fresh port — and replays the whole
round under a fresh token.  Combined with ``--edge-tiers 2,2`` the kill lands
on a server that owns inner-tier folds, so the heal path covers a mid-tree
death.  The smoke asserts the run still completes, the results are still
bit-identical to the serial reference, and the respawn / reconnect /
replayed-round counters all fired.

Per-server logs land under ``<workdir>/logs`` (``--log-dir`` overrides); the
CI ``service-smoke`` job uploads them as an artifact when the smoke fails.
Exit status 0 on success, 1 on any mismatch::

    python scripts/service_smoke.py --kill-server --edge-tiers 2,2 \\
        --workdir service-smoke
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(REPO_ROOT, "src")):
    sys.path.append(os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    Vocabulary,
    make_gsm8k_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.obs import (  # noqa: E402
    JSONL_FILE,
    format_table,
    load_events,
    tier_table,
)

NUM_ROUNDS = 3
NUM_SERVERS = 2
KILLED_SERVER = "server0"  # pool._server_name(0): the kill target

#: the base aggregation topology (participants → edge tiers → root, 2 shards);
#: the edge-tier widths come from ``--edge-tiers``
TOPOLOGY = dict(
    num_shards=2,
    aggregation="trimmed_mean", trim_ratio=0.2,
    participants_per_round=4,
)


def build_tuner(backend: str, transport: str, edge_tiers: tuple[int, ...],
                log_dir: str | None = None,
                trace_dir: str | None = None, kill_server: bool = False):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=160, seed=5)
    train, test = dataset.split(seed=5)
    shards = partition_dirichlet(train, 8, alpha=0.5, seed=5)
    participants = [
        Participant(pid, train.subset(shard),
                    resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
                    seed=5 + pid)
        for pid, shard in enumerate(shards)
    ]
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, eval_max_samples=16, seed=5,
        aggregation_executor=backend,
        aggregation_workers=NUM_SERVERS if backend != "serial" else None,
        service_transport=transport,
        service_log_dir=log_dir,
        telemetry=trace_dir is not None,
        telemetry_dir=trace_dir,
        edge_tiers=edge_tiers,
        **TOPOLOGY,
    )
    server = ParameterServer(MoETransformer(config))

    if not kill_server:
        return FMDFineTuner(server, participants, test, config=run_config)

    class KillsAServerMidRun(FMDFineTuner):
        """Hard-kills one live aggregator server at the start of the last round."""

        def before_round(self, round_index, selected):
            rounds_seen = getattr(self, "_smoke_rounds_seen", 0) + 1
            self._smoke_rounds_seen = rounds_seen
            if rounds_seen == NUM_ROUNDS:
                pool = self._aggregation_pool
                victim = pool._servers[0] if pool._servers else None
                if victim is None or not victim.alive:
                    raise AssertionError(
                        "kill round reached but no live spawned server to kill "
                        "— the fold plane never started?")
                victim.kill()
                print(f"    killed {KILLED_SERVER} (pid {victim.process.pid}) "
                      f"before round {rounds_seen}/{NUM_ROUNDS}", flush=True)
            super().before_round(round_index, selected)

    return KillsAServerMidRun(server, participants, test, config=run_config)


def check_service_counters(registry, killed: bool,
                           edge_tiers: tuple[int, ...]) -> list[str]:
    """Assert the repro_service_* counters recorded the run (and the kill)."""
    failures = []
    folds = registry.counter_value("repro_service_folds_total", kind="shard")
    if not folds:
        failures.append("no repro_service_folds_total{kind=shard} recorded")
    # One tier-folds counter per aggregator tier: tier 0 is the leaf fan-in,
    # every deeper tier proves inner-tier partials routed through the servers.
    for tier in range(len(edge_tiers)):
        if not registry.counter_value("repro_service_tier_folds_total",
                                      tier=tier):
            failures.append(f"no repro_service_tier_folds_total{{tier={tier}}}"
                            " — inner-tier folds never reached the service?")
    for name in ("server0", "server1"):
        if not registry.counter_value("repro_service_bytes_sent_total", server=name):
            failures.append(f"no bytes sent to {name} — did it fold anything?")
    if not killed:
        return failures
    checks = (("repro_service_respawns_total", 1),
              ("repro_service_reconnects_total", 1),
              ("repro_service_retried_rounds_total", 1))
    for metric, want_at_least in checks:
        got = registry.counter_value(metric, server=KILLED_SERVER)
        if got < want_at_least:
            failures.append(f"{metric}{{server={KILLED_SERVER}}} = {got}, "
                            f"expected >= {want_at_least} after the hard kill")
    return failures


def check_server_logs(log_dir: str) -> list[str]:
    failures = []
    for index in range(NUM_SERVERS):
        log_path = os.path.join(log_dir, f"server{index}.log")
        if not (os.path.isfile(log_path) and os.path.getsize(log_path)):
            failures.append(f"server log {log_path} missing or empty")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="service-smoke",
                        help="server logs + telemetry land here "
                             "(uploaded as a CI artifact on failure)")
    parser.add_argument("--log-dir", default=None,
                        help="per-server log directory (default <workdir>/logs)")
    parser.add_argument("--transport", choices=["tcp", "socketpair"], default="tcp",
                        help="service transport (CI exercises tcp)")
    parser.add_argument("--edge-tiers", default="2",
                        help="comma-separated aggregator-tier widths; depth "
                             ">= 2 (e.g. '2,2') routes inner-tier folds "
                             "through the servers too")
    parser.add_argument("--kill-server", action="store_true",
                        help="hard-kill one aggregator server at the start of "
                             "the final round and require the run to heal")
    args = parser.parse_args()

    if args.kill_server and args.transport != "tcp":
        parser.error("--kill-server needs --transport tcp (only spawned "
                     "server processes can be hard-killed and respawned)")
    try:
        edge_tiers = tuple(int(width) for width in args.edge_tiers.split(","))
    except ValueError:
        parser.error(f"--edge-tiers {args.edge_tiers!r} is not a "
                     "comma-separated list of widths")

    log_dir = args.log_dir or os.path.join(args.workdir, "logs")
    trace_dir = os.path.join(args.workdir, "trace")
    for path in (log_dir, trace_dir):
        if os.path.isdir(path):
            shutil.rmtree(path)  # stale logs/traces would mask a failure

    tiers_note = "x".join(str(width) for width in edge_tiers)
    print(f"[1/2] reference: serial fold plane, {NUM_ROUNDS} rounds, "
          f"edge tiers {tiers_note}", flush=True)
    reference_tuner = build_tuner("serial", args.transport, edge_tiers)
    reference = reference_tuner.run(num_rounds=NUM_ROUNDS)

    kill_note = ", hard-killing server0 in the last round" if args.kill_server else ""
    print(f"[2/2] service: {NUM_SERVERS} {args.transport} aggregator "
          f"servers{kill_note}", flush=True)
    service_tuner = build_tuner("service", args.transport, edge_tiers,
                                log_dir=log_dir,
                                trace_dir=trace_dir, kill_server=args.kill_server)
    service = service_tuner.run(num_rounds=NUM_ROUNDS)

    failures = []
    if len(service.rounds) != NUM_ROUNDS:
        failures.append(f"service run completed {len(service.rounds)} rounds, "
                        f"expected {NUM_ROUNDS}")
    if service.tracker.as_series() != reference.tracker.as_series():
        failures.append("metric history differs from the serial reference")
    ref_state = reference_tuner.server.global_model.state_dict()
    svc_state = service_tuner.server.global_model.state_dict()
    for tensor_name in ref_state:
        if not np.array_equal(ref_state[tensor_name], svc_state[tensor_name]):
            failures.append(f"model parameter {tensor_name} differs")

    failures += check_service_counters(service_tuner.telemetry.registry,
                                       killed=args.kill_server,
                                       edge_tiers=edge_tiers)
    if args.transport == "tcp":
        failures += check_server_logs(log_dir)

    events = load_events(os.path.join(trace_dir, JSONL_FILE))
    service_folds = [event for event in events
                     if event.get("type") == "span"
                     and event.get("attrs", {}).get("transport") == "service"]
    if not service_folds:
        failures.append("trace has no service-tagged fold spans")

    headers, rows = tier_table(events)
    print("== Per-tier backhaul (service run) ==")
    print(format_table(headers, rows))

    if failures:
        print("FAIL: service run does not check out:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"PASS: service fold plane matches the serial reference bit-for-bit "
          f"({NUM_ROUNDS} rounds, final metric {service.final_metric():.3f}"
          f"{', healed after hard kill' if args.kill_server else ''})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
