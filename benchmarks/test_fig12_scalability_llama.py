"""Figure 12: time-to-accuracy vs number of participants (LLaMA-MoE-like).

The paper varies the number of participants from 10 to 30 and reports the
elapsed time each method needs to reach the target accuracy on each dataset.
Expected shape: for every participant count FMD is slowest and Flux fastest,
and adding participants reduces (or at least does not increase) each method's
time-to-accuracy.
"""


from common import (
    DATASETS,
    FAST,
    METHODS,
    default_rounds,
    default_run_config,
    print_header,
    print_table,
    run_all_methods,
    time_to_common_target,
)

PARTICIPANT_COUNTS = [10, 30] if FAST else [10, 15, 20, 25, 30]
ROUNDS = 5
PER_ROUND_CLIENTS = 5   # sampled participants per round (keeps rounds comparable)


def _measure(model="llama", seed=30):
    table = {}
    run_config = default_run_config(participants_per_round=PER_ROUND_CLIENTS,
                                    eval_max_samples=48)
    for dataset_name in DATASETS:
        table[dataset_name] = {}
        for count in PARTICIPANT_COUNTS:
            results = run_all_methods(dataset_name, num_clients=count,
                                      num_rounds=default_rounds(ROUNDS), model=model,
                                      seed=seed, run_config=run_config)
            targets = time_to_common_target(results, fraction=0.6)
            table[dataset_name][count] = {
                method: {
                    "time_to_target": targets[method],
                    "total_time": results[method].total_time,
                    "best_metric": results[method].tracker.best_metric(),
                }
                for method in METHODS
            }
    return table


def _print_and_check(table, figure_name):
    for dataset_name, per_count in table.items():
        print_header(f"{figure_name} ({dataset_name}): time-to-accuracy vs participants")
        rows = []
        for count, per_method in per_count.items():
            row = [count]
            for method in METHODS:
                entry = per_method[method]
                value = entry["time_to_target"]
                row.append(round(value, 1) if value is not None else f">{round(entry['total_time'], 1)}")
            rows.append(row)
        print_table(["participants"] + METHODS, rows, width=14)

        for count, per_method in per_count.items():
            fmd_entry = per_method["fmd"]
            flux_entry = per_method["flux"]
            # Cost ordering always holds: Flux's rounds are cheaper than FMD's.
            assert flux_entry["total_time"] < fmd_entry["total_time"], (
                f"Flux rounds not cheaper than FMD on {dataset_name} with {count} participants")
            # Who wins: whenever both methods reach the common quality target,
            # Flux gets there in no more simulated time than FMD.
            if flux_entry["time_to_target"] is not None and fmd_entry["time_to_target"] is not None:
                assert flux_entry["time_to_target"] <= fmd_entry["time_to_target"] * 1.1, (
                    f"Flux slower to target than FMD on {dataset_name} with {count} participants")


def test_fig12_scalability_llama(benchmark):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    _print_and_check(table, "Figure 12 (LLaMA-MoE-like)")
