"""Figure 1: one-round fine-tuning cost vs number of experts.

The paper measures the cost of one fine-tuning round of LLaMA-MoE with 60
Dolly samples on an L20 GPU while varying the number of experts
(8/32/128/256).  Here the cost model charges the same workload (60 samples,
expert-only updates) for growing expert counts; the paper's monotone growth
(62.85s -> 394.16s) should be preserved in shape.
"""


from common import print_header, print_table
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import L20_SERVER, CostModel, MemoryModel

EXPERT_COUNTS = [8, 32, 128, 256]
PAPER_COSTS = {8: 62.85, 32: 103.73, 128: 163.57, 256: 394.16}
NUM_SAMPLES = 60


def _measure():
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    cost_model = CostModel(L20_SERVER, memory)
    tokens = cost_model.scaled_tokens(NUM_SAMPLES)
    costs = {}
    for experts in EXPERT_COUNTS:
        # fine-tuning cost of a model variant with `experts` trainable experts;
        # all of them are updated (the paper fine-tunes expert parameters only)
        costs[experts] = cost_model.training_time(tokens, tuning_experts=experts,
                                                  frozen_experts=0)
    return costs


def test_fig01_finetune_cost_vs_experts(benchmark):
    costs = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 1: one-round fine-tuning cost vs #experts (60 Dolly samples)")
    print_table(["experts", "simulated_s", "paper_s"],
                [[e, costs[e], PAPER_COSTS[e]] for e in EXPERT_COUNTS])

    values = [costs[e] for e in EXPERT_COUNTS]
    assert all(b > a for a, b in zip(values, values[1:])), "cost must grow with expert count"
    # growth from 8 to 256 experts should be a multiple (paper: ~6.3x)
    assert values[-1] / values[0] > 2.0
