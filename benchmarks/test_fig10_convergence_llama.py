"""Figure 10: convergence vs wall-clock time on the LLaMA-MoE(-like) model.

The paper plots relative accuracy against elapsed time for FMD / FMQ / FMES /
Flux on Dolly, GSM8K, MMLU and PIQA with 10 participants.  The expected shape:
FMQ is unstable and plateaus lowest, FMD converges to the best quality but
spends far more time per round (offloading), FMES is cheap but plateaus below
Flux, and Flux reaches high accuracy in the least time.
"""


from common import (
    DATASETS,
    METHODS,
    default_rounds,
    print_header,
    print_series,
    run_all_methods,
    time_to_common_target,
)

NUM_CLIENTS = 10
ROUNDS = 10


def _measure():
    results = {}
    for dataset_name in DATASETS:
        results[dataset_name] = run_all_methods(
            dataset_name, num_clients=NUM_CLIENTS, num_rounds=default_rounds(ROUNDS),
            model="llama", seed=10)
    return results


def test_fig10_convergence_llama_moe(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for dataset_name, method_results in results.items():
        print_header(f"Figure 10 ({dataset_name}, LLaMA-MoE-like): metric vs simulated time")
        for method in METHODS:
            tracker = method_results[method].tracker
            print_series(method, tracker.times(), tracker.metric_values())
        targets = time_to_common_target(method_results, fraction=0.9)
        print(f"  time to 90% of FMD best: {targets}")

        flux = method_results["flux"]
        fmd = method_results["fmd"]
        fmes = method_results["fmes"]
        fmq = method_results["fmq"]

        # FMD pays the most simulated time for the same number of rounds.
        assert fmd.total_time > flux.total_time
        assert fmd.total_time > fmes.total_time
        # Flux's final quality approaches FMD's and is not below FMQ's.
        assert flux.tracker.best_metric() >= 0.7 * fmd.tracker.best_metric()
        assert flux.tracker.best_metric() >= 0.85 * fmq.tracker.best_metric()

    # Aggregate time-to-accuracy speedup of Flux over FMD across datasets.
    speedups = []
    for dataset_name, method_results in results.items():
        targets = time_to_common_target(method_results, fraction=0.85)
        flux_time, fmd_time = targets.get("flux"), targets.get("fmd")
        if flux_time and fmd_time:
            speedups.append(fmd_time / flux_time)
    print(f"\nFlux vs FMD time-to-accuracy speedups: {[round(s, 2) for s in speedups]}")
    if speedups:
        assert max(speedups) > 1.0
