"""Figure 21 (new): sync vs semi-sync vs async scheduling at 20/50/100 clients.

The event-driven runtime (``repro.runtime``) decouples *when* aggregation
happens from *what* a participant round computes.  This benchmark compares the
three aggregation policies on a common federation under mild fault injection
(10% stragglers at 4x slowdown) and reports simulated time-to-target-accuracy
at increasing federation sizes.

Expected shape: the synchronous round is gated by the slowest (straggling)
participant, so the deadline-based semi-synchronous policy and the buffered
asynchronous policy reach the common accuracy target in no more simulated time
than the synchronous policy — and the gap grows with the federation size,
because larger uniform samples are more likely to contain a straggler.

The federation uses the tiny MoE preset so a 100-client round stays tractable;
cost accounting still charges full-scale (LLaMA-MoE) device costs.
"""


from common import FAST, print_header, print_table

from repro import (
    FMDFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    tiny_moe,
)
from repro.data import Vocabulary, make_gsm8k_like, partition_dirichlet
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

CLIENT_COUNTS = [20, 100] if FAST else [20, 50, 100]
ROUNDS = 2 if FAST else 4
PER_ROUND_CLIENTS = 10
SCHEDULER_CONFIGS = {
    "sync": {},
    "semisync": {"deadline_quantile": 0.7},
    "async": {"buffer_size": 5, "staleness_exponent": 0.5},
}


def _build_federation(num_clients, seed=0):
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=max(4 * num_clients, 240), seed=seed)
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed, min_samples=2)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for i, shard in enumerate(shards):
        participants.append(Participant(
            i, train.subset(shard),
            resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
            seed=seed + i))
        cost_models[i] = CostModel(CONSUMER_GPU, memory)
    return config, participants, test, cost_models


def _run_scheduler(scheduler, num_clients, seed=0):
    config, participants, test, cost_models = _build_federation(num_clients, seed=seed)
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, learning_rate=1e-2,
        eval_max_samples=16, seed=seed,
        participants_per_round=PER_ROUND_CLIENTS,
        scheduler=scheduler,
        straggler_prob=0.1, straggler_slowdown=4.0,
        **SCHEDULER_CONFIGS[scheduler],
    )
    server = ParameterServer(MoETransformer(config))
    tuner = FMDFineTuner(server, participants, test, cost_models=cost_models,
                         config=run_config)
    return tuner.run(num_rounds=ROUNDS)


def _measure():
    table = {}
    for num_clients in CLIENT_COUNTS:
        table[num_clients] = {}
        for scheduler in SCHEDULER_CONFIGS:
            result = _run_scheduler(scheduler, num_clients)
            best = result.tracker.best_metric()
            table[num_clients][scheduler] = {
                "result": result,
                "best_metric": best,
                "total_time": result.total_time,
            }
        # Common quality target: what every policy managed to reach.
        target = 0.95 * min(e["best_metric"] for e in table[num_clients].values())
        for entry in table[num_clients].values():
            entry["time_to_target"] = entry["result"].tracker.time_to_target(target)
    return table


def _print_and_check(table):
    print_header("Figure 21: sync vs semi-sync vs async time-to-target accuracy")
    rows = []
    for num_clients, per_scheduler in table.items():
        row = [num_clients]
        for scheduler in SCHEDULER_CONFIGS:
            entry = per_scheduler[scheduler]
            value = entry["time_to_target"]
            row.append(round(value, 1) if value is not None else f">{round(entry['total_time'], 1)}")
        rows.append(row)
    print_table(["clients"] + list(SCHEDULER_CONFIGS), rows, width=14)

    for num_clients, per_scheduler in table.items():
        sync_entry = per_scheduler["sync"]
        for scheduler in ("semisync", "async"):
            entry = per_scheduler[scheduler]
            assert entry["time_to_target"] is not None, (
                f"{scheduler} never reached the common target at {num_clients} clients")
            # Straggler-tolerant policies aggregate earlier in simulated time.
            assert entry["time_to_target"] <= sync_entry["total_time"] * 1.05, (
                f"{scheduler} slower than the whole sync run at {num_clients} clients")


def test_fig21_async_scalability(benchmark):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    _print_and_check(table)


def test_fig21_hundred_client_semisync_round():
    """Acceptance: a semi-synchronous round with all 100 clients end-to-end."""
    config, participants, test, cost_models = _build_federation(100, seed=1)
    run_config = RunConfig(
        batch_size=8, max_local_batches=1, eval_max_samples=16, seed=1,
        scheduler="semisync", deadline_quantile=0.8,
        straggler_prob=0.1, straggler_slowdown=4.0,
    )
    server = ParameterServer(MoETransformer(config))
    tuner = FMDFineTuner(server, participants, test, cost_models=cost_models,
                         config=run_config)
    result = tuner.run(num_rounds=1)
    first = result.rounds[0]
    assert first.num_selected == 100
    assert 0 < first.num_aggregated <= 100
    assert first.num_stragglers > 0          # the 0.8-quantile deadline drops some
    assert first.round_duration > 0
    assert 0.0 <= first.metric_value <= 1.0
