"""Shared configuration and helpers for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper.  The
helpers here build the standard federation (mini MoE models, synthetic
benchmark datasets, non-IID shards, per-participant cost models of the paper's
full-scale architectures) and provide uniform result printing so each benchmark
emits the rows/series the paper reports.

Set ``REPRO_BENCH_FAST=1`` to shrink the workloads (fewer rounds/participants)
for a quick smoke run of the whole suite.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple


from repro import (
    FMDFineTuner,
    FMESFineTuner,
    FMQFineTuner,
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    RunResult,
    Vocabulary,
    deepseek_moe_mini,
    llama_moe_mini,
    make_dataset,
    partition_dirichlet,
)
from repro.core import EpsilonSchedule
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

FAST = os.environ.get("REPRO_BENCH_FAST", "0") not in ("0", "", "false", "False")

DATASETS = ["dolly", "gsm8k", "mmlu", "piqa"]
METHODS = ["fmd", "fmq", "fmes", "flux"]

METHOD_CLASSES = {
    "fmd": FMDFineTuner,
    "fmq": FMQFineTuner,
    "fmes": FMESFineTuner,
    "flux": FluxFineTuner,
}

#: full-scale architecture backing each mini model's cost accounting
DESCRIPTOR_FOR_MODEL = {
    "llama": "llama-moe",
    "deepseek": "deepseek-moe",
}


def make_vocab() -> Vocabulary:
    return Vocabulary(size=256, num_topics=8)


def model_config(model: str = "llama", vocab_size: int = 256):
    """Mini model config for 'llama' (LLaMA-MoE-like) or 'deepseek' (DeepSeek-MoE-like)."""
    if model == "llama":
        return llama_moe_mini(vocab_size=vocab_size)
    if model == "deepseek":
        return deepseek_moe_mini(vocab_size=vocab_size, n_layers=3)
    raise KeyError(f"unknown model '{model}'")


def participant_budgets(model: str) -> Tuple[int, int]:
    """(max_experts, max_tuning_experts) per participant for each mini model."""
    if model == "llama":
        return 12, 6
    return 18, 9


def default_run_config(**overrides) -> RunConfig:
    config = RunConfig(
        batch_size=16,
        max_local_batches=2 if FAST else 3,
        learning_rate=1e-2,
        eval_max_samples=40 if FAST else 60,
        seed=0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def default_flux_config(**overrides) -> FluxConfig:
    config = FluxConfig(
        epsilon=EpsilonSchedule(initial=0.5, final=0.95, warmup_rounds=5),
        seed=0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def default_rounds(requested: int) -> int:
    return max(2, requested // 2) if FAST else requested


def build_federation(dataset_name: str, num_clients: int, model: str = "llama",
                     seed: int = 0, num_samples: Optional[int] = None,
                     vocab: Optional[Vocabulary] = None):
    """Build (config, participants, test set, cost models) for one experiment."""
    vocab = vocab or make_vocab()
    config = model_config(model, vocab_size=vocab.size)
    samples = num_samples if num_samples is not None else (240 if FAST else 400)
    dataset = make_dataset(dataset_name, vocab=vocab, num_samples=samples, seed=seed)
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS[DESCRIPTOR_FOR_MODEL[model]])
    max_experts, max_tuning = participant_budgets(model)
    participants, cost_models = [], {}
    for i, shard in enumerate(shards):
        participants.append(Participant(
            i, train.subset(shard),
            resources=ParticipantResources(max_experts=max_experts, max_tuning_experts=max_tuning),
            seed=seed + i,
        ))
        cost_models[i] = CostModel(CONSUMER_GPU, memory)
    return config, participants, test, cost_models


def run_method(method: str, config, participants, test, cost_models,
               num_rounds: int, run_config: Optional[RunConfig] = None,
               flux_config: Optional[FluxConfig] = None) -> RunResult:
    """Run one federated fine-tuning method from a fresh global model."""
    run_config = run_config or default_run_config()
    server = ParameterServer(MoETransformer(config))
    cls = METHOD_CLASSES[method]
    if method == "flux":
        tuner = cls(server, participants, test, cost_models=cost_models,
                    config=run_config, flux_config=flux_config or default_flux_config())
    else:
        tuner = cls(server, participants, test, cost_models=cost_models, config=run_config)
    return tuner.run(num_rounds=num_rounds)


def run_all_methods(dataset_name: str, num_clients: int, num_rounds: int,
                    model: str = "llama", seed: int = 0,
                    run_config: Optional[RunConfig] = None,
                    methods: Sequence[str] = METHODS) -> Dict[str, RunResult]:
    """Run every requested method on a common federation (fresh model each)."""
    config, participants, test, cost_models = build_federation(
        dataset_name, num_clients, model=model, seed=seed)
    results = {}
    for method in methods:
        results[method] = run_method(method, config, participants, test, cost_models,
                                     num_rounds=num_rounds, run_config=run_config)
    return results


def time_to_common_target(results: Dict[str, RunResult], fraction: float = 0.9,
                          reference: str = "fmd") -> Dict[str, Optional[float]]:
    """Simulated seconds each method needs to reach ``fraction`` x reference best metric.

    The reference method (FMD = full fine-tuning) defines the quality target,
    mirroring the paper's fixed per-dataset targets.  Methods that never reach
    it report ``None``.
    """
    reference_best = results[reference].tracker.best_metric() if reference in results else \
        max(r.tracker.best_metric() for r in results.values())
    target = reference_best * fraction
    return {name: result.tracker.time_to_target(target) for name, result in results.items()}


# --------------------------------------------------------------------- output
def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(headers: Sequence[str], rows: Sequence[Sequence], width: int = 12) -> None:
    fmt = "".join(f"{{:>{width}}}" for _ in headers)
    print(fmt.format(*[str(h) for h in headers]))
    print("-" * (width * len(headers)))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:.3f}")
            elif cell is None:
                cells.append("n/a")
            else:
                cells.append(str(cell))
        print(fmt.format(*cells))


def print_series(label: str, times: Sequence[float], values: Sequence[float]) -> None:
    pairs = ", ".join(f"({t:.1f}s, {v:.3f})" for t, v in zip(times, values))
    print(f"  {label:>6s}: {pairs}")
