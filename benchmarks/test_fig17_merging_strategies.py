"""Figure 17: efficiency of the importance-based merging strategy.

The paper merges non-tuning experts with three weighting schemes — plain
averaging, activation-frequency weighting, and Flux's frequency x attention
weighting — and reports forward output error (plus time-to-accuracy).  The
frequency+attention weighting yields the lowest output error.
"""

import numpy as np

from common import DATASETS, make_vocab, model_config, print_header, print_table
from repro.analysis import output_error, profile_activation
from repro.core import FluxConfig, build_compact_model, plan_compact_model
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer

STRATEGIES = ["average", "frequency", "attention_frequency"]
PAPER_ERRORS = {  # Figure 17 top row (avg, weighted freq, weighted att+freq)
    "dolly": (0.32, 0.26, 0.21),
    "gsm8k": (0.25, 0.19, 0.13),
    "mmlu": (0.31, 0.23, 0.20),
    "piqa": (0.28, 0.26, 0.23),
}
NON_TUNING_BUDGET = 6


def _error_for_strategy(model, profile, batches, tuning, strategy):
    config = FluxConfig(merging_strategy=strategy, seed=0)
    plan = plan_compact_model(model, tuning, profile, max_non_tuning_slots=NON_TUNING_BUDGET,
                              config=config)
    compact, _, _ = build_compact_model(model, plan, profile, config)
    return output_error(model, compact, batches[:3])


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    model = MoETransformer(config)
    results = {}
    for dataset_name in DATASETS:
        dataset = make_dataset(dataset_name, vocab=vocab, num_samples=96, seed=8)
        batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                               max_seq_len=config.max_seq_len)
        profile = profile_activation(model, batches)
        tuning = {layer: [int(np.argmax(freq))] for layer, freq in enumerate(profile.frequencies)}
        results[dataset_name] = {
            strategy: _error_for_strategy(model, profile, batches, tuning, strategy)
            for strategy in STRATEGIES
        }
    return results


def test_fig17_merging_strategies(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 17: forward output error by merging strategy")
    rows = []
    for dataset_name, per_strategy in results.items():
        rows.append([dataset_name] + [round(per_strategy[s], 4) for s in STRATEGIES]
                    + [str(PAPER_ERRORS[dataset_name])])
    print_table(["dataset"] + STRATEGIES + ["paper"], rows, width=20)

    average_means = np.mean([results[d]["average"] for d in results])
    weighted_means = np.mean([results[d]["attention_frequency"] for d in results])
    # Importance-weighted merging is at least as good as plain averaging overall.
    assert weighted_means <= average_means * 1.05
    for per_strategy in results.values():
        for strategy in STRATEGIES:
            assert per_strategy[strategy] >= 0.0
