"""Figure 2: expert activation frequencies and per-layer variances.

The paper profiles LLaMA-MoE on GSM8K and MMLU and observes (a) strong
activation skew — some experts see a large share of tokens while others are
nearly idle — and (b) layer-dependent skew, with per-layer frequency variance
differing across depth.  This benchmark reproduces the heatmap rows (per-layer
frequency vectors) and the variance series for both datasets.
"""

import numpy as np
import pytest

from common import build_federation, make_vocab, print_header, print_table
from repro.analysis import profile_activation
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer


def _profile(dataset_name: str):
    vocab = make_vocab()
    config, _, _, _ = build_federation(dataset_name, num_clients=2, vocab=vocab)
    model = MoETransformer(config)
    dataset = make_dataset(dataset_name, vocab=vocab, num_samples=200, seed=1)
    batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                           max_seq_len=config.max_seq_len)
    return profile_activation(model, batches)


def _measure():
    return {name: _profile(name) for name in ("gsm8k", "mmlu")}


def test_fig02_activation_frequencies_and_variance(benchmark):
    profiles = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for name, profile in profiles.items():
        print_header(f"Figure 2 ({name}): activation frequency per layer and variance")
        rows = []
        for layer, freq in enumerate(profile.frequencies):
            rows.append([layer] + [round(float(f), 3) for f in freq] + [round(float(np.var(freq)), 5)])
        headers = ["layer"] + [f"e{e}" for e in range(len(profile.frequencies[0]))] + ["variance"]
        print_table(headers, rows, width=9)

        # Paper observation 1: activation is skewed — in at least one layer the
        # most active expert sees >2x the tokens of the least active one.
        ratios = [freq.max() / max(freq.min(), 1e-6) for freq in profile.frequencies]
        assert max(ratios) > 2.0

        # Paper observation 2: skew differs across layers (variances not all equal).
        variances = profile.layer_variance()
        assert variances.max() > variances.min()

        # Frequencies are proper distributions.
        for freq in profile.frequencies:
            assert freq.sum() == pytest.approx(1.0)
