"""Figure 18: accuracy of the forward-only gradient estimation.

The paper compares the forward-only (perturbation-based) gradient estimate of
exploration experts against the back-propagated ground truth over consecutive
fine-tuning rounds, reporting an average normalised cosine distance of ~0.29
that shrinks as training progresses.  This benchmark tracks the same distance
over rounds of local fine-tuning.
"""

import numpy as np

from common import (
    DATASETS,
    FAST,
    make_vocab,
    model_config,
    print_header,
    print_table,
)
from repro.autograd import Adam
from repro.core import estimate_expert_gradient, gradient_cosine_distance, true_expert_gradient
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer

ROUNDS = 4 if FAST else 8
PERTURBATIONS = 16


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    results = {}
    for dataset_name in DATASETS:
        dataset = make_dataset(dataset_name, vocab=vocab, num_samples=120, seed=9)
        batches = make_batches(dataset.samples, 16, vocab, seed=0,
                               max_seq_len=config.max_seq_len)
        model = MoETransformer(config)
        model.freeze_non_expert_parameters()
        optimizer = Adam([p for p in model.parameters() if p.requires_grad], lr=5e-3)

        # probe the most active expert of the first layer
        model.forward(batches[0].input_ids, attention_mask=batches[0].attention_mask)
        expert = int(np.argmax(model.activation_frequencies()[0]))

        distances = []
        for round_index in range(ROUNDS):
            probe = batches[round_index % len(batches)]
            truth = true_expert_gradient(model, [probe], 0, expert)
            estimate = estimate_expert_gradient(model, [probe], 0, expert,
                                                num_perturbations=PERTURBATIONS,
                                                sigma=1e-3, seed=round_index)
            distances.append(gradient_cosine_distance(estimate, truth))
            # one round of expert-only fine-tuning between measurements
            for batch in batches[:2]:
                optimizer.zero_grad()
                loss = model.compute_loss(batch.input_ids, labels=batch.labels,
                                          attention_mask=batch.attention_mask)
                loss.backward()
                optimizer.step()
        results[dataset_name] = distances
    return results


def test_fig18_gradient_estimation_accuracy(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 18: cosine distance between estimated and true expert gradients")
    rows = []
    for dataset_name, distances in results.items():
        rows.append([dataset_name] + [round(d, 3) for d in distances])
    print_table(["dataset"] + [f"r{r}" for r in range(ROUNDS)], rows, width=10)

    for dataset_name, distances in results.items():
        mean_distance = float(np.mean(distances))
        print(f"  {dataset_name}: mean distance {mean_distance:.3f}")
        # The estimate must carry real directional signal: clearly better than
        # an orthogonal (distance 1.0) or opposite (distance 2.0) direction.
        assert mean_distance < 1.0
