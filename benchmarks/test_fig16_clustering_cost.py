"""Figure 16: cost of clustering non-tuning experts — per-layer vs fused.

The paper clusters 128 non-tuning experts under total budgets of 32/48/64/96
and shows that fusing the per-layer K-Means runs into one constrained run cuts
the clustering time by roughly 40x (307-348ms -> 5.5-11.7ms) by eliminating
repeated centroid initialisation and per-layer dispatch.
"""

import numpy as np

from common import print_header, print_table
from repro.core import cluster_experts

NUM_EXPERTS = 128
NUM_LAYERS = 8
FEATURE_DIM = 512
BUDGETS = [32, 48, 64, 96]
PAPER_MS = {  # (per-layer ms, fused ms)
    32: (307.68, 5.47),
    48: (312.95, 6.68),
    64: (325.54, 8.40),
    96: (348.04, 11.74),
}


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    per_layer = NUM_EXPERTS // NUM_LAYERS
    features = [rng.standard_normal((per_layer, FEATURE_DIM)) for _ in range(NUM_LAYERS)]
    ids = [list(range(per_layer)) for _ in range(NUM_LAYERS)]
    return features, ids


def _measure():
    features, ids = _inputs()
    timings = {}
    for budget in BUDGETS:
        per_layer_budget = [budget // NUM_LAYERS] * NUM_LAYERS
        per_layer = cluster_experts(features, ids, per_layer_budget, mode="per_layer", seed=1)
        fused = cluster_experts(features, ids, per_layer_budget, mode="fused", seed=1)
        timings[budget] = {
            "per_layer_ms": per_layer.elapsed_seconds * 1e3,
            "fused_ms": fused.elapsed_seconds * 1e3,
            "per_layer_clusters": per_layer.num_clusters(),
            "fused_clusters": fused.num_clusters(),
        }
    return timings


def test_fig16_clustering_cost(benchmark):
    timings = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header(f"Figure 16: clustering {NUM_EXPERTS} non-tuning experts, per-layer vs fused")
    rows = []
    for budget, entry in timings.items():
        rows.append([budget, round(entry["per_layer_ms"], 2), round(entry["fused_ms"], 2),
                     round(entry["per_layer_ms"] / max(entry["fused_ms"], 1e-6), 1),
                     str(PAPER_MS[budget])])
    print_table(["budget", "per_layer_ms", "fused_ms", "speedup_x", "paper(ms)"], rows, width=15)

    for budget, entry in timings.items():
        # Both modes produce (at most) the requested number of clusters.
        assert entry["fused_clusters"] <= budget
        assert entry["per_layer_clusters"] <= budget
        # Fused clustering must not be meaningfully slower than per-layer
        # clustering (the paper's 40x gain comes from eliminating per-layer
        # kernel dispatch/initialisation overhead in the DL framework; NumPy
        # pays far less of that overhead, so the measured gap is smaller).
        assert entry["fused_ms"] <= entry["per_layer_ms"] * 1.5
    mean_speedup = float(np.mean([entry["per_layer_ms"] / max(entry["fused_ms"], 1e-6)
                                  for entry in timings.values()]))
    print(f"\nmean fused-over-per-layer speedup: {mean_speedup:.2f}x")
    assert mean_speedup > 0.9
