"""Figure 5: activation-frequency estimation error of quantized profiling.

The paper profiles expert activation with 2/4/8-bit quantized models on the
four datasets and reports the estimation error against the full-precision
model (e.g. ~11% mean error at 4 bits), with higher precision giving lower
error.  This benchmark reproduces the 4 datasets x 3 bit-widths grid.
"""


from common import DATASETS, make_vocab, model_config, print_header, print_table
from repro.analysis import estimation_error, profile_activation
from repro.core import QuantizedProfiler
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer

BITS = [2, 4, 8]
PAPER_ERRORS = {  # percent, from Figure 5
    "dolly": {2: 15.25, 4: 14.76, 8: 12.97},
    "gsm8k": {2: 9.74, 4: 7.22, 8: 6.84},
    "mmlu": {2: 12.19, 4: 10.73, 8: 9.26},
    "piqa": {2: 12.63, 4: 11.36, 8: 10.21},
}


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    model = MoETransformer(config)
    errors = {}
    for dataset_name in DATASETS:
        dataset = make_dataset(dataset_name, vocab=vocab, num_samples=160, seed=2)
        batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                               max_seq_len=config.max_seq_len)
        reference = profile_activation(model, batches)
        errors[dataset_name] = {}
        for bits in BITS:
            outcome = QuantizedProfiler(bits=bits).profile(model, batches)
            errors[dataset_name][bits] = estimation_error(reference, outcome.profile)
    return errors


def test_fig05_quantized_profiling_error(benchmark):
    errors = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 5: activation-frequency estimation error (%) by quantization bits")
    rows = []
    for dataset_name in DATASETS:
        row = [dataset_name]
        for bits in BITS:
            row.append(round(errors[dataset_name][bits], 2))
        row.append(str({b: PAPER_ERRORS[dataset_name][b] for b in BITS}))
        rows.append(row)
    print_table(["dataset", "bit-2", "bit-4", "bit-8", "paper"], rows, width=16)

    for dataset_name in DATASETS:
        per_bits = errors[dataset_name]
        # Shape: higher precision never estimates worse than 2-bit profiling.
        assert per_bits[8] <= per_bits[2] + 1e-9
        # Quantized profiling stays usable (the paper reports ~7-15%).
        assert per_bits[4] < 60.0
