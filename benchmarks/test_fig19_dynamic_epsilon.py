"""Figure 19: fixed vs dynamic exploration/exploitation balance (ε).

The paper compares ε=0.3 (exploration-heavy), ε=0.7 (exploitation-heavy) and
Flux's dynamic schedule.  The dynamic schedule converges at least as fast as
the best fixed setting because it explores early (when utility estimates are
poor) and exploits late.
"""


from common import (
    build_federation,
    default_flux_config,
    default_rounds,
    default_run_config,
    print_header,
    print_series,
)
from repro.core import EpsilonSchedule, FluxFineTuner
from repro.federated import ParameterServer
from repro.models import MoETransformer

ROUNDS = 8
SETTINGS = {
    "eps=0.3": EpsilonSchedule.fixed(0.3),
    "eps=0.7": EpsilonSchedule.fixed(0.7),
    "dynamic": EpsilonSchedule(initial=0.5, final=0.95, warmup_rounds=5),
}


def _measure():
    results = {}
    for dataset_name in ("gsm8k", "dolly"):
        config, participants, test, cost_models = build_federation(dataset_name, num_clients=6,
                                                                   seed=50)
        per_setting = {}
        for label, schedule in SETTINGS.items():
            flux_config = default_flux_config(epsilon=schedule)
            tuner = FluxFineTuner(ParameterServer(MoETransformer(config)), participants, test,
                                  cost_models=cost_models, config=default_run_config(),
                                  flux_config=flux_config)
            per_setting[label] = tuner.run(num_rounds=default_rounds(ROUNDS))
        results[dataset_name] = per_setting
    return results


def test_fig19_dynamic_epsilon(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for dataset_name, per_setting in results.items():
        print_header(f"Figure 19 ({dataset_name}): relative accuracy vs time by epsilon strategy")
        for label, result in per_setting.items():
            print_series(label, result.tracker.times(), result.tracker.metric_values())

        best_fixed = max(per_setting["eps=0.3"].tracker.best_metric(),
                         per_setting["eps=0.7"].tracker.best_metric())
        dynamic_best = per_setting["dynamic"].tracker.best_metric()
        print(f"  best fixed: {best_fixed:.3f}  dynamic: {dynamic_best:.3f}")
        # The dynamic schedule should be competitive with the best fixed epsilon.
        assert dynamic_best >= 0.75 * best_fixed
