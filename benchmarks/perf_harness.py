"""Perf-regression harness for the MoE training hot path.

Times the throughput of the expert-dispatch hot loop and of end-to-end
training steps for every (dispatch, dtype) configuration of the tensor
engine, and writes the results to ``BENCH_hotpath.json`` so later PRs have a
measured trajectory to defend.

Two benchmark families per model preset:

* ``hot_loop`` — the MoE hot-loop microbenchmark: the preset's MoE layer
  driven directly (routing statistics enabled, attention profiling signal and
  sample ids supplied, exactly as the transformer invokes it), phases
  ``forward``, ``forward_backward`` and ``round`` (forward + backward + fused
  Adam step).
* ``end_to_end`` — full ``MoETransformer.compute_loss`` + backward + optimizer
  step on the preset.

Configurations measured: ``loop/float64`` (the seed's per-expert dispatch
algorithm on the float64 engine), ``batched/float64`` and ``batched/float32``
(the grouped-GEMM fast path).  ``--seed-src`` additionally benchmarks a
pristine seed checkout (same driver, via a subprocess) and records it under
``seed_reference``.

Usage::

    python benchmarks/perf_harness.py                     # full run
    python benchmarks/perf_harness.py --quick             # CI smoke
    python benchmarks/perf_harness.py --check BENCH_hotpath.json
    python benchmarks/perf_harness.py --seed-src /path/to/seed/src

The regression check compares the machine-independent *speedup* of
``batched/float32`` over ``loop/float64`` against the committed baseline and
fails (exit code 1) when it has regressed by more than ``--tolerance``
(default 30%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc
from datetime import datetime, timezone
from typing import Dict, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(REPO_ROOT, "src")):
    # Appended (not prepended) so a PYTHONPATH pointing at another checkout —
    # the --seed-src worker mechanism — takes precedence over this repo.
    sys.path.append(os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

#: benchmarked (dispatch, dtype) configurations
CONFIGS = (("loop", "float64"), ("batched", "float64"), ("batched", "float32"))

#: hot-loop-only extra configuration: zero-skipping sparse dispatch over
#: experts sparsified to SPARSE_DENSITY (quantized to SPARSE_BITS).  Not a
#: like-for-like model with the dense configs — it is bit-identical to
#: ``batched`` *on the same sparsified weights*, which is what the dedicated
#: ``--suite sparse`` gates.
HOT_EXTRA_CONFIGS = (("sparse", "float32"),)

#: expert channel density / fake-quantization width used by every sparse
#: benchmark (25% live channels, ternary-ish int2 codes)
SPARSE_DENSITY = 0.25
SPARSE_BITS = 2

#: the fast path and the baseline the speedup headline compares
FAST_CONFIG = "batched/float32"
BASELINE_CONFIG = "loop/float64"

PRESET_NAMES = ("tiny_moe", "llama_moe_mini")


def _best_time(fn, iters: int, reps: int) -> float:
    """Best-of-``reps`` wall time of ``iters`` calls (robust to noisy hosts)."""
    fn()  # warm-up: JIT-free but primes caches/allocator
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / iters


def _interleaved_best_times(config_fns: Dict[str, Dict], iters: int, reps: int) -> Dict[str, Dict[str, float]]:
    """Best-of timing with configs/phases interleaved per repetition.

    Sequential per-config timing lets slow host-load drift masquerade as a
    speedup change; interleaving hits every config with the same drift so the
    *ratios* the regression check relies on stay stable.
    """
    for phases in config_fns.values():
        for fn in phases.values():
            fn()  # warm-up
    best: Dict[str, Dict[str, float]] = {
        name: {phase: float("inf") for phase in phases}
        for name, phases in config_fns.items()
    }
    for _ in range(reps):
        for name, phases in config_fns.items():
            for phase, fn in phases.items():
                start = time.perf_counter()
                for _ in range(iters):
                    fn()
                elapsed = (time.perf_counter() - start) / iters
                if elapsed < best[name][phase]:
                    best[name][phase] = elapsed
    return best


def _make_layer(preset: str, dispatch: Optional[str], dtype: Optional[str]):
    """Build the preset's MoE layer; kwargs degrade gracefully on seed code."""
    from repro.models.moe_layer import MoELayer
    from repro.models.presets import get_preset

    config = get_preset(preset.replace("_", "-"))
    kwargs = {}
    if dispatch is not None:
        kwargs["dispatch"] = dispatch
    try:
        from repro.autograd import default_dtype
    except ImportError:  # seed checkout: float64 engine only
        default_dtype = None
    rng = np.random.default_rng(0)

    def build():
        try:
            return MoELayer(d_model=config.d_model, d_ff=config.d_ff,
                            num_experts=config.experts_per_layer()[0],
                            top_k=config.top_k, rng=rng, **kwargs)
        except TypeError:  # seed checkout: no dispatch kwarg
            return MoELayer(d_model=config.d_model, d_ff=config.d_ff,
                            num_experts=config.experts_per_layer()[0],
                            top_k=config.top_k, rng=rng)

    if default_dtype is not None and dtype is not None:
        with default_dtype(dtype):
            return build()
    return build()


def _make_model(preset: str, dispatch: Optional[str], dtype: Optional[str]):
    from repro.models import MoETransformer
    from repro.models.presets import get_preset

    if dispatch is not None and dtype is not None:
        try:
            config = get_preset(preset.replace("_", "-"), dtype=dtype, dispatch=dispatch)
            return MoETransformer(config)
        except TypeError:
            pass  # seed checkout: no dtype/dispatch knobs
    return MoETransformer(get_preset(preset.replace("_", "-")))


def build_hot_loop(preset: str, dispatch: Optional[str], dtype: Optional[str],
                   tokens: int) -> Dict:
    """Phase closures for the MoE hot-loop microbenchmark of one config."""
    layer = _make_layer(preset, dispatch, dtype)
    if dispatch == "sparse":
        # The sparse fast path only pays off on structurally-sparsified
        # experts; on dense weights it falls back to the batched plan.
        layer.sparsify_experts(SPARSE_DENSITY, bits=SPARSE_BITS)
    return _layer_phases(layer, tokens, dtype or "float64")


def _layer_phases(layer, tokens: int, np_dtype: str) -> Dict:
    """forward / forward_backward / round closures driving one MoE layer."""
    from repro.autograd import Adam, Tensor

    # Sequences of 32 tokens: tiny_moe's own max_seq_len, so the
    # microbenchmark drives the layer with shapes the preset actually sees.
    batch = max(tokens // 32, 1)
    x = np.random.default_rng(1).standard_normal(
        (batch, tokens // batch, layer.d_model)).astype(np_dtype)
    attention = np.random.default_rng(2).random((batch, tokens // batch))
    sample_ids = np.arange(batch)
    optimizer = Adam(list(layer.parameters()), lr=1e-8)

    # Precomputed output gradient: backward from the layer output directly
    # instead of through a reduction node, so the measurement isolates the
    # dispatch hot loop rather than the benchmark driver.
    grad_ones = np.ones(x.shape, dtype=np_dtype)

    def forward():
        layer(Tensor(x), token_attention=attention, sample_ids=sample_ids)

    def forward_backward():
        out = layer(Tensor(x, requires_grad=True),
                    token_attention=attention, sample_ids=sample_ids)
        out.backward(grad_ones)
        optimizer.zero_grad()

    def round_step():
        out = layer(Tensor(x, requires_grad=True),
                    token_attention=attention, sample_ids=sample_ids)
        out.backward(grad_ones)
        optimizer.step()
        optimizer.zero_grad()

    return {"forward": forward, "forward_backward": forward_backward, "round": round_step}


def build_end_to_end(preset: str, dispatch: Optional[str], dtype: Optional[str],
                     tokens: int) -> Dict:
    """Phase closures for the full-model training-round benchmark."""
    from repro.autograd import Adam

    model = _make_model(preset, dispatch, dtype)
    seq_len = min(32, model.config.max_seq_len)
    batch = max(tokens // seq_len, 1)
    ids = np.random.default_rng(0).integers(0, model.config.vocab_size, size=(batch, seq_len))
    sample_ids = np.arange(batch)
    optimizer = Adam(list(model.parameters()), lr=1e-8)

    def round_step():
        loss = model.compute_loss(ids, sample_ids=sample_ids)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()

    return {"round": round_step}


def _peak_temporaries(round_fn) -> int:
    """Peak Python/NumPy heap allocated during one training round (bytes)."""
    tracemalloc.start()
    round_fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _hot_loop_result(times: Dict[str, float], tokens: int, round_fn) -> Dict[str, float]:
    return {
        "forward_tokens_per_s": tokens / times["forward"],
        "forward_backward_tokens_per_s": tokens / times["forward_backward"],
        "round_tokens_per_s": tokens / times["round"],
        "rounds_per_s": 1.0 / times["round"],
        "peak_temporaries_bytes": _peak_temporaries(round_fn),
    }


def bench_hot_loop(preset: str, dispatch: Optional[str], dtype: Optional[str],
                   tokens: int, iters: int, reps: int) -> Dict[str, float]:
    """MoE layer forward / forward+backward / round throughput (tokens/s)."""
    phases = build_hot_loop(preset, dispatch, dtype, tokens)
    times = {name: _best_time(fn, iters, reps) for name, fn in phases.items()}
    return _hot_loop_result(times, tokens, phases["round"])


def bench_end_to_end(preset: str, dispatch: Optional[str], dtype: Optional[str],
                     tokens: int, iters: int, reps: int) -> Dict[str, float]:
    """Full-model loss + backward + optimizer step throughput (tokens/s)."""
    phases = build_end_to_end(preset, dispatch, dtype, tokens)
    seq_len = 32  # matches build_end_to_end batching
    actual_tokens = max(tokens // seq_len, 1) * seq_len
    per_round = _best_time(phases["round"], iters, reps)
    return {"round_tokens_per_s": actual_tokens / per_round,
            "rounds_per_s": 1.0 / per_round}


def _speedup(configs: Dict[str, Dict[str, float]], key: str) -> Optional[float]:
    fast = configs.get(FAST_CONFIG, {}).get(key)
    base = configs.get(BASELINE_CONFIG, {}).get(key)
    if not fast or not base:
        return None
    return fast / base


def run_suite(quick: bool) -> Dict:
    # 1024 tokens = batch 32 × seq 32 (the tiny_moe preset's max_seq_len)
    tokens = 1024
    iters = 3 if quick else 10
    reps = 4 if quick else 6
    suite: Dict = {}
    for preset in PRESET_NAMES:
        e2e_tokens = min(tokens, 1024)
        hot_builds = {f"{dispatch}/{dtype}": build_hot_loop(preset, dispatch, dtype, tokens)
                      for dispatch, dtype in CONFIGS + HOT_EXTRA_CONFIGS}
        hot_times = _interleaved_best_times(hot_builds, iters, reps)
        hot_configs = {name: _hot_loop_result(times, tokens, hot_builds[name]["round"])
                       for name, times in hot_times.items()}
        e2e_builds = {f"{dispatch}/{dtype}": build_end_to_end(preset, dispatch, dtype, e2e_tokens)
                      for dispatch, dtype in CONFIGS}
        e2e_times = _interleaved_best_times(e2e_builds, max(iters // 2, 1), reps)
        actual_e2e_tokens = max(e2e_tokens // 32, 1) * 32
        e2e_configs = {name: {"round_tokens_per_s": actual_e2e_tokens / times["round"],
                              "rounds_per_s": 1.0 / times["round"]}
                       for name, times in e2e_times.items()}
        suite[preset] = {
            "hot_loop": {
                "tokens": tokens,
                "configs": hot_configs,
                "speedup_batched_f32_vs_loop_f64":
                    _speedup(hot_configs, "forward_backward_tokens_per_s"),
                "round_speedup_batched_f32_vs_loop_f64":
                    _speedup(hot_configs, "round_tokens_per_s"),
                # informational: sparse runs a sparsified model, so this is a
                # work-reduction ratio, not a like-for-like config speedup
                # (the apples-to-apples gate lives in --suite sparse)
                "round_speedup_sparse_f32_vs_batched_f32": (
                    hot_configs["sparse/float32"]["round_tokens_per_s"]
                    / hot_configs["batched/float32"]["round_tokens_per_s"]),
            },
            "end_to_end": {
                "tokens": min(tokens, 1024),
                "configs": e2e_configs,
                "round_speedup_batched_f32_vs_loop_f64":
                    _speedup(e2e_configs, "round_tokens_per_s"),
            },
        }
    return suite


# ------------------------------------------------------- aggregation suite
#: benchmarked root shard counts (1 = the flat serial baseline shape)
AGG_SHARD_COUNTS = (1, 4, 8)
#: benchmarked aggregation-tree shapes, depth 1/2/3
AGG_TREE_TIERS = ((8,), (8, 4), (8, 4, 2))
AGG_PRESET = "tiny_moe"


def _make_aggregation_updates(participants: int):
    """A fleet's worth of expert updates against a fresh preset model."""
    from repro.federated import ExpertUpdate
    from repro.models import MoETransformer
    from repro.models.presets import get_preset

    model = MoETransformer(get_preset(AGG_PRESET.replace("_", "-")))
    rng = np.random.default_rng(0)
    updates = []
    for pid in range(participants):
        for layer, expert in model.iter_expert_ids():
            state = {name: value + 0.01 * rng.normal(size=value.shape)
                     for name, value in model.expert_state(layer, expert).items()}
            updates.append(ExpertUpdate(pid, layer, expert, state,
                                        weight=float(pid % 3 + 1)))
    return model, updates


def _bench_shard_fold(updates, num_shards: int, iters: int, reps: int,
                      pool) -> Dict:
    """Serial vs pooled fold of one round's updates at ``num_shards`` shards.

    Three measurements, interleaved per repetition so host-load drift cancels
    out of the ratios:

    * ``serial_wire_fold_s`` — the serial baseline: the production fused
      decode-and-fold path (``aggregate_payloads`` through the server's
      persistent scratch pool), on one thread.  This is exactly what the root
      of a ``transport="wire"`` deployment does today, and exactly the total
      work the pooled path partitions — the headline speedup compares like
      with like.  ``serial_inmemory_fold_s`` (the analytic-transport fold, no
      decode) is recorded alongside for transparency.
    * per-shard worker jobs + the parent merge, each timed in isolation; their
      combination ``critical_path_s = max(job) + merge`` is the fold wall-clock
      on a host with >= ``num_shards`` cores (workers only wait for the
      slowest shard).  Measuring jobs serially keeps the number honest on
      constrained hosts, where concurrently scheduled workers would timeshare
      one core and inflate each other's wall time.
    * ``pooled_wall_s`` — the real process-pool fold on *this* host, IPC and
      (single-core) timesharing included.
    """
    from repro.comm import decode_state_dict
    from repro.federated import ShardedParameterServer
    from repro.models import MoETransformer
    from repro.models.presets import get_preset
    from repro.runtime.executor import _fold_shard_frames, frame_update

    config = get_preset(AGG_PRESET.replace("_", "-"))
    serial_server = ShardedParameterServer(MoETransformer(config),
                                           num_shards=num_shards)
    all_framed = [frame_update(update) for update in updates]
    shard_framed = [[] for _ in range(num_shards)]
    for update, framed in zip(updates, all_framed):
        shard_framed[serial_server.shard_of(update.key)].append(framed)
    worker_results = [_fold_shard_frames(None, False, framed)
                      for framed in shard_framed if framed]
    merge_model = MoETransformer(config)

    def serial_wire():
        serial_server.aggregate_payloads(frame for frame, _ in all_framed)

    def merge():
        for shard_result in worker_results:
            for (layer, expert), state_frame, _ in shard_result:
                merge_model.load_expert_state(layer, expert,
                                              decode_state_dict(state_frame))

    fns = {"serial_inmemory": {"fold": lambda: serial_server.aggregate(list(updates))},
           "serial_wire": {"fold": serial_wire},
           "merge": {"fold": merge}}
    for shard, framed in enumerate(shard_framed):
        if framed:
            fns[f"job{shard}"] = {
                "fold": lambda framed=framed: _fold_shard_frames(None, False, framed)}
    if num_shards > 1:
        pooled_server = ShardedParameterServer(MoETransformer(config),
                                               num_shards=num_shards)
        pooled_server.fold_pool = pool
        fns["pooled"] = {"fold": lambda: pooled_server.aggregate(list(updates))}

    times = _interleaved_best_times(fns, iters, reps)
    serial_s = times["serial_wire"]["fold"]
    job_s = [times[name]["fold"] for name in times if name.startswith("job")]
    critical_s = max(job_s) + times["merge"]["fold"]
    result = {
        "serial_wire_fold_s": serial_s,
        "serial_updates_per_s": len(updates) / serial_s,
        "serial_inmemory_fold_s": times["serial_inmemory"]["fold"],
        "serial_inmemory_updates_per_s":
            len(updates) / times["serial_inmemory"]["fold"],
        "shard_job_s": job_s,
        "merge_s": times["merge"]["fold"],
        "critical_path_s": critical_s,
        "critical_path_updates_per_s": len(updates) / critical_s,
        "speedup_critical_path_vs_serial": serial_s / critical_s,
        "speedup_critical_path_vs_serial_inmemory":
            times["serial_inmemory"]["fold"] / critical_s,
    }
    if "pooled" in times:
        result["pooled_wall_s"] = times["pooled"]["fold"]
        result["pooled_wall_updates_per_s"] = len(updates) / times["pooled"]["fold"]
        result["speedup_pooled_wall_vs_serial"] = serial_s / times["pooled"]["fold"]
    return result


def _bench_tree_fold(updates, tiers, iters: int, reps: int, pool) -> Dict:
    """Serial vs pooled N-tier tree aggregation of one round's updates.

    The serial baseline decodes the participant wire frames and runs the
    serial tree fold — the work of a wire deployment's aggregation plane on
    one thread, and the exact total the pooled path partitions.
    ``critical_path_s`` combines the slowest tier-0 node pre-fold job
    (decode + fold, isolated-timed as for shards) with the measured
    non-parallel remainder (channel hops, inner-tier folds, root aggregate)
    = ``serial_s - decode_s - leaf_fold_s``.
    """
    from repro.comm import decode_update, get_codec
    from repro.federated import AggregationTree, ParameterServer
    from repro.models import MoETransformer
    from repro.models.presets import get_preset
    from repro.runtime.executor import _prefold_node_frames, frame_update

    config = get_preset(AGG_PRESET.replace("_", "-"))
    tree = AggregationTree(tiers)
    server = ParameterServer(MoETransformer(config))
    codec = get_codec("fp64")
    all_framed = [frame_update(update, codec) for update in updates]
    node_framed: Dict[int, list] = {}
    for update, framed in zip(updates, all_framed):
        node_framed.setdefault(tree.edge_of(update.participant_id), []).append(framed)

    def serial_wire():
        tree.aggregate(server, iter([decode_update(frame) for frame, _ in all_framed]))

    def leaf_fold():
        tree.reset_round_metrics()
        tree._fold_leaf_tier(iter(updates), None, None, codec)

    fns = {
        "serial_wire": {"fold": serial_wire},
        "decode": {"fold": lambda: [decode_update(frame) for frame, _ in all_framed]},
        "leaf": {"fold": leaf_fold},
        "pooled": {"fold": lambda: tree.aggregate(server, iter(updates), pool=pool)},
    }
    for node, framed in sorted(node_framed.items()):
        fns[f"job{node}"] = {
            "fold": lambda node=node, framed=framed: _prefold_node_frames(
                None, tree.pseudo_id(0, node), framed)}

    times = _interleaved_best_times(fns, iters, reps)
    serial_s = times["serial_wire"]["fold"]
    job_s = [times[name]["fold"] for name in times if name.startswith("job")]
    remainder_s = max(serial_s - times["decode"]["fold"] - times["leaf"]["fold"], 0.0)
    critical_s = max(job_s) + remainder_s
    return {
        "depth": len(tiers),
        "serial_wire_s": serial_s,
        "serial_updates_per_s": len(updates) / serial_s,
        "pooled_wall_s": times["pooled"]["fold"],
        "decode_s": times["decode"]["fold"],
        "leaf_fold_s": times["leaf"]["fold"],
        "node_job_s": job_s,
        "remainder_s": remainder_s,
        "critical_path_s": critical_s,
        "critical_path_updates_per_s": len(updates) / critical_s,
        "speedup_critical_path_vs_serial": serial_s / critical_s,
    }


def _bench_decode(updates, iters: int, reps: int) -> Dict:
    """Fresh-allocation vs scratch-pool decode throughput over one round's
    wire frames (the ``decode_into`` fast path the fused fold rides)."""
    from repro.comm import ScratchPool, decode_update
    from repro.runtime.executor import frame_update

    all_framed = [frame_update(update)[0] for update in updates]
    scratch = ScratchPool()

    def fresh():
        for frame in all_framed:
            decode_update(frame)

    def scratched():
        for frame in all_framed:
            decode_update(frame, scratch=scratch)
            scratch.recycle()

    times = _interleaved_best_times({"fresh": {"decode": fresh},
                                     "scratch": {"decode": scratched}},
                                    iters, reps)
    fresh_s = times["fresh"]["decode"]
    scratch_s = times["scratch"]["decode"]
    return {
        "decode_fresh_s": fresh_s,
        "decode_fresh_updates_per_s": len(all_framed) / fresh_s,
        "decode_scratch_s": scratch_s,
        "decode_scratch_updates_per_s": len(all_framed) / scratch_s,
        "speedup_scratch_vs_fresh": fresh_s / scratch_s,
    }


def _bench_alloc_probe(updates) -> Dict:
    """Tracemalloc probe of one *warm* fold round: peak temporary bytes of
    the fused scratch path vs the buffered decode-then-fold path, plus the
    scratch pool's steady-state allocation count (must stay 0 — any new
    ``np.empty`` inside a warm round is a fast-path regression).
    """
    from repro.comm import decode_update
    from repro.federated import ShardedParameterServer
    from repro.models import MoETransformer
    from repro.models.presets import get_preset
    from repro.runtime.executor import frame_update

    config = get_preset(AGG_PRESET.replace("_", "-"))
    server = ShardedParameterServer(MoETransformer(config), num_shards=1)
    all_framed = [frame_update(update)[0] for update in updates]

    def fused():
        server.aggregate_payloads(iter(all_framed))

    def buffered():
        server.aggregate([decode_update(frame) for frame in all_framed])

    fused()  # warm: scratch pool filled, allocator and model buffers primed
    buffered()
    allocations_before = server.fold_scratch.allocations
    tracemalloc.start()
    fused()
    _, fused_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    steady_allocations = server.fold_scratch.allocations - allocations_before
    tracemalloc.start()
    buffered()
    _, buffered_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "fused_round_peak_bytes": int(fused_peak),
        "buffered_round_peak_bytes": int(buffered_peak),
        "peak_reduction_buffered_vs_fused": buffered_peak / max(fused_peak, 1),
        "steady_state_scratch_allocations": int(steady_allocations),
    }


def run_aggregation_suite(quick: bool) -> Dict:
    """The aggregation-throughput benchmark family (``--suite aggregation``)."""
    from repro.runtime import AggregationPool

    # Quick mode trims repetitions but keeps the full workload shape: the
    # gated speedups depend on the serial/parallel split of the work, so
    # shrinking the fleet would move the ratios, not just the noise.
    participants = 64
    iters = 2 if quick else 4
    reps = 3 if quick else 6
    model, updates = _make_aggregation_updates(participants)
    pool = AggregationPool()
    try:
        pool.prefold_nodes(None, [(0, -1, [])])  # spawn workers outside the timings
        shards = {str(n): _bench_shard_fold(updates, n, iters, reps, pool)
                  for n in AGG_SHARD_COUNTS}
        tree = {"x".join(map(str, tiers)): _bench_tree_fold(updates, tiers, iters,
                                                            reps, pool)
                for tiers in AGG_TREE_TIERS}
        decode = _bench_decode(updates, iters, reps)
        alloc_probe = _bench_alloc_probe(updates)
    finally:
        pool.close()
    return {
        "preset": AGG_PRESET,
        "participants": participants,
        "num_keys": len(list(model.iter_expert_ids())),
        "num_updates": len(updates),
        "host_cpus": os.cpu_count(),
        "note": ("serial baseline = one thread decoding + folding the round's "
                 "wire frames (what a transport='wire' root does); "
                 "critical_path_s = max(isolated per-shard/node decode+fold "
                 "job) + measured merge/remainder: the fold wall-clock on a "
                 "host with >= num_shards cores partitioning that same work. "
                 "pooled_wall_s is the real process pool on this host "
                 "(single-core hosts timeshare, so it shows IPC overhead "
                 "rather than speedup); serial_inmemory_* is the analytic-"
                 "transport fold that never decodes, for transparency. "
                 "decode compares fresh-allocation vs scratch-pool "
                 "decode_update throughput; alloc_probe tracemallocs one "
                 "warm fused round (steady_state_scratch_allocations must "
                 "stay 0)."),
        "shards": shards,
        "tree": tree,
        "decode": decode,
        "alloc_probe": alloc_probe,
        "headline_speedup_8shards":
            shards["8"]["speedup_critical_path_vs_serial"],
    }


def check_aggregation_regression(current: Dict, baseline_path: str,
                                 tolerance: float) -> int:
    """Gate the machine-independent critical-path speedups vs the baseline."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    failures = []

    def gate(section: str, name: str, entry: Dict, ref_entry: Dict) -> None:
        ref = ref_entry.get("speedup_critical_path_vs_serial")
        if not ref:
            return
        cur = entry.get("speedup_critical_path_vs_serial")
        if not cur:
            # A committed baseline entry the current run never produced is a
            # broken gate, not a pass — otherwise a partial suite (or renamed
            # shard/tier configs) would silently stop gating anything.
            print(f"[MISSING] aggregation/{section}/{name}: committed "
                  f"{ref:.2f}x has no current measurement")
            failures.append((section, name, None, ref))
            return
        floor = (1.0 - tolerance) * ref
        status = "OK" if cur >= floor else "REGRESSION"
        print(f"[{status}] aggregation/{section}/{name}: current {cur:.2f}x vs "
              f"committed {ref:.2f}x (floor {floor:.2f}x)")
        if cur < floor:
            failures.append((section, name, cur, ref))

    def gate_ratio(section: str, metric: str, cur, ref) -> None:
        """Gate a higher-is-better ratio at ``(1 - tolerance) * ref``."""
        if not ref:
            return
        if not cur:
            print(f"[MISSING] aggregation/{section}/{metric}: committed "
                  f"{ref:.2f}x has no current measurement")
            failures.append((section, metric, None, ref))
            return
        floor = (1.0 - tolerance) * ref
        status = "OK" if cur >= floor else "REGRESSION"
        print(f"[{status}] aggregation/{section}/{metric}: current {cur:.2f}x "
              f"vs committed {ref:.2f}x (floor {floor:.2f}x)")
        if cur < floor:
            failures.append((section, metric, cur, ref))

    committed_agg = committed.get("aggregation", {})
    current_agg = current.get("aggregation", {})
    if not any(committed_agg.get(section) for section in ("shards", "tree")):
        print(f"[MISSING] {baseline_path} carries no aggregation suite "
              "baseline; a gated suite without a committed reference cannot "
              "pass")
        return 1
    for section in ("shards", "tree"):
        for name, ref_entry in committed_agg.get(section, {}).items():
            gate(section, name, current_agg.get(section, {}).get(name, {}), ref_entry)
    gate_ratio("decode", "speedup_scratch_vs_fresh",
               current_agg.get("decode", {}).get("speedup_scratch_vs_fresh"),
               committed_agg.get("decode", {}).get("speedup_scratch_vs_fresh"))
    gate_ratio("alloc_probe", "peak_reduction_buffered_vs_fused",
               current_agg.get("alloc_probe", {}).get(
                   "peak_reduction_buffered_vs_fused"),
               committed_agg.get("alloc_probe", {}).get(
                   "peak_reduction_buffered_vs_fused"))
    ref_allocs = committed_agg.get("alloc_probe", {}).get(
        "steady_state_scratch_allocations")
    if ref_allocs is not None:
        cur_allocs = current_agg.get("alloc_probe", {}).get(
            "steady_state_scratch_allocations")
        if cur_allocs is None:
            print("[MISSING] aggregation/alloc_probe/"
                  "steady_state_scratch_allocations: committed "
                  f"{ref_allocs} has no current measurement")
            failures.append(("alloc_probe", "steady_state_scratch_allocations",
                             None, ref_allocs))
        else:
            # Allocation counts gate exactly (no tolerance): a warm fused
            # round must not allocate more than the committed steady state.
            status = "OK" if cur_allocs <= ref_allocs else "REGRESSION"
            print(f"[{status}] aggregation/alloc_probe/"
                  f"steady_state_scratch_allocations: current {cur_allocs} "
                  f"vs committed {ref_allocs} (must not exceed)")
            if cur_allocs > ref_allocs:
                failures.append(("alloc_probe",
                                 "steady_state_scratch_allocations",
                                 cur_allocs, ref_allocs))
    if failures:
        print(f"FAILED: {len(failures)} aggregation speedup(s) regressed more "
              f"than {tolerance:.0%} (or went unmeasured) vs {baseline_path}")
        return 1
    print(f"All aggregation speedups within {tolerance:.0%} of {baseline_path}")
    return 0


# ------------------------------------------------------------- sparse suite
#: (name, d_model, d_ff, num_experts, top_k) layer shapes for --suite sparse;
#: the first is the llama-moe-mini layer shape, the second a mid-size layer
#: where zero skipping pays off even more
SPARSE_WORKLOADS = (("llama_moe_mini", 32, 64, 8, 2),
                    ("mid_64x256", 64, 256, 8, 2))


def _make_sparsified_layer(d_model: int, d_ff: int, num_experts: int,
                           top_k: int, dispatch: str):
    """A float32 MoE layer sparsified in place; same seed => same weights."""
    from repro.autograd import default_dtype
    from repro.models.moe_layer import MoELayer

    rng = np.random.default_rng(0)
    with default_dtype("float32"):
        layer = MoELayer(d_model=d_model, d_ff=d_ff, num_experts=num_experts,
                         top_k=top_k, rng=rng, dispatch=dispatch)
    layer.sparsify_experts(SPARSE_DENSITY, bits=SPARSE_BITS)
    return layer


def _bench_sparse_kernels(workload, tokens: int, iters: int, reps: int) -> Dict:
    """batched vs sparse dispatch over identical sparsified expert weights."""
    name, d_model, d_ff, num_experts, top_k = workload
    builds = {
        dispatch: _layer_phases(
            _make_sparsified_layer(d_model, d_ff, num_experts, top_k, dispatch),
            tokens, "float32")
        for dispatch in ("batched", "sparse")
    }
    times = _interleaved_best_times(builds, iters, reps)
    configs = {dispatch: _hot_loop_result(phase_times, tokens,
                                          builds[dispatch]["round"])
               for dispatch, phase_times in times.items()}
    return {
        "d_model": d_model, "d_ff": d_ff, "num_experts": num_experts,
        "top_k": top_k, "tokens": tokens,
        "configs": configs,
        "speedup_sparse_vs_batched_forward_backward": (
            configs["sparse"]["forward_backward_tokens_per_s"]
            / configs["batched"]["forward_backward_tokens_per_s"]),
        "speedup_sparse_vs_batched_round": (
            configs["sparse"]["round_tokens_per_s"]
            / configs["batched"]["round_tokens_per_s"]),
    }


def _bench_sparse_wire(iters: int, reps: int) -> Dict:
    """Composed ``topk:<density>:int<bits>`` codec: bytes + throughput.

    Encodes one expert's delta under the composed sparse codec and under
    ``fp64``, and cross-checks the measured frame size against the codec's
    ``wire_bytes_per_param`` analytics (the wire-cost model the federated
    layer's :class:`ExchangePlan` reports).
    """
    from repro.comm import encode_state_dict, decode_state_dict, get_codec
    from repro.models import MoETransformer
    from repro.models.presets import get_preset

    codec_name = f"topk:{SPARSE_DENSITY:g}:int4"
    codec = get_codec(codec_name)
    dense = get_codec("fp64")
    model = MoETransformer(get_preset("llama-moe-mini"))
    reference = model.expert_state(0, 0)
    rng = np.random.default_rng(0)
    state = {key: value + 0.01 * rng.normal(size=value.shape)
             for key, value in reference.items()}
    params = sum(value.size for value in state.values())

    sparse_frame = encode_state_dict(state, codec, reference=reference)
    dense_frame = encode_state_dict(state, dense)
    analytic = sum(value.size * codec.wire_bytes_per_param(group_size=value.size)
                   for value in state.values())

    fns = {
        "encode": {"wire": lambda: encode_state_dict(state, codec,
                                                     reference=reference)},
        "decode": {"wire": lambda: decode_state_dict(sparse_frame,
                                                     reference=reference)},
        "encode_fp64": {"wire": lambda: encode_state_dict(state, dense)},
    }
    times = _interleaved_best_times(fns, iters, reps)
    return {
        "codec": codec_name,
        "params_per_expert": params,
        "measured_frame_bytes": len(sparse_frame),
        "analytic_payload_bytes": analytic,
        "measured_vs_analytic_rel_err":
            abs(len(sparse_frame) - analytic) / analytic,
        "fp64_frame_bytes": len(dense_frame),
        "bytes_ratio_vs_fp64": len(sparse_frame) / len(dense_frame),
        "encode_params_per_s": params / times["encode"]["wire"],
        "decode_params_per_s": params / times["decode"]["wire"],
        "fp64_encode_params_per_s": params / times["encode_fp64"]["wire"],
    }


def _bench_sparse_checkpoint(iters: int, reps: int) -> Dict:
    """Full vs sparse-delta model snapshot cost (time and bytes on disk).

    The delta snapshot simulates one federated round: only a top-k slice of
    the experts' parameters moved since the previous snapshot, which is
    exactly the regime ``checkpoint_delta_every`` targets.
    """
    import shutil
    import tempfile

    from repro.models import MoETransformer
    from repro.models.checkpoint import save_state_checkpoint, save_state_delta
    from repro.models.presets import get_preset

    model = MoETransformer(get_preset("llama-moe-mini"))
    previous = {key: np.array(value, copy=True)
                for key, value in model.state_dict().items()}
    rng = np.random.default_rng(0)
    current = {}
    for key, value in previous.items():
        updated = np.array(value, copy=True)
        flat = updated.reshape(-1)
        touched = rng.choice(flat.size, size=max(1, flat.size // 20),
                             replace=False)
        flat[touched] += 0.01
        current[key] = updated

    tmp = tempfile.mkdtemp(prefix="bench-sparse-ckpt-")
    try:
        full_path = os.path.join(tmp, "full.npz")
        delta_path = os.path.join(tmp, "model.delta")
        fns = {
            "full": {"save": lambda: save_state_checkpoint(
                current, model.config, full_path)},
            "delta": {"save": lambda: save_state_delta(
                current, previous, delta_path)},
        }
        times = _interleaved_best_times(fns, iters, reps)
        full_bytes = os.path.getsize(full_path)
        delta_bytes = os.path.getsize(delta_path)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "params": sum(value.size for value in previous.values()),
        "touched_fraction": 0.05,
        "full_save_s": times["full"]["save"],
        "delta_save_s": times["delta"]["save"],
        "full_bytes": full_bytes,
        "delta_bytes": delta_bytes,
        "delta_bytes_ratio": delta_bytes / full_bytes,
        "delta_save_speedup": times["full"]["save"] / times["delta"]["save"],
    }


def run_sparse_suite(quick: bool) -> Dict:
    """The sparse/ternary fast-path benchmark family (``--suite sparse``)."""
    tokens = 1024
    iters = 3 if quick else 10
    reps = 4 if quick else 6
    workloads = {w[0]: _bench_sparse_kernels(w, tokens, iters, reps)
                 for w in SPARSE_WORKLOADS}
    return {
        "density": SPARSE_DENSITY,
        "bits": SPARSE_BITS,
        "workloads": workloads,
        "wire": _bench_sparse_wire(max(iters, 5), reps),
        "checkpoint": _bench_sparse_checkpoint(max(iters // 2, 2), reps),
        "note": ("workloads: batched vs sparse dispatch over *identical* "
                 "sparsified+quantized expert weights (bit-identical outputs, "
                 "test-enforced) — the speedup is pure zero skipping.  wire: "
                 "composed topk+int codec frame size vs its own analytics and "
                 "vs fp64.  checkpoint: full vs sparse-delta snapshot of the "
                 "same model state (5% of parameters touched)."),
        "headline_speedup": min(
            entry["speedup_sparse_vs_batched_forward_backward"]
            for entry in workloads.values()),
    }


def check_sparse_regression(current: Dict, baseline_path: str,
                            tolerance: float) -> int:
    """Gate the sparse-dispatch speedups against the committed baseline."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    committed_sparse = committed.get("sparse", {})
    if not committed_sparse.get("workloads"):
        print(f"[MISSING] {baseline_path} carries no sparse suite baseline; "
              "a gated suite without a committed reference cannot pass")
        return 1
    current_sparse = current.get("sparse", {})
    failures = []
    for name, ref_entry in committed_sparse["workloads"].items():
        for key in ("speedup_sparse_vs_batched_forward_backward",
                    "speedup_sparse_vs_batched_round"):
            ref = ref_entry.get(key)
            if not ref:
                continue
            cur = current_sparse.get("workloads", {}).get(name, {}).get(key)
            if not cur:
                print(f"[MISSING] sparse/{name}/{key}: committed {ref:.2f}x "
                      "has no current measurement")
                failures.append((name, key, None, ref))
                continue
            floor = (1.0 - tolerance) * ref
            status = "OK" if cur >= floor else "REGRESSION"
            print(f"[{status}] sparse/{name}/{key}: current {cur:.2f}x vs "
                  f"committed {ref:.2f}x (floor {floor:.2f}x)")
            if cur < floor:
                failures.append((name, key, cur, ref))
    if failures:
        print(f"FAILED: {len(failures)} sparse speedup(s) regressed more than "
              f"{tolerance:.0%} (or went unmeasured) vs {baseline_path}")
        return 1
    print(f"All sparse speedups within {tolerance:.0%} of {baseline_path}")
    return 0


# ------------------------------------------------------------ service suite
#: shard counts compared pooled-vs-service (each shard is one fold job,
#: pinned to one pool worker / one aggregator server)
SERVICE_SHARD_COUNTS = (2, 4)
SERVICE_TRANSPORTS = ("socketpair", "tcp")

#: the depth-3 tree whose full fold critical path (leaf fan-in + both inner
#: tiers routed through the fold plane) is compared service-vs-pooled
SERVICE_TREE_TIERS = (8, 4, 2)

#: the compressed service-wire codec of the bytes-on-wire measurement — the
#: paper's headline sparse+quantized setting
SERVICE_WIRE_CODEC = "topk:0.25:int4"


def _bench_service_fold(updates, num_shards: int, iters: int, reps: int,
                        pooled_pool, service_pools: Dict) -> Dict:
    """Pooled vs service fold of one round's updates at ``num_shards`` shards.

    Both planes fold the *same* pre-framed shard jobs through their
    ``fold_shards`` entry point — the exact critical path the round loop
    drives — so the measured ratio isolates the transport (process-pool IPC
    pickling vs length-prefixed socket frames + RPC envelope) from the fold
    math, which is byte-identical by construction.  Interleaved per
    repetition so host-load drift cancels out of the gated ratio.
    """
    from repro.federated import ShardedParameterServer
    from repro.models import MoETransformer
    from repro.models.presets import get_preset
    from repro.runtime.executor import frame_update

    config = get_preset(AGG_PRESET.replace("_", "-"))
    router = ShardedParameterServer(MoETransformer(config), num_shards=num_shards)
    shard_framed: Dict[int, list] = {}
    for update in updates:
        shard_framed.setdefault(router.shard_of(update.key), []).append(
            frame_update(update))
    jobs = sorted(shard_framed.items())

    fns = {"pooled": {"fold": lambda: pooled_pool.fold_shards(None, False, jobs)}}
    for transport, pool in service_pools.items():
        fns[f"service_{transport}"] = {
            "fold": lambda pool=pool: pool.fold_shards(None, False, jobs)}
    times = _interleaved_best_times(fns, iters, reps)
    pooled_s = times["pooled"]["fold"]
    result = {
        "num_jobs": len(jobs),
        "pooled_wall_s": pooled_s,
        "pooled_updates_per_s": len(updates) / pooled_s,
        "transports": {},
    }
    for transport in service_pools:
        service_s = times[f"service_{transport}"]["fold"]
        result["transports"][transport] = {
            "wall_s": service_s,
            "updates_per_s": len(updates) / service_s,
            # the gated cost metric: how much slower (>1) or faster (<1) the
            # service critical path is than the pooled one on the same host
            "wall_ratio_service_vs_pooled": service_s / pooled_s,
        }
    return result


def _bench_service_tree(updates, tiers, iters: int, reps: int, pooled_pool,
                        service_pools: Dict) -> Dict:
    """Pooled vs service critical path of a full depth-``len(tiers)`` tree fold.

    Drives the exact per-tier pipeline the aggregation tree runs over a pool:
    leaf pre-folds fan in the participants' frames, then every *inner* tier
    folds its children's partial frames as fresh fold jobs (the inner-tier
    service routing), down to the roots.  Both planes execute identical jobs
    in the same order, so the gated ratio isolates transport overhead — here
    including one RPC round per inner node, the cost the pipelined ADD
    window bounds.
    """
    from repro.federated.topology import AggregationTree
    from repro.runtime.executor import frame_update

    tree = AggregationTree(tiers)
    framed = [frame_update(u) for u in updates]
    leaf: Dict[int, list] = {}
    for index, pair in enumerate(framed):
        leaf.setdefault(index % tiers[0], []).append(pair)

    def fold_tree(pool):
        current = leaf
        for tier in range(len(tiers)):
            jobs = [(node, tree.pseudo_id(tier, node), node_frames)
                    for node, node_frames in sorted(current.items())]
            folded = pool.prefold_nodes(None, jobs)
            fan_in = tiers[tier + 1] if tier + 1 < len(tiers) else 1
            current = {}
            for node, partials in folded:
                current.setdefault(node % fan_in, []).extend(
                    (partial, 0) for partial in partials)
        return current

    fns = {"pooled": {"fold": lambda: fold_tree(pooled_pool)}}
    for transport, pool in service_pools.items():
        fns[f"service_{transport}"] = {"fold": lambda pool=pool: fold_tree(pool)}
    times = _interleaved_best_times(fns, iters, reps)
    pooled_s = times["pooled"]["fold"]
    result = {"tiers": list(tiers), "pooled_wall_s": pooled_s, "transports": {}}
    for transport in service_pools:
        service_s = times[f"service_{transport}"]["fold"]
        result["transports"][transport] = {
            "wall_s": service_s,
            "wall_ratio_service_vs_pooled": service_s / pooled_s,
        }
    return result


def _bench_service_wire_bytes(updates, num_shards: int) -> Dict:
    """Bytes on the service wire: fp64 re-encode vs verbatim compressed frames.

    Deterministic byte accounting, not a timing: every update is stamped with
    the topk:int4 wire frame the transport would deliver (encoded against a
    shared per-key reference, which the wire mode ships once per shard job in
    the flush body), then one identical ``fold_shards`` round runs on an
    fp64-interchange pool and a ``wire_frames`` pool and the client transport
    counters are compared.  ``bytes_ratio_wire_vs_fp64`` is the gated cost.
    """
    from repro.comm import encode_update, get_codec
    from repro.federated import ShardedParameterServer
    from repro.models import MoETransformer
    from repro.models.presets import get_preset
    from repro.runtime.executor import frame_update
    from repro.service import ServiceAggregationPool

    config = get_preset(AGG_PRESET.replace("_", "-"))
    router = ShardedParameterServer(MoETransformer(config),
                                    num_shards=num_shards)
    codec = get_codec(SERVICE_WIRE_CODEC)
    references: Dict = {}
    for update in updates:
        if update.key not in references:
            references[update.key] = {
                name: np.zeros_like(np.asarray(value))
                for name, value in update.state.items()}
        update.wire_frame = encode_update(update, codec,
                                          reference=references[update.key])
        update.wire_codec = codec.name
        update.wire_reference = references[update.key]

    def measure(wire: bool) -> int:
        pool = ServiceAggregationPool(num_shards, transport="socketpair",
                                      wire_frames=wire)
        try:
            shard_framed: Dict[int, list] = {}
            shard_refs: Dict[int, dict] = {}
            for update in updates:
                shard = router.shard_of(update.key)
                refs = shard_refs.setdefault(shard, {}) if wire else None
                shard_framed.setdefault(shard, []).append(
                    frame_update(update, references=refs))
            jobs = [(shard, shard_framed[shard]) if not shard_refs.get(shard)
                    else (shard, shard_framed[shard], shard_refs[shard])
                    for shard in sorted(shard_framed)]
            pool.fold_shards(None, False, jobs)
            return sum(client.stats["bytes_sent"] for client in pool._clients)
        finally:
            pool.close()

    fp64_bytes = measure(False)
    wire_bytes = measure(True)
    return {
        "codec": SERVICE_WIRE_CODEC,
        "num_shards": num_shards,
        "fp64_bytes": fp64_bytes,
        "wire_bytes": wire_bytes,
        "bytes_ratio_wire_vs_fp64": wire_bytes / fp64_bytes,
    }


def run_service_suite(quick: bool) -> Dict:
    """The service-backend benchmark family (``--suite service``).

    Compares the fold critical path of the process-pool plane against the
    persistent socket-backed service plane (both transports) on identical
    framed updates, plus an RPC round-trip microbenchmark per transport.
    The gated metric is the machine-independent wall-time *ratio* of the two
    planes, which a regression in stream framing, the RPC envelope, or the
    client chunking would move.
    """
    from repro.runtime import AggregationPool
    from repro.service import ServiceAggregationPool

    participants = 64
    iters = 2 if quick else 4
    reps = 3 if quick else 6
    model, updates = _make_aggregation_updates(participants)
    max_servers = max(SERVICE_SHARD_COUNTS)
    pooled = AggregationPool(max_workers=max_servers)
    service_pools = {transport: ServiceAggregationPool(max_servers,
                                                       transport=transport)
                     for transport in SERVICE_TRANSPORTS}
    try:
        # Spawn workers and servers outside the timings.
        pooled.prefold_nodes(None, [(0, -1, [])])
        for pool in service_pools.values():
            pool.prefold_nodes(None, [(0, -1, [])])
        shards = {str(n): _bench_service_fold(updates, n, iters, reps,
                                              pooled, service_pools)
                  for n in SERVICE_SHARD_COUNTS}
        tree = _bench_service_tree(updates, SERVICE_TREE_TIERS, iters, reps,
                                   pooled, service_pools)
        ping_iters = 50 if quick else 200
        rpc = {transport: {"ping_s": _best_time(pool._clients[0].ping,
                                                ping_iters, reps)}
               for transport, pool in service_pools.items()}
    finally:
        pooled.close()
        for pool in service_pools.values():
            pool.close()
    # Runs last: it stamps the shared updates with compressed wire frames.
    wire_bytes = _bench_service_wire_bytes(updates, max_servers)
    headline_shards = str(max(SERVICE_SHARD_COUNTS))
    return {
        "preset": AGG_PRESET,
        "participants": participants,
        "num_keys": len(list(model.iter_expert_ids())),
        "num_updates": len(updates),
        "host_cpus": os.cpu_count(),
        "shards": shards,
        "tree": tree,
        "wire_bytes": wire_bytes,
        "rpc": rpc,
        "note": ("pooled and service planes fold identical pre-framed shard "
                 "jobs through fold_shards (bit-identical results, "
                 "test-enforced); wall_ratio_service_vs_pooled is the gated "
                 "cost ratio (>1 = service slower on this host), which "
                 "isolates transport overhead — stream framing, RPC "
                 "envelope, pipelined ADD windows — from the shared fold "
                 "math.  tree is the same ratio over a full depth-3 tree "
                 "fold with inner tiers routed through the plane; "
                 "wire_bytes compares service bytes for fp64 re-encode vs "
                 "verbatim compressed-frame forwarding "
                 "(service_codec='wire').  rpc.ping_s is one "
                 "request/response round trip.  On a single-CPU loopback "
                 "host the wall ratios are scheduler-noise-dominated "
                 "(~±10% run to run; nothing overlaps, so pipelining can "
                 "only cut round trips, not hide work) — the regression "
                 "gate's tolerance absorbs this."),
        "headline_ratio": shards[headline_shards]["transports"]["tcp"][
            "wall_ratio_service_vs_pooled"],
        "headline_tree_ratio": tree["transports"]["tcp"][
            "wall_ratio_service_vs_pooled"],
        "headline_bytes_ratio": wire_bytes["bytes_ratio_wire_vs_fp64"],
    }


def check_service_regression(current: Dict, baseline_path: str,
                             tolerance: float) -> int:
    """Gate the service-vs-pooled wall ratios against the committed baseline.

    Like the telemetry gate, the ratio is a *cost*: the check fails when a
    current ratio exceeds the committed one by more than ``tolerance``
    (relative), or when a committed ratio went unmeasured.
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    committed_service = committed.get("service", {})
    if not committed_service.get("shards"):
        print(f"[MISSING] {baseline_path} carries no service suite baseline; "
              "a gated suite without a committed reference cannot pass")
        return 1
    current_service = current.get("service", {})
    failures = []

    def gate_ratio(label: str, ref, cur) -> None:
        """One gated cost ratio: current must stay under committed + tolerance."""
        if not ref:
            return
        if not cur:
            print(f"[MISSING] {label}: committed {ref:.2f}x has no current "
                  "measurement")
            failures.append((label, None, ref))
            return
        ceiling = (1.0 + tolerance) * ref
        status = "OK" if cur <= ceiling else "REGRESSION"
        print(f"[{status}] {label}: current {cur:.2f}x vs committed "
              f"{ref:.2f}x (ceiling {ceiling:.2f}x)")
        if cur > ceiling:
            failures.append((label, cur, ref))

    for shards, ref_entry in committed_service["shards"].items():
        for transport, ref_transport in ref_entry.get("transports", {}).items():
            gate_ratio(
                f"service/{shards}shards/{transport}",
                ref_transport.get("wall_ratio_service_vs_pooled"),
                current_service.get("shards", {}).get(shards, {})
                .get("transports", {}).get(transport, {})
                .get("wall_ratio_service_vs_pooled"))
    for transport, ref_transport in (committed_service.get("tree", {})
                                     .get("transports", {}).items()):
        gate_ratio(
            f"service/tree/{transport}",
            ref_transport.get("wall_ratio_service_vs_pooled"),
            current_service.get("tree", {}).get("transports", {})
            .get(transport, {}).get("wall_ratio_service_vs_pooled"))
    gate_ratio(
        "service/wire_bytes",
        committed_service.get("wire_bytes", {}).get("bytes_ratio_wire_vs_fp64"),
        current_service.get("wire_bytes", {}).get("bytes_ratio_wire_vs_fp64"))
    if failures:
        print(f"FAILED: {len(failures)} service fold ratio(s) grew more than "
              f"{tolerance:.0%} (or went unmeasured) vs {baseline_path}")
        return 1
    print(f"All service fold ratios within {tolerance:.0%} of {baseline_path}")
    return 0


# ---------------------------------------------------------- telemetry suite
TELEMETRY_ROUNDS = 2
TELEMETRY_CLIENTS = 8


def _build_telemetry_tuner(telemetry_dir: Optional[str]):
    """A small sharded 2-tier wire-transport run; telemetry on when a dir is given.

    The wire transport plus edge tier makes the telemetry-on run exercise every
    span family (train, transfer, fold, checkpoint-free round bookkeeping), so
    the measured ratio covers the instrumentation's worst case rather than the
    analytic fast path.
    """
    from repro import (
        FMDFineTuner, MoETransformer, ParameterServer, Participant,
        ParticipantResources, RunConfig, Vocabulary, make_gsm8k_like,
        partition_dirichlet, tiny_moe,
    )
    from repro.models.presets import ARCHITECTURE_DESCRIPTORS
    from repro.systems import CostModel, MemoryModel, heterogeneous_fleet

    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=120, seed=0)
    train, test = dataset.split(seed=0)
    shards = partition_dirichlet(train, TELEMETRY_CLIENTS, alpha=0.5, seed=0)
    devices = heterogeneous_fleet(TELEMETRY_CLIENTS, seed=0, spread=0.5)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for pid, (shard, device) in enumerate(zip(shards, devices)):
        participants.append(Participant(
            pid, train.subset(shard), device=device,
            resources=ParticipantResources(max_experts=8, max_tuning_experts=4),
            seed=pid))
        cost_models[pid] = CostModel(device, memory)
    server = ParameterServer(MoETransformer(config))
    run_config = RunConfig(
        batch_size=4, max_local_batches=1, learning_rate=1e-2,
        eval_max_samples=12, seed=0, participants_per_round=6,
        num_shards=2, num_edge_aggregators=2, transport="wire",
        telemetry=telemetry_dir is not None, telemetry_dir=telemetry_dir)
    return FMDFineTuner(server, participants, test, cost_models=cost_models,
                        config=run_config)


def _timed_telemetry_run(telemetry_dir: Optional[str]) -> float:
    """Wall time of one fresh run (tuner construction excluded)."""
    tuner = _build_telemetry_tuner(telemetry_dir)
    start = time.perf_counter()
    tuner.run(num_rounds=TELEMETRY_ROUNDS)
    return time.perf_counter() - start


def run_telemetry_suite(quick: bool) -> Dict:
    """The observability-overhead benchmark family (``--suite telemetry``).

    Two measurements, interleaved per repetition so host drift cancels out of
    the gated ratio:

    * the same small federated run with telemetry off vs on (JSONL + exporters
      written to a temp dir) — ``overhead_ratio_on_vs_off`` is the headline;
    * span microbenchmarks — the per-call cost of a ``NullTracer`` span (what
      every instrumentation site pays when telemetry is off) and of a live
      ``Tracer`` span with a sink.
    """
    import shutil
    import tempfile

    from repro.obs import JSONL_FILE, NULL_TRACER, Tracer

    reps = 2 if quick else 4
    best = {"off": float("inf"), "on": float("inf")}
    events_per_run = 0
    for _ in range(reps):
        best["off"] = min(best["off"], _timed_telemetry_run(None))
        tmp = tempfile.mkdtemp(prefix="bench-telemetry-")
        try:
            best["on"] = min(best["on"], _timed_telemetry_run(tmp))
            with open(os.path.join(tmp, JSONL_FILE)) as handle:
                events_per_run = sum(1 for _ in handle)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    tracer = Tracer(sink=lambda span: None)

    def null_span():
        with NULL_TRACER.span("bench", category="fold"):
            pass

    def live_span():
        with tracer.span("bench", category="fold") as span:
            span.set(sim_duration=0.0, payload=1)

    micro_iters = 500 if quick else 2000
    null_span_s = _best_time(null_span, micro_iters, reps)
    live_span_s = _best_time(live_span, micro_iters, reps)
    return {
        "rounds": TELEMETRY_ROUNDS,
        "clients": TELEMETRY_CLIENTS,
        "off_run_s": best["off"],
        "on_run_s": best["on"],
        "overhead_ratio_on_vs_off": best["on"] / best["off"],
        "events_per_run": events_per_run,
        "null_span_ns": null_span_s * 1e9,
        "live_span_ns": live_span_s * 1e9,
        "note": ("off/on runs are the same sharded 2-tier wire-transport "
                 "federation; overhead_ratio_on_vs_off = telemetry-on wall "
                 "time / telemetry-off wall time (best-of interleaved reps). "
                 "null_span_ns is the per-site cost every instrumented code "
                 "path pays when telemetry is off."),
    }


def check_telemetry_regression(current: Dict, baseline_path: str,
                               tolerance: float) -> int:
    """Gate the telemetry-on overhead ratio against the committed baseline.

    Unlike the throughput gates (where bigger is better) the overhead ratio is
    a cost: the check fails when the current ratio exceeds the committed one
    by more than ``tolerance`` (relative).
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    ref = committed.get("telemetry", {}).get("overhead_ratio_on_vs_off")
    if not ref:
        print(f"[MISSING] {baseline_path} carries no telemetry overhead "
              "baseline; a gated suite without a committed reference cannot "
              "pass")
        return 1
    cur = current.get("telemetry", {}).get("overhead_ratio_on_vs_off")
    if not cur:
        print(f"[MISSING] telemetry/overhead_ratio_on_vs_off: committed "
              f"{ref:.3f}x has no current measurement")
        return 1
    ceiling = (1.0 + tolerance) * ref
    status = "OK" if cur <= ceiling else "REGRESSION"
    print(f"[{status}] telemetry/overhead_ratio_on_vs_off: current {cur:.3f}x "
          f"vs committed {ref:.3f}x (ceiling {ceiling:.3f}x)")
    if cur > ceiling:
        print(f"FAILED: telemetry-on overhead grew more than {tolerance:.0%} "
              f"vs {baseline_path}")
        return 1
    print(f"Telemetry overhead within {tolerance:.0%} of {baseline_path}")
    return 0


# --------------------------------------------------------------- seed worker
def _worker(spec_json: str) -> None:
    """Run one benchmark family in-process and print JSON (seed subprocess)."""
    spec = json.loads(spec_json)
    if spec["family"] == "hot_loop":
        result = bench_hot_loop(spec["preset"], spec.get("dispatch"), spec.get("dtype"),
                                spec["tokens"], spec["iters"], spec["reps"])
    else:
        result = bench_end_to_end(spec["preset"], spec.get("dispatch"), spec.get("dtype"),
                                  spec["tokens"], spec["iters"], spec["reps"])
    print(json.dumps(result))


def bench_seed_reference(seed_src: str, quick: bool) -> Dict:
    """Benchmark a pristine seed checkout with the same driver via subprocess.

    Each seed worker run is paired with an adjacent in-process measurement of
    the batched/float32 fast path, and the recorded speedup is the median of
    the paired ratios — host-speed drift between distant measurements then
    cancels out of the headline number.
    """
    tokens = 1024
    iters = 3 if quick else 10
    reps = 3 if quick else 5
    rounds = 2 if quick else 15
    env = dict(os.environ)
    env["PYTHONPATH"] = seed_src
    out: Dict = {"src": seed_src, "presets": {}, "speedup_batched_f32_vs_seed": {}}
    for preset in PRESET_NAMES:
        preset_result: Dict = {}
        paired_ratios = []
        for family, fam_tokens in (("hot_loop", tokens), ("end_to_end", min(tokens, 1024))):
            spec = {"family": family, "preset": preset, "tokens": fam_tokens,
                    "iters": iters, "reps": reps}
            merged: Dict[str, float] = {}
            for _ in range(rounds):
                proc = subprocess.run(
                    [sys.executable, os.path.abspath(__file__), "--worker", json.dumps(spec)],
                    capture_output=True, text=True, env=env, cwd="/tmp")
                if proc.returncode != 0:
                    raise RuntimeError(f"seed worker failed for {preset}/{family}: {proc.stderr}")
                sample = json.loads(proc.stdout)
                for key, value in sample.items():
                    if key.endswith("_per_s"):
                        merged[key] = max(merged.get(key, 0.0), value)
                    else:
                        merged.setdefault(key, value)
                if family == "hot_loop":
                    fast = bench_hot_loop(preset, "batched", "float32",
                                          fam_tokens, iters, reps)
                    paired_ratios.append(fast["forward_backward_tokens_per_s"]
                                         / sample["forward_backward_tokens_per_s"])
            preset_result[family] = merged
        preset_result["paired_fwd_bwd_ratios"] = [round(r, 3) for r in paired_ratios]
        out["presets"][preset] = preset_result
        out["speedup_batched_f32_vs_seed"][preset] = float(np.median(paired_ratios))
    return out


# -------------------------------------------------------------------- check
def check_regression(current: Dict, baseline_path: str, tolerance: float) -> int:
    """Compare machine-independent speedups against the committed baseline."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    failures = []
    if not committed.get("presets"):
        print(f"[MISSING] {baseline_path} carries no hotpath suite baseline; "
              "a gated suite without a committed reference cannot pass")
        return 1
    for preset, families in committed.get("presets", {}).items():
        for family in ("hot_loop", "end_to_end"):
            for key in ("speedup_batched_f32_vs_loop_f64",
                        "round_speedup_batched_f32_vs_loop_f64"):
                ref = families.get(family, {}).get(key)
                if not ref:
                    continue
                cur = current.get("presets", {}).get(preset, {}).get(family, {}).get(key)
                if not cur:
                    # A committed speedup the current run never measured is a
                    # broken gate, not a pass — otherwise a partial run (or a
                    # renamed preset/family) would silently stop gating.
                    print(f"[MISSING] {preset}/{family}/{key}: committed "
                          f"{ref:.2f}x has no current measurement")
                    failures.append((preset, family, key, None, ref))
                    continue
                floor = (1.0 - tolerance) * ref
                status = "OK" if cur >= floor else "REGRESSION"
                print(f"[{status}] {preset}/{family}/{key}: "
                      f"current {cur:.2f}x vs committed {ref:.2f}x (floor {floor:.2f}x)")
                if cur < floor:
                    failures.append((preset, family, key, cur, ref))
    if failures:
        print(f"FAILED: {len(failures)} speedup(s) regressed more than "
              f"{tolerance:.0%} (or went unmeasured) vs {baseline_path}")
        return 1
    print(f"All speedups within {tolerance:.0%} of {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller token counts / fewer repetitions (CI smoke)")
    parser.add_argument("--suite",
                        choices=("hotpath", "aggregation", "telemetry", "sparse",
                                 "service"),
                        default="hotpath",
                        help="hotpath: MoE dispatch/training throughput (default); "
                             "aggregation: server-side fold throughput, serial vs "
                             "pooled, across shard counts and tree depths; "
                             "telemetry: repro.obs tracing overhead, run-level "
                             "on-vs-off ratio plus span microbenchmarks; "
                             "sparse: zero-skipping dispatch vs batched on "
                             "sparsified experts, composed sparse codec wire "
                             "bytes, full vs delta checkpoint cost; "
                             "service: socket-backed aggregator servers vs the "
                             "process pool on the same fold critical path, "
                             "per transport, plus RPC round-trip latency")
    parser.add_argument("--output", default=None,
                        help="where to write the results JSON (default: "
                             "BENCH_hotpath.json or BENCH_aggregation.json by suite)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare speedups against a committed baseline JSON; "
                             "exit 1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative speedup regression for --check")
    parser.add_argument("--seed-src", metavar="PATH",
                        help="src/ directory of a pristine seed checkout to "
                             "benchmark as seed_reference")
    parser.add_argument("--worker", metavar="SPEC", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        _worker(args.worker)
        return 0

    default_output = {"hotpath": "BENCH_hotpath.json",
                      "aggregation": "BENCH_aggregation.json",
                      "telemetry": "BENCH_telemetry.json",
                      "sparse": "BENCH_sparse.json",
                      "service": "BENCH_service.json"}[args.suite]
    output = args.output or os.path.join(REPO_ROOT, default_output)
    result = {
        "meta": {
            "schema": 1,
            "suite": args.suite,
            "quick": bool(args.quick),
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    if args.suite == "aggregation":
        result["aggregation"] = run_aggregation_suite(args.quick)
    elif args.suite == "telemetry":
        result["telemetry"] = run_telemetry_suite(args.quick)
    elif args.suite == "sparse":
        result["sparse"] = run_sparse_suite(args.quick)
    elif args.suite == "service":
        result["service"] = run_service_suite(args.quick)
    else:
        result["presets"] = run_suite(args.quick)
        if args.seed_src:
            result["seed_reference"] = bench_seed_reference(args.seed_src, args.quick)

    with open(output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {output}")
    if args.suite == "aggregation":
        agg = result["aggregation"]
        for shards, entry in agg["shards"].items():
            print(f"  {shards} shard(s): serial {entry['serial_updates_per_s']:,.0f} "
                  f"updates/s, critical-path speedup "
                  f"{entry['speedup_critical_path_vs_serial']:.2f}x")
        for name, entry in agg["tree"].items():
            print(f"  tree {name} (depth {entry['depth']}): serial "
                  f"{entry['serial_updates_per_s']:,.0f} updates/s, critical-path "
                  f"speedup {entry['speedup_critical_path_vs_serial']:.2f}x")
        print(f"  headline: {agg['headline_speedup_8shards']:.2f}x fold throughput "
              "at 8 shards (critical path vs serial)")
        if args.check:
            return check_aggregation_regression(result, args.check, args.tolerance)
        return 0
    if args.suite == "sparse":
        sparse = result["sparse"]
        for name, entry in sparse["workloads"].items():
            print(f"  {name} (d_model={entry['d_model']}, d_ff={entry['d_ff']}): "
                  f"sparse vs batched fwd+bwd "
                  f"{entry['speedup_sparse_vs_batched_forward_backward']:.2f}x, "
                  f"round {entry['speedup_sparse_vs_batched_round']:.2f}x")
        wire = sparse["wire"]
        print(f"  wire {wire['codec']}: {wire['measured_frame_bytes']} B/expert "
              f"measured vs {wire['analytic_payload_bytes']:.0f} B analytic "
              f"({wire['measured_vs_analytic_rel_err']:.1%} off), "
              f"{wire['bytes_ratio_vs_fp64']:.3f}x of fp64")
        ckpt = sparse["checkpoint"]
        print(f"  checkpoint: delta {ckpt['delta_bytes']} B vs full "
              f"{ckpt['full_bytes']} B ({ckpt['delta_bytes_ratio']:.3f}x), "
              f"save {ckpt['delta_save_speedup']:.2f}x faster")
        print(f"  headline: {sparse['headline_speedup']:.2f}x minimum hot-loop "
              f"(fwd+bwd) speedup at density {sparse['density']:g}")
        if args.check:
            return check_sparse_regression(result, args.check, args.tolerance)
        return 0
    if args.suite == "service":
        service = result["service"]
        for shards, entry in service["shards"].items():
            parts = ", ".join(
                f"{transport} {values['wall_ratio_service_vs_pooled']:.2f}x"
                for transport, values in entry["transports"].items())
            print(f"  {shards} shard(s): pooled "
                  f"{entry['pooled_updates_per_s']:,.0f} updates/s; service "
                  f"wall ratio vs pooled: {parts}")
        for transport, entry in service["rpc"].items():
            print(f"  rpc {transport}: ping {entry['ping_s'] * 1e6:,.0f}us")
        print(f"  headline: service/tcp critical path at "
              f"{max(SERVICE_SHARD_COUNTS)} shards is "
              f"{service['headline_ratio']:.2f}x pooled wall time")
        if args.check:
            return check_service_regression(result, args.check, args.tolerance)
        return 0
    if args.suite == "telemetry":
        tel = result["telemetry"]
        print(f"  {tel['rounds']}-round run: off {tel['off_run_s']:.2f}s, on "
              f"{tel['on_run_s']:.2f}s -> overhead "
              f"{tel['overhead_ratio_on_vs_off']:.3f}x "
              f"({tel['events_per_run']} events)")
        print(f"  span cost: null {tel['null_span_ns']:.0f}ns, live "
              f"{tel['live_span_ns']:.0f}ns")
        if args.check:
            return check_telemetry_regression(result, args.check, args.tolerance)
        return 0
    for preset, families in result["presets"].items():
        print(f"  {preset}: hot-loop fwd+bwd speedup "
              f"{families['hot_loop']['speedup_batched_f32_vs_loop_f64']:.2f}x, "
              f"round {families['hot_loop']['round_speedup_batched_f32_vs_loop_f64']:.2f}x")
    if args.seed_src:
        for preset, value in result["seed_reference"]["speedup_batched_f32_vs_seed"].items():
            print(f"  {preset}: batched/float32 vs seed loop/float64 {value:.2f}x")

    if args.check:
        return check_regression(result, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
