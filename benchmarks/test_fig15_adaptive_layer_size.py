"""Figure 15: impact of the adaptive expert layer size (merge budget allocation).

The paper compares three ways of spending the non-tuning merge budget —
a single merged expert per layer, a uniform per-layer budget, and Flux's
adaptive allocation (Eq. 1) — and reports the forward-pass output error plus
the time to reach the target accuracy.  Adaptive allocation yields the lowest
output error.
"""

import numpy as np

from common import DATASETS, make_vocab, model_config, print_header, print_table
from repro.analysis import output_error, profile_activation
from repro.core import FluxConfig, build_compact_model, plan_compact_model
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer

STRATEGIES = ["single", "uniform", "adaptive"]
PAPER_ERRORS = {  # output error per strategy, Figure 15 top row
    "dolly": (0.51, 0.35, 0.24),
    "gsm8k": (0.32, 0.21, 0.11),
    "mmlu": (0.44, 0.26, 0.18),
    "piqa": (0.37, 0.31, 0.25),
}
NON_TUNING_BUDGET = 8


def _compact_error(model, profile, batches, strategy, tuning):
    config = FluxConfig(layer_budget_strategy=strategy, seed=0)
    budget = model.num_layers if strategy == "single" else NON_TUNING_BUDGET
    plan = plan_compact_model(model, tuning, profile, max_non_tuning_slots=budget, config=config)
    compact, _, _ = build_compact_model(model, plan, profile, config)
    return output_error(model, compact, batches[:3])


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    model = MoETransformer(config)
    results = {}
    for dataset_name in DATASETS:
        dataset = make_dataset(dataset_name, vocab=vocab, num_samples=96, seed=7)
        batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                               max_seq_len=config.max_seq_len)
        profile = profile_activation(model, batches)
        # tuning experts: the most activated expert of each layer
        tuning = {layer: [int(np.argmax(freq))] for layer, freq in enumerate(profile.frequencies)}
        results[dataset_name] = {
            strategy: _compact_error(model, profile, batches, strategy, tuning)
            for strategy in STRATEGIES
        }
    return results


def test_fig15_adaptive_layer_size(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 15: forward output error by merge-budget strategy")
    rows = []
    for dataset_name, per_strategy in results.items():
        rows.append([dataset_name] + [round(per_strategy[s], 4) for s in STRATEGIES]
                    + [str(PAPER_ERRORS[dataset_name])])
    print_table(["dataset"] + STRATEGIES + ["paper"], rows, width=14)

    for dataset_name, per_strategy in results.items():
        # Adaptive (and uniform) budgets keep more expert diversity than a
        # single merged expert per layer, so they cannot do worse.
        assert per_strategy["adaptive"] <= per_strategy["single"] + 1e-9
        assert per_strategy["uniform"] <= per_strategy["single"] + 1e-9
    # Across datasets, adaptive is on average at least as good as uniform.
    adaptive_mean = np.mean([results[d]["adaptive"] for d in results])
    uniform_mean = np.mean([results[d]["uniform"] for d in results])
    assert adaptive_mean <= uniform_mean * 1.05
