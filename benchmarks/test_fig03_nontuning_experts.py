"""Figure 3: keeping vs discarding non-tuning experts.

The paper fine-tunes only the most frequently activated experts and compares
two treatments of the remaining (non-tuning) experts: keeping them (frozen) vs
discarding them entirely.  Discarding degrades fine-tuning quality.  Here the
same comparison runs on the GSM8K-like dataset: "keep" preserves non-tuning
experts frozen in place, "discard" drops them (FMES-style skip).
"""


from common import (
    build_federation,
    default_rounds,
    default_run_config,
    print_header,
    print_table,
)
from repro.analysis import profile_activation
from repro.baselines import FMESFineTuner, select_top_activated
from repro.federated import FederatedFineTuner, ParameterServer, ParticipantRoundResult
from repro.federated.aggregation import ExpertUpdate
from repro.models import MoETransformer
from repro.systems import RoundCostBreakdown


class KeepNonTuningFineTuner(FederatedFineTuner):
    """Fine-tune the top-activated experts while keeping all others frozen."""

    name = "keep-non-tuning"

    def participant_round(self, participant, round_index):
        model = self.server.model_snapshot()
        profile_batches = participant.local_batches(self.config.batch_size, max_batches=2,
                                                    max_seq_len=model.config.max_seq_len)
        profile = profile_activation(model, profile_batches)
        selected = set(select_top_activated(profile, participant.resources.max_tuning_experts))
        batches = participant.local_batches(self.config.batch_size,
                                            max_batches=self.config.max_local_batches,
                                            max_seq_len=model.config.max_seq_len)
        result = participant.local_finetune(model, batches,
                                            learning_rate=self.config.learning_rate,
                                            trainable_experts=selected,
                                            iterations=self.config.local_iterations)
        updates = [
            ExpertUpdate(participant.participant_id, layer, expert,
                         model.expert_state(layer, expert),
                         float(max(result.expert_token_counts.get((layer, expert), 1), 1)))
            for layer, expert in selected
        ]
        return ParticipantRoundResult(updates=updates, breakdown=RoundCostBreakdown(training=1.0),
                                      train_loss=result.mean_loss)


def _measure():
    rounds = default_rounds(8)
    config, participants, test, cost_models = build_federation("gsm8k", num_clients=6, seed=4)
    run_config = default_run_config(eval_max_samples=60)

    keep = KeepNonTuningFineTuner(ParameterServer(MoETransformer(config)), participants, test,
                                  cost_models=cost_models, config=run_config)
    keep_result = keep.run(num_rounds=rounds)

    discard = FMESFineTuner(ParameterServer(MoETransformer(config)), participants, test,
                            cost_models=cost_models, config=run_config)
    discard_result = discard.run(num_rounds=rounds)
    return keep_result, discard_result


def test_fig03_discarding_non_tuning_experts_hurts(benchmark):
    keep_result, discard_result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 3(a): fine-tuning quality, keep vs discard non-tuning experts")
    rows = []
    for r, (keep_m, drop_m) in enumerate(zip(keep_result.tracker.metric_values(),
                                             discard_result.tracker.metric_values())):
        rows.append([r, keep_m, drop_m])
    print_table(["round", "keep_non_tuning", "discard_non_tuning"], rows, width=20)

    # Keeping non-tuning experts should reach at least the quality of discarding
    # them (the paper shows a clear gap in favour of keeping).
    assert keep_result.tracker.best_metric() >= discard_result.tracker.best_metric() * 0.9
