"""Figure 6: expert activation frequencies drift slowly across rounds.

The paper tracks activation frequencies over fine-tuning rounds and observes
that (a) they do change as parameters are updated, but (b) the change between
consecutive rounds is small (the CDF of per-round changes concentrates near
zero), which is what makes stale profiling viable.
"""

import numpy as np

from common import (
    build_federation,
    default_flux_config,
    default_rounds,
    default_run_config,
    print_header,
    print_table,
)
from repro.analysis import frequency_drift, profile_activation
from repro.core import FluxFineTuner
from repro.data import make_batches
from repro.federated import ParameterServer
from repro.models import MoETransformer


def _measure():
    rounds = default_rounds(8)
    config, participants, test, cost_models = build_federation("gsm8k", num_clients=6, seed=6)
    run_config = default_run_config()
    vocab = participants[0].dataset.vocab
    probe_batches = make_batches(test.samples[:64], 16, vocab, shuffle=False,
                                 max_seq_len=config.max_seq_len)

    server = ParameterServer(MoETransformer(config))
    tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                          config=run_config, flux_config=default_flux_config())
    profiles = [profile_activation(server.global_model, probe_batches)]
    for round_index in range(rounds):
        tuner.run_round(round_index)
        profiles.append(profile_activation(server.global_model, probe_batches))
    drifts = [frequency_drift(a, b) for a, b in zip(profiles, profiles[1:])]
    return profiles, drifts


def test_fig06_activation_frequency_drift(benchmark):
    profiles, drifts = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 6(a): tracked activation frequency (%) of 4 experts over rounds")
    tracked = [(0, e) for e in range(4)]
    rows = []
    for r, profile in enumerate(profiles):
        rows.append([r] + [round(float(profile.frequencies[l][e]) * 100, 2) for l, e in tracked])
    print_table(["round"] + [f"expert-{e + 1}" for _, e in tracked], rows)

    all_drift = np.concatenate(drifts)
    print_header("Figure 6(b): CDF of per-round activation frequency change (pp)")
    quantiles = [0.5, 0.75, 0.9, 0.99]
    print_table(["quantile", "change_pp"],
                [[q, float(np.quantile(all_drift, q))] for q in quantiles])

    # Frequencies do change over training ...
    total_change = frequency_drift(profiles[0], profiles[-1])
    assert total_change.max() > 0.0
    # ... but consecutive-round changes are small (90th percentile under 10pp),
    # the property stale profiling relies on.
    assert float(np.quantile(all_drift, 0.9)) < 10.0
