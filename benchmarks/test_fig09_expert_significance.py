"""Figure 9: expert significance is not fully explained by activation frequency.

(a) Discarding different experts causes very different output errors, and the
ranking does not simply follow activation frequency.  (b) Among the most
significant experts, some have low activation frequency but high attention
scores on the tokens they process.
"""


from common import make_vocab, model_config, print_header, print_table
from repro.analysis import (
    frequency_significance_correlation,
    profile_activation,
    significance_report,
    top_significant_experts,
)
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    model = MoETransformer(config)
    dataset = make_dataset("gsm8k", vocab=vocab, num_samples=96, seed=5)
    batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                           max_seq_len=config.max_seq_len)
    profile = profile_activation(model, batches)
    report = significance_report(model, batches[:2], profile=profile)
    return profile, report


def test_fig09_expert_significance(benchmark):
    profile, report = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Figure 9(a): sorted normalised frequency vs output error.
    by_frequency = sorted(report, key=lambda item: -item.activation_frequency)
    max_error = max(item.discard_error for item in report) or 1.0
    max_freq = max(item.activation_frequency for item in report) or 1.0

    print_header("Figure 9(a): sorted experts - normalised frequency vs discard output error")
    rows = []
    for rank, item in enumerate(by_frequency):
        rows.append([rank, (item.layer, item.expert),
                     round(item.activation_frequency / max_freq, 3),
                     round(item.discard_error / max_error, 3)])
    print_table(["rank", "expert", "norm_freq", "norm_error"], rows, width=14)

    # Figure 9(b): top-10 significant experts with their frequency and attention.
    top = top_significant_experts(report, top_k=10)
    max_att = max(item.attention_score for item in report) or 1.0
    print_header("Figure 9(b): top-10 significant experts - frequency vs attention score")
    print_table(["rank", "expert", "norm_freq", "norm_attention"],
                [[i + 1, (item.layer, item.expert),
                  round(item.activation_frequency / max_freq, 3),
                  round(item.attention_score / max_att, 3)] for i, item in enumerate(top)],
                width=14)

    correlation = frequency_significance_correlation(report)
    print(f"\nPearson correlation(frequency, discard error) = {correlation:.3f}")

    # Paper's point: frequency alone does not explain significance — the
    # correlation is clearly below a perfect 1.0 ...
    assert correlation < 0.95
    # ... and the frequency ranking and significance ranking disagree somewhere.
    significance_order = [(
        item.layer, item.expert) for item in sorted(report, key=lambda i: -i.discard_error)]
    frequency_order = [(item.layer, item.expert) for item in by_frequency]
    assert significance_order != frequency_order
