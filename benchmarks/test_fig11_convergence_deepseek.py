"""Figure 11: convergence vs wall-clock time on the DeepSeek-MoE(-like) model.

Same protocol as Figure 10 but on the DeepSeek-MoE-like mini model (more,
finer-grained experts plus a shared expert).  The method ordering should match
Figure 10; absolute times are larger because the model has more experts.
"""


from common import (
    DATASETS,
    METHODS,
    default_rounds,
    print_header,
    print_series,
    run_all_methods,
    time_to_common_target,
)

NUM_CLIENTS = 10
ROUNDS = 6


def _measure():
    results = {}
    for dataset_name in DATASETS:
        results[dataset_name] = run_all_methods(
            dataset_name, num_clients=NUM_CLIENTS, num_rounds=default_rounds(ROUNDS),
            model="deepseek", seed=11)
    return results


def test_fig11_convergence_deepseek_moe(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for dataset_name, method_results in results.items():
        print_header(f"Figure 11 ({dataset_name}, DeepSeek-MoE-like): metric vs simulated time")
        for method in METHODS:
            tracker = method_results[method].tracker
            print_series(method, tracker.times(), tracker.metric_values())
        targets = time_to_common_target(method_results, fraction=0.9)
        print(f"  time to 90% of FMD best: {targets}")

        flux = method_results["flux"]
        fmd = method_results["fmd"]
        fmes = method_results["fmes"]
        # FMD remains the most expensive per round; Flux stays competitive in quality.
        # (The DeepSeek-like mini model has 3x more experts per layer, so with the
        # same tuning budget Flux updates a smaller fraction of experts per round
        # than on the LLaMA-like model; the quality bound is correspondingly looser.)
        assert fmd.total_time > flux.total_time
        assert flux.tracker.best_metric() >= 0.5 * fmd.tracker.best_metric()
        assert fmd.total_time > fmes.total_time
