"""Table 2: final ROUGE-L / accuracy achieved by each method.

The paper reports the final quality after fine-tuning for both models and all
four datasets.  Expected ordering per cell: FMD (full fine-tuning) is the
quality ceiling, Flux lands within a small gap of FMD, FMES loses quality by
discarding experts, and FMQ loses the most to quantization error.
"""

import numpy as np

from common import (
    DATASETS,
    METHODS,
    default_rounds,
    print_header,
    print_table,
    run_all_methods,
)

PAPER_TABLE2 = {
    ("llama", "dolly"): {"fmd": 0.528, "fmq": 0.504, "fmes": 0.518, "flux": 0.527},
    ("llama", "gsm8k"): {"fmd": 0.665, "fmq": 0.614, "fmes": 0.622, "flux": 0.663},
    ("llama", "mmlu"): {"fmd": 0.795, "fmq": 0.759, "fmes": 0.774, "flux": 0.793},
    ("llama", "piqa"): {"fmd": 0.849, "fmq": 0.802, "fmes": 0.826, "flux": 0.848},
    ("deepseek", "dolly"): {"fmd": 0.529, "fmq": 0.507, "fmes": 0.519, "flux": 0.529},
    ("deepseek", "gsm8k"): {"fmd": 0.669, "fmq": 0.618, "fmes": 0.625, "flux": 0.665},
    ("deepseek", "mmlu"): {"fmd": 0.801, "fmq": 0.765, "fmes": 0.775, "flux": 0.798},
    ("deepseek", "piqa"): {"fmd": 0.853, "fmq": 0.805, "fmes": 0.830, "flux": 0.851},
}

ROUNDS = 6
NUM_CLIENTS = 6


def _measure():
    table = {}
    for model in ("llama", "deepseek"):
        for dataset_name in DATASETS:
            results = run_all_methods(dataset_name, num_clients=NUM_CLIENTS,
                                      num_rounds=default_rounds(ROUNDS), model=model,
                                      seed=20)
            table[(model, dataset_name)] = {
                method: results[method].tracker.best_metric() for method in METHODS
            }
    return table


def test_table2_final_accuracy(benchmark):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Table 2: best achieved metric per model / dataset / method")
    rows = []
    for (model, dataset_name), per_method in table.items():
        rows.append([model, dataset_name] + [round(per_method[m], 3) for m in METHODS]
                    + [str({m: PAPER_TABLE2[(model, dataset_name)][m] for m in METHODS})])
    print_table(["model", "dataset"] + METHODS + ["paper"], rows, width=14)

    flux_vs_fmd_gaps = []
    for key, per_method in table.items():
        fmd, flux, fmes, fmq = (per_method["fmd"], per_method["flux"],
                                per_method["fmes"], per_method["fmq"])
        if fmd > 0:
            flux_vs_fmd_gaps.append(flux / fmd)
        # Flux preserves quality: no collapse relative to full fine-tuning.
        assert flux >= 0.65 * fmd, f"flux quality collapsed for {key}"

    # On average Flux closes most of the gap to FMD (paper: near-identical).
    assert np.mean(flux_vs_fmd_gaps) > 0.8
