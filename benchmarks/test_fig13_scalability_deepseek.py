"""Figure 13: time-to-accuracy vs number of participants (DeepSeek-MoE-like).

Same protocol as Figure 12 on the DeepSeek-MoE-like mini model.
"""


from test_fig12_scalability_llama import _measure, _print_and_check


def test_fig13_scalability_deepseek(benchmark):
    table = benchmark.pedantic(lambda: _measure(model="deepseek", seed=31), rounds=1, iterations=1)
    _print_and_check(table, "Figure 13 (DeepSeek-MoE-like)")
