"""Figure 20: additional overhead introduced by Flux.

The paper breaks one round into profiling / merging / assignment /
fine-tuning time and shows that Flux's extra machinery stays a small fraction
of the round (roughly 5%, with profiling the largest overhead component but
hidden behind aggregation).  This benchmark reports the same breakdown from the
simulated per-phase accounting of a Flux run on each dataset.
"""


from common import (
    DATASETS,
    build_federation,
    default_flux_config,
    default_rounds,
    default_run_config,
    print_header,
    print_table,
)
from repro.core import FluxFineTuner
from repro.federated import ParameterServer
from repro.models import MoETransformer

PAPER_SHARES = {  # % of the profiled categories (profiling, merging, assignment, fine-tuning)
    "dolly": (2.15, 0.92, 1.66, 95.27),
    "gsm8k": (2.24, 1.32, 2.33, 94.11),
    "mmlu": (2.08, 0.75, 1.35, 95.81),
    "piqa": (2.18, 1.12, 1.97, 94.72),
}
CATEGORIES = ["profiling", "merging", "assignment", "fine-tuning"]


def _measure():
    results = {}
    for dataset_name in DATASETS:
        config, participants, test, cost_models = build_federation(dataset_name, num_clients=5,
                                                                   seed=60)
        tuner = FluxFineTuner(ParameterServer(MoETransformer(config)), participants, test,
                              cost_models=cost_models, config=default_run_config(),
                              flux_config=default_flux_config())
        run = tuner.run(num_rounds=default_rounds(3))
        totals = run.timeline.phase_totals()
        profiling = totals.get("profiling", 0.0) + totals.get("quantization", 0.0)
        merging = totals.get("merging", 0.0)
        assignment = totals.get("assignment", 0.0)
        fine_tuning = totals.get("training", 0.0)
        overall = profiling + merging + assignment + fine_tuning
        results[dataset_name] = {
            "profiling": profiling / overall * 100,
            "merging": merging / overall * 100,
            "assignment": assignment / overall * 100,
            "fine-tuning": fine_tuning / overall * 100,
        }
    return results


def test_fig20_flux_overhead(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 20: share (%) of profiling / merging / assignment / fine-tuning")
    rows = []
    for dataset_name, shares in results.items():
        rows.append([dataset_name] + [round(shares[c], 2) for c in CATEGORIES]
                    + [str(PAPER_SHARES[dataset_name])])
    print_table(["dataset"] + CATEGORIES + ["paper"], rows, width=14)

    for dataset_name, shares in results.items():
        # Fine-tuning dominates the round; Flux's own machinery stays a minority.
        overhead = shares["profiling"] + shares["merging"] + shares["assignment"]
        assert shares["fine-tuning"] > overhead
        # Merging and assignment individually remain small (paper: ~1-2% each).
        assert shares["merging"] < 25.0
        assert shares["assignment"] < 35.0
