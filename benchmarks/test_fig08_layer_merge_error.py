"""Figure 8: output error when merging experts at different layers.

The paper merges experts at a single layer and measures the cosine-distance
output error of the final token embeddings against the full model; merging in
*earlier* layers produces larger errors because the error propagates and
amplifies through the remaining depth.  This benchmark merges every expert of
one layer at a time (Dolly-like and GSM8K-like data) and reports the error per
merge depth.
"""


from common import make_vocab, model_config, print_header, print_table
from repro.analysis import output_error, profile_activation
from repro.core import FluxConfig, build_compact_model, plan_compact_model
from repro.data import make_batches, make_dataset
from repro.models import MoETransformer

PAPER_ERRORS = {
    "dolly": {0: 0.67, 1: 0.51, 2: 0.44, 3: 0.31},   # paper layer indices 2/4/8/16/32 -> early..late
    "gsm8k": {0: 0.43, 1: 0.36, 2: 0.30, 3: 0.23},
}


def _merge_single_layer(model, profile, layer, config):
    """Compact model where only `layer` is merged (all its experts -> 1)."""
    tuning = {l: list(range(model.experts_per_layer()[l]))
              for l in range(model.num_layers) if l != layer}
    flux_config = FluxConfig(layer_budget_strategy="single", seed=0)
    plan = plan_compact_model(model, tuning, profile,
                              max_non_tuning_slots=model.num_layers, config=flux_config)
    compact, _, _ = build_compact_model(model, plan, profile, flux_config)
    return compact


def _measure():
    vocab = make_vocab()
    config = model_config("llama", vocab_size=vocab.size)
    model = MoETransformer(config)
    results = {}
    for dataset_name in ("dolly", "gsm8k"):
        dataset = make_dataset(dataset_name, vocab=vocab, num_samples=96, seed=3)
        batches = make_batches(dataset.samples, 16, vocab, shuffle=False,
                               max_seq_len=config.max_seq_len)
        profile = profile_activation(model, batches)
        per_layer = {}
        for layer in range(model.num_layers):
            merged = _merge_single_layer(model, profile, layer, config)
            per_layer[layer] = output_error(model, merged, batches[:3])
        results[dataset_name] = per_layer
    return results


def test_fig08_merging_earlier_layers_hurts_more(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    for dataset_name, per_layer in results.items():
        print_header(f"Figure 8 ({dataset_name}): output error vs merge layer")
        print_table(["layer", "output_error", "paper_trend"],
                    [[layer, per_layer[layer], PAPER_ERRORS[dataset_name].get(layer, "-")]
                     for layer in sorted(per_layer)])

        errors = [per_layer[layer] for layer in sorted(per_layer)]
        assert all(e >= 0 for e in errors)
        # Shape check: merging the first layer hurts at least as much as the last.
        assert errors[0] >= errors[-1] * 0.8
