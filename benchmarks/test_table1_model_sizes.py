"""Table 1: MoE-based LLMs — #layers/#experts, parameter count and size.

Regenerates the paper's Table 1 from the analytical architecture descriptors
and checks the rows against the published numbers.
"""

import pytest

from common import print_header, print_table
from repro.models import table1_rows

#: (model, layers, experts, params in B, size in GB) as printed in the paper
PAPER_TABLE1 = {
    "LLaMA-MoE": (32, 16, 6.7, 13.48),
    "Deepseek-MoE": (28, 64, 16.4, 32.77),
    "Deepseek-v2-lite": (27, 64, 15.7, 31.44),
    "Mixtral-8x7B": (64, 8, 46.7, 96.82),
    "Qwen2-MoE": (28, 64, 57.4, 112.4),
}


def _generate_rows():
    return table1_rows()


def test_table1_model_sizes(benchmark):
    rows = benchmark.pedantic(_generate_rows, rounds=1, iterations=1)

    print_header("Table 1: MoE-based LLMs (#Layers/#Experts, #Params, Size)")
    print_table(["model", "layers", "experts", "params_B", "size_GB"],
                [[r["model"], r["layers"], r["experts"], r["params_B"], r["size_GB"]] for r in rows],
                width=18)

    for row in rows:
        layers, experts, params, size = PAPER_TABLE1[row["model"]]
        assert row["layers"] == layers
        assert row["experts"] == experts
        assert row["params_B"] == pytest.approx(params, rel=0.05)
        # paper sizes assume 2-byte parameters; allow a small tolerance
        assert row["size_GB"] == pytest.approx(size, rel=0.1)
