"""Figure 14: impact of stale profiling.

The paper compares profiling freshly every round against Flux's stale
profiling (2-bit profiling model): staleness adds under 2 percentage points of
estimation error while cutting the fine-tuning round time by roughly 28%
because quantization + profiling overlap with aggregation.
"""

import numpy as np

from common import (
    DATASETS,
    build_federation,
    default_flux_config,
    default_rounds,
    default_run_config,
    print_header,
    print_table,
)
from repro.core import FluxFineTuner, StaleProfiler
from repro.data import make_batches
from repro.federated import ParameterServer
from repro.models import MoETransformer

PAPER = {  # (error % without/with stale, round time s without/with)
    "dolly": (14.71, 15.12, 428.51, 298.44),
    "gsm8k": (7.24, 7.74, 203.32, 129.05),
    "mmlu": (10.71, 11.28, 568.23, 471.87),
    "piqa": (11.35, 11.89, 317.58, 224.38),
}


def _round_time(dataset_name, stale, seed):
    config, participants, test, cost_models = build_federation(dataset_name, num_clients=5,
                                                               seed=seed)
    flux_config = default_flux_config(stale_profiling=stale, profiling_bits=2)
    tuner = FluxFineTuner(ParameterServer(MoETransformer(config)), participants, test,
                          cost_models=cost_models, config=default_run_config(),
                          flux_config=flux_config)
    result = tuner.run(num_rounds=default_rounds(3))
    durations = [r.round_duration for r in result.rounds[1:]] or \
        [r.round_duration for r in result.rounds]
    return float(np.mean(durations))


def _staleness_error(dataset_name, seed):
    """Estimation error of a one-round-old profile vs a fresh one after an update."""
    config, participants, test, cost_models = build_federation(dataset_name, num_clients=5,
                                                               seed=seed)
    vocab = participants[0].dataset.vocab
    model = MoETransformer(config)
    batches = make_batches(test.samples[:64], 16, vocab, shuffle=False,
                           max_seq_len=config.max_seq_len)
    profiler = StaleProfiler(bits=2, enabled=True)
    profiler.profile_for_round(model, batches)
    # one round of local training shifts the routing slightly
    participants[0].local_finetune(model, participants[0].local_batches(
        16, max_batches=2, max_seq_len=config.max_seq_len), learning_rate=1e-2)
    return profiler.staleness_error(model, batches)


def _measure():
    results = {}
    for dataset_name in DATASETS:
        results[dataset_name] = {
            "stale_extra_error_pct": _staleness_error(dataset_name, seed=40),
            "round_time_fresh": _round_time(dataset_name, stale=False, seed=40),
            "round_time_stale": _round_time(dataset_name, stale=True, seed=40),
        }
    return results


def test_fig14_stale_profiling(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header("Figure 14: stale profiling - extra estimation error and round time")
    rows = []
    for dataset_name, entry in results.items():
        reduction = 1.0 - entry["round_time_stale"] / entry["round_time_fresh"]
        rows.append([dataset_name, round(entry["stale_extra_error_pct"], 2),
                     round(entry["round_time_fresh"], 1), round(entry["round_time_stale"], 1),
                     f"{reduction * 100:.1f}%"])
    print_table(["dataset", "stale_err_pct", "fresh_round_s", "stale_round_s", "saving"], rows,
                width=15)

    for dataset_name, entry in results.items():
        # Stale profiling must shorten the round (profiling hidden behind aggregation).
        assert entry["round_time_stale"] < entry["round_time_fresh"]
        # And its extra estimation error stays bounded (paper: < 2pp growth).
        assert entry["stale_extra_error_pct"] < 60.0
