"""Framed wire serialization for expert updates and full state dicts.

Frame layout (all integers little-endian)::

    "RWP1" | kind u8 | codec_len u8 | codec utf-8
    kind=UPDATE:     participant i32 | layer i32 | expert i32 | weight f8
    kind=STATE_DICT: (nothing extra)
    ntensors u16
    per tensor: name_len u16 | name utf-8 | dtype_len u8 | dtype str
                ndim u8 | dim u32 * ndim
                nsections u8 | (section_len u32 | section bytes) * nsections
    crc32 over everything above, u32

The trailing CRC covers the whole frame — header fields included — so any
single flipped bit surfaces as :class:`PayloadCorruptedError` instead of a
silently mis-addressed or mis-valued update.  The participant id is signed
on purpose: edge aggregators (:mod:`repro.federated.topology`) frame their
pre-folded partial aggregates with negative pseudo-ids (``-(edge + 1)``) so
both hops of a hierarchy speak the same wire format.  Tensor *values* travel in
whatever sections the frame's :class:`~repro.comm.codecs.Codec` produced;
shape and source dtype always travel in the clear so the receiver can
reconstruct without out-of-band metadata.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .codecs import Codec, PayloadCorruptedError, get_codec

MAGIC = b"RWP1"
KIND_UPDATE = 1
KIND_STATE_DICT = 2

#: bytes of frame overhead that do not scale with tensor size
FIXED_HEADER_BYTES = len(MAGIC) + 1 + 1 + 4  # magic, kind, codec_len, crc


ReferenceLookup = Callable[[int, int], Dict[str, np.ndarray]]


def _encode_tensors(parts: List[bytes], codec: Codec, state: Dict[str, np.ndarray],
                    reference: Optional[Dict[str, np.ndarray]]) -> None:
    parts.append(struct.pack("<H", len(state)))
    for name, value in state.items():
        array = np.asarray(value)
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        parts.append(struct.pack("<H", len(name_bytes)))
        parts.append(name_bytes)
        parts.append(struct.pack("<B", len(dtype_bytes)))
        parts.append(dtype_bytes)
        parts.append(struct.pack("<B", array.ndim))
        parts.append(struct.pack(f"<{array.ndim}I", *array.shape))
        ref = None
        if codec.needs_reference:
            if reference is None or name not in reference:
                raise ValueError(
                    f"codec {codec.name!r} needs a reference for tensor {name!r}")
            ref = reference[name]
        sections = codec.encode_array(array, reference=ref)
        parts.append(struct.pack("<B", len(sections)))
        for section in sections:
            parts.append(struct.pack("<I", len(section)))
            parts.append(section)


def _frame(parts: List[bytes]) -> bytes:
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body))


class _Reader:
    """Bounds-checked sequential reader over one frame body."""

    def __init__(self, body: bytes) -> None:
        self.body = body
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if count < 0 or end > len(self.body):
            raise PayloadCorruptedError("frame truncated")
        chunk = self.body[self.offset:end]
        self.offset = end
        return chunk

    def unpack(self, fmt: str) -> Tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def _check_frame(data: bytes) -> _Reader:
    if len(data) < FIXED_HEADER_BYTES:
        raise PayloadCorruptedError("frame shorter than the fixed header")
    body, crc_bytes = data[:-4], data[-4:]
    (crc,) = struct.unpack("<I", crc_bytes)
    if zlib.crc32(body) != crc:
        raise PayloadCorruptedError("frame checksum mismatch")
    reader = _Reader(body)
    if reader.take(len(MAGIC)) != MAGIC:
        raise PayloadCorruptedError("bad frame magic")
    return reader


def _decode_tensors(reader: _Reader, codec: Codec,
                    reference: Optional[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    (ntensors,) = reader.unpack("<H")
    state: Dict[str, np.ndarray] = {}
    for _ in range(ntensors):
        (name_len,) = reader.unpack("<H")
        name = reader.take(name_len).decode("utf-8")
        (dtype_len,) = reader.unpack("<B")
        dtype = np.dtype(reader.take(dtype_len).decode("ascii"))
        (ndim,) = reader.unpack("<B")
        shape = tuple(reader.unpack(f"<{ndim}I"))
        (nsections,) = reader.unpack("<B")
        sections = []
        for _ in range(nsections):
            (section_len,) = reader.unpack("<I")
            sections.append(reader.take(section_len))
        ref = None
        if codec.needs_reference:
            if reference is None or name not in reference:
                raise ValueError(
                    f"codec {codec.name!r} needs a reference for tensor {name!r}")
            ref = reference[name]
        state[name] = codec.decode_array(sections, shape, dtype, reference=ref)
    return state


def _codec_from(reader: _Reader) -> Codec:
    (codec_len,) = reader.unpack("<B")
    return get_codec(reader.take(codec_len).decode("ascii"))


def frame_codec_name(data: bytes) -> str:
    """The codec tag an ``RWP1`` frame declares, read from the header alone.

    Cheap (no CRC pass, no tensor decode) — this is how the service plane
    validates/labels frames without unpacking them.  Raises ``ValueError`` on
    anything that is not an ``RWP1`` frame header; the returned name is *not*
    checked against the codec registry (callers decide how to fail).
    """
    header = len(MAGIC) + 2  # magic, kind, codec_len
    if len(data) < header or data[:len(MAGIC)] != MAGIC:
        raise ValueError("not an RWP1 frame (bad magic or truncated header)")
    codec_len = data[len(MAGIC) + 1]
    if len(data) < header + codec_len:
        raise ValueError("RWP1 frame truncated inside its codec tag")
    try:
        return data[header:header + codec_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ValueError(f"undecodable RWP1 codec tag: {exc}") from exc


def encode_update(update, codec: Codec,
                  reference: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """Serialize one :class:`~repro.federated.aggregation.ExpertUpdate`."""
    codec_bytes = codec.name.encode("ascii")
    parts: List[bytes] = [
        MAGIC,
        struct.pack("<BB", KIND_UPDATE, len(codec_bytes)),
        codec_bytes,
        struct.pack("<iiid", int(update.participant_id), int(update.layer),
                    int(update.expert), float(update.weight)),
    ]
    _encode_tensors(parts, codec, update.state, reference)
    return _frame(parts)


def decode_update(data: bytes,
                  reference: Optional[Dict[str, np.ndarray]] = None,
                  reference_lookup: Optional[ReferenceLookup] = None):
    """Inverse of :func:`encode_update`.

    Delta codecs resolve their reference either from ``reference`` directly
    or via ``reference_lookup(layer, expert)`` (e.g. the parameter server's
    :meth:`~repro.federated.server.ParameterServer.expert_state`).
    """
    from ..federated.aggregation import ExpertUpdate

    reader = _check_frame(data)
    try:
        (kind,) = reader.unpack("<B")
        if kind != KIND_UPDATE:
            raise PayloadCorruptedError(f"expected an update frame, got kind {kind}")
        codec = _codec_from(reader)
        participant_id, layer, expert, weight = reader.unpack("<iiid")
        if codec.needs_reference and reference is None and reference_lookup is not None:
            reference = reference_lookup(layer, expert)
        state = _decode_tensors(reader, codec, reference)
    except (struct.error, KeyError, UnicodeDecodeError, TypeError) as exc:
        # The CRC makes this unreachable for in-flight corruption; it guards
        # against truncated or foreign-writer frames that still checksum.
        raise PayloadCorruptedError(f"malformed update frame: {exc}") from exc
    return ExpertUpdate(participant_id=participant_id, layer=layer, expert=expert,
                        state=state, weight=weight)


def encode_state_dict(state: Dict[str, np.ndarray], codec: Codec,
                      reference: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """Serialize a full model (or expert) state dict."""
    codec_bytes = codec.name.encode("ascii")
    parts: List[bytes] = [
        MAGIC,
        struct.pack("<BB", KIND_STATE_DICT, len(codec_bytes)),
        codec_bytes,
    ]
    _encode_tensors(parts, codec, state, reference)
    return _frame(parts)


def decode_state_dict(data: bytes,
                      reference: Optional[Dict[str, np.ndarray]] = None
                      ) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_state_dict`."""
    reader = _check_frame(data)
    try:
        (kind,) = reader.unpack("<B")
        if kind != KIND_STATE_DICT:
            raise PayloadCorruptedError(f"expected a state-dict frame, got kind {kind}")
        codec = _codec_from(reader)
        return _decode_tensors(reader, codec, reference)
    except (struct.error, KeyError, UnicodeDecodeError, TypeError) as exc:
        raise PayloadCorruptedError(f"malformed state-dict frame: {exc}") from exc
