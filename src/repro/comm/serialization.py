"""Framed wire serialization for expert updates and full state dicts.

Frame layout (all integers little-endian)::

    "RWP1" | kind u8 | codec_len u8 | codec utf-8
    kind=UPDATE:     participant i32 | layer i32 | expert i32 | weight f8
    kind=STATE_DICT: (nothing extra)
    ntensors u16
    per tensor: name_len u16 | name utf-8 | dtype_len u8 | dtype str
                ndim u8 | dim u32 * ndim
                nsections u8 | (section_len u32 | section bytes) * nsections
    crc32 over everything above, u32

The trailing CRC covers the whole frame — header fields included — so any
single flipped bit surfaces as :class:`PayloadCorruptedError` instead of a
silently mis-addressed or mis-valued update.  The participant id is signed
on purpose: edge aggregators (:mod:`repro.federated.topology`) frame their
pre-folded partial aggregates with negative pseudo-ids (``-(edge + 1)``) so
both hops of a hierarchy speak the same wire format.  Tensor *values* travel in
whatever sections the frame's :class:`~repro.comm.codecs.Codec` produced;
shape and source dtype always travel in the clear so the receiver can
reconstruct without out-of-band metadata.

Decode is zero-copy up to the tensor values: :func:`_check_frame` CRCs a
``memoryview`` of the input (``bytes``, ``bytearray`` or ``memoryview`` — a
:meth:`~repro.comm.stream.FrameStream.recv_frame_view` buffer decodes without
ever materialising a ``bytes`` frame), :func:`_decode_tensors` walks it with
flat offset arithmetic and pre-compiled ``struct`` objects, hands codecs
*views* of their payload sections, and ``np.frombuffer`` reads values straight
out of the frame.
Passing a :class:`~repro.comm.scratch.ScratchPool` as ``scratch=`` makes the
tensor reconstruction allocation-free too: each output array is checked out
of the pool and filled in place via the codecs' ``out=`` fast path — see
:meth:`repro.comm.codecs.Codec.decode_array` — and when a cast codec's wire
dtype already *is* the target dtype the array is a read-only view straight
into the frame, with no copy at all.  Scratch-decoded states are volatile:
valid only until the pool's next ``recycle()`` (and, for the frame-backed
views, only while the frame buffer itself is not reused).
"""

from __future__ import annotations

import math
import struct
import zlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .codecs import Codec, PayloadCorruptedError, get_codec
from .scratch import ScratchPool

MAGIC = b"RWP1"
KIND_UPDATE = 1
KIND_STATE_DICT = 2

#: bytes of frame overhead that do not scale with tensor size
FIXED_HEADER_BYTES = len(MAGIC) + 1 + 1 + 4  # magic, kind, codec_len, crc

_CRC = struct.Struct("<I")

#: pre-compiled readers for every format the frame walk touches; the shape
#: formats (``<{ndim}I``) join lazily, so no decode ever calls
#: ``struct.calcsize`` — measurably the old reader's single largest cost
_STRUCTS: Dict[str, struct.Struct] = {
    fmt: struct.Struct(fmt) for fmt in ("<B", "<H", "<I", "<iiid", "<BB")}
_U16 = _STRUCTS["<H"]
_U32 = _STRUCTS["<I"]
_UPDATE_HEADER = _STRUCTS["<iiid"]

#: per-``ndim`` shape readers (``<{ndim}I``), compiled once each
_SHAPE_STRUCTS: Dict[int, struct.Struct] = {}

#: parsed-``np.dtype`` cache: only strings ``np.dtype`` accepted are cached,
#: so fuzzed garbage cannot grow it
_DTYPES: Dict[str, np.dtype] = {}


def _struct_for(fmt: str) -> struct.Struct:
    compiled = _STRUCTS.get(fmt)
    if compiled is None:
        compiled = _STRUCTS[fmt] = struct.Struct(fmt)
    return compiled


def _shape_struct(ndim: int) -> struct.Struct:
    compiled = _SHAPE_STRUCTS.get(ndim)
    if compiled is None:
        compiled = _SHAPE_STRUCTS[ndim] = struct.Struct(f"<{ndim}I")
    return compiled


def _dtype_for(token: str) -> np.dtype:
    dtype = _DTYPES.get(token)
    if dtype is None:
        dtype = np.dtype(token)  # raises TypeError on garbage -> corrupted
        _DTYPES[token] = dtype
    return dtype


ReferenceLookup = Callable[[int, int], Dict[str, np.ndarray]]

#: lazily bound ExpertUpdate class (the federated layer imports this module,
#: so the reverse import must happen at first decode, and only once)
_EXPERT_UPDATE = None


def _expert_update_class():
    global _EXPERT_UPDATE
    if _EXPERT_UPDATE is None:
        from ..federated.aggregation import ExpertUpdate

        _EXPERT_UPDATE = ExpertUpdate
    return _EXPERT_UPDATE


def _encode_tensors(parts: List[bytes], codec: Codec, state: Dict[str, np.ndarray],
                    reference: Optional[Dict[str, np.ndarray]]) -> None:
    parts.append(struct.pack("<H", len(state)))
    for name, value in state.items():
        array = np.asarray(value)
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        parts.append(struct.pack("<H", len(name_bytes)))
        parts.append(name_bytes)
        parts.append(struct.pack("<B", len(dtype_bytes)))
        parts.append(dtype_bytes)
        parts.append(struct.pack("<B", array.ndim))
        parts.append(struct.pack(f"<{array.ndim}I", *array.shape))
        ref = None
        if codec.needs_reference:
            if reference is None or name not in reference:
                raise ValueError(
                    f"codec {codec.name!r} needs a reference for tensor {name!r}")
            ref = reference[name]
        sections = codec.encode_array(array, reference=ref)
        parts.append(struct.pack("<B", len(sections)))
        for section in sections:
            parts.append(struct.pack("<I", len(section)))
            parts.append(section)


def _frame(parts: List[bytes]) -> bytes:
    # CRC accumulates incrementally over the parts, so the body bytes are
    # concatenated exactly once (the old body-join-then-append emitted every
    # frame twice).
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    parts.append(_CRC.pack(crc))
    return b"".join(parts)


def _check_frame(data) -> memoryview:
    """CRC-check ``data`` (any bytes-like buffer); returns the body view.

    The body excludes the trailing CRC but includes the magic (offset 0-3),
    so header fields live at fixed offsets within it.
    """
    view = memoryview(data)
    if type(data) is not bytes and (
            view.ndim != 1 or view.itemsize != 1
            or view.format not in ("B", "b", "c")):
        view = view.cast("B")
    if len(view) < FIXED_HEADER_BYTES:
        raise PayloadCorruptedError("frame shorter than the fixed header")
    body = view[:-4]
    (crc,) = _CRC.unpack_from(view, len(view) - 4)
    if zlib.crc32(body) != crc:
        raise PayloadCorruptedError("frame checksum mismatch")
    if body[:4] != MAGIC:
        raise PayloadCorruptedError("bad frame magic")
    return body


def _decode_tensors(body: memoryview, offset: int, codec: Codec,
                    reference: Optional[Dict[str, np.ndarray]],
                    scratch: Optional[ScratchPool] = None
                    ) -> Dict[str, np.ndarray]:
    # The per-tensor walk is THE decode hot loop: it runs with flat offset
    # arithmetic over the body view and pre-compiled structs (no per-field
    # reader objects or method calls).  ``unpack_from`` past the view raises
    # ``struct.error`` and a single-byte read past it raises ``IndexError``
    # — both converted to PayloadCorruptedError by the decode entry points —
    # while variable-length slices are explicitly bounds-checked because a
    # short ``memoryview`` slice would truncate silently.
    size = len(body)
    needs_reference = codec.needs_reference
    decode_array = codec.decode_array
    cast_dtype = codec.cast_wire_dtype
    cast_itemsize = cast_dtype.itemsize if cast_dtype is not None else 0
    shape_structs = _SHAPE_STRUCTS
    dtypes = _DTYPES
    (ntensors,) = _U16.unpack_from(body, offset)
    offset += 2
    state: Dict[str, np.ndarray] = {}
    for _ in range(ntensors):
        (name_len,) = _U16.unpack_from(body, offset)
        offset += 2
        end = offset + name_len
        if end > size:
            raise PayloadCorruptedError("frame truncated")
        name = str(body[offset:end], "utf-8")
        dtype_len = body[end]
        offset = end + 1
        end = offset + dtype_len
        if end > size:
            raise PayloadCorruptedError("frame truncated")
        token = str(body[offset:end], "ascii")
        dtype = dtypes.get(token)
        if dtype is None:
            dtype = _dtype_for(token)
        ndim = body[end]
        offset = end + 1
        compiled = shape_structs.get(ndim)
        if compiled is None:
            compiled = _shape_struct(ndim)
        shape = compiled.unpack_from(body, offset)
        offset += compiled.size
        nsections = body[offset]
        offset += 1
        if cast_dtype is not None and nsections == 1:
            # Inlined cast-codec fast path: one section of raw wire-dtype
            # values.  Identical arithmetic to CastCodec.decode_array (same
            # frombuffer, same reshape, same cast kernels) with no per-tensor
            # dispatch — this is the fp64 fold hot path.
            (section_len,) = _U32.unpack_from(body, offset)
            offset += 4
            end = offset + section_len
            if end > size:
                raise PayloadCorruptedError("frame truncated")
            if section_len != cast_itemsize * math.prod(shape):
                raise PayloadCorruptedError(
                    "payload size does not match the declared shape")
            values = np.frombuffer(body[offset:end], dtype=cast_dtype)
            offset = end
            if scratch is None:
                state[name] = values.reshape(shape).astype(dtype)
            elif dtype == cast_dtype:
                # True zero-copy: the wire bytes *are* the values, so under
                # scratch (volatile-until-recycle semantics anyway) the fold
                # reads straight out of the frame — no take, no copy.  The
                # view is read-only and possibly unaligned; NumPy's ufunc
                # loops handle both, and the fold only ever reads it.
                state[name] = values.reshape(shape)
            else:
                out = scratch.take(shape, dtype)
                np.copyto(out, values.reshape(shape), casting="unsafe")
                state[name] = out
            continue
        sections = []
        for _ in range(nsections):
            (section_len,) = _U32.unpack_from(body, offset)
            offset += 4
            end = offset + section_len
            if end > size:
                raise PayloadCorruptedError("frame truncated")
            sections.append(body[offset:end])
            offset = end
        ref = None
        if needs_reference:
            if reference is None or name not in reference:
                raise ValueError(
                    f"codec {codec.name!r} needs a reference for tensor {name!r}")
            ref = reference[name]
        if scratch is not None:
            state[name] = decode_array(sections, shape, dtype, reference=ref,
                                       out=scratch.take(shape, dtype))
        else:
            state[name] = decode_array(sections, shape, dtype, reference=ref)
    return state


def _parse_header(body: memoryview) -> Tuple[int, Codec, int]:
    """Read ``kind`` and the codec past the magic; returns the next offset."""
    kind = body[4]
    codec_len = body[5]
    end = 6 + codec_len
    if end > len(body):
        raise PayloadCorruptedError("frame truncated")
    codec = get_codec(str(body[6:end], "ascii"))
    return kind, codec, end


def frame_codec_name(data) -> str:
    """The codec tag an ``RWP1`` frame declares, read from the header alone.

    Cheap (no CRC pass, no tensor decode) — this is how the service plane
    validates/labels frames without unpacking them.  Raises ``ValueError`` on
    anything that is not an ``RWP1`` frame header; the returned name is *not*
    checked against the codec registry (callers decide how to fail).
    Accepts any bytes-like buffer.
    """
    header = len(MAGIC) + 2  # magic, kind, codec_len
    if len(data) < header or data[:len(MAGIC)] != MAGIC:
        raise ValueError("not an RWP1 frame (bad magic or truncated header)")
    codec_len = data[len(MAGIC) + 1]
    if len(data) < header + codec_len:
        raise ValueError("RWP1 frame truncated inside its codec tag")
    try:
        return str(data[header:header + codec_len], "ascii")
    except UnicodeDecodeError as exc:
        raise ValueError(f"undecodable RWP1 codec tag: {exc}") from exc


def encode_update(update, codec: Codec,
                  reference: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """Serialize one :class:`~repro.federated.aggregation.ExpertUpdate`."""
    codec_bytes = codec.name.encode("ascii")
    parts: List[bytes] = [
        MAGIC,
        struct.pack("<BB", KIND_UPDATE, len(codec_bytes)),
        codec_bytes,
        struct.pack("<iiid", int(update.participant_id), int(update.layer),
                    int(update.expert), float(update.weight)),
    ]
    _encode_tensors(parts, codec, update.state, reference)
    return _frame(parts)


def decode_update(data,
                  reference: Optional[Dict[str, np.ndarray]] = None,
                  reference_lookup: Optional[ReferenceLookup] = None,
                  scratch: Optional[ScratchPool] = None):
    """Inverse of :func:`encode_update` (``data``: any bytes-like buffer).

    Delta codecs resolve their reference either from ``reference`` directly
    or via ``reference_lookup(layer, expert)`` (e.g. the parameter server's
    :meth:`~repro.federated.server.ParameterServer.expert_state`).  With a
    ``scratch`` pool the decoded state's arrays are volatile — pool-owned
    (valid only until ``scratch.recycle()``) or read-only views into the
    frame itself — so callers must fold (or copy) them first.
    """
    participant_id, layer, expert, weight, state = _decode_update_parts(
        data, reference, reference_lookup, scratch)
    return _expert_update_class()(
        participant_id=participant_id, layer=layer, expert=expert,
        state=state, weight=weight)


def _decode_update_parts(data, reference, reference_lookup, scratch):
    """:func:`decode_update` minus the ``ExpertUpdate`` construction.

    The fused fold path (:meth:`StreamingAggregator.fold_payload
    <repro.comm.aggregator.StreamingAggregator.fold_payload>`) consumes the
    raw ``(participant_id, layer, expert, weight, state)`` tuple directly —
    building (and immediately unpacking) a dataclass per frame is measurable
    at wire-fold rates.
    """
    body = _check_frame(data)
    try:
        kind, codec, offset = _parse_header(body)
        if kind != KIND_UPDATE:
            raise PayloadCorruptedError(f"expected an update frame, got kind {kind}")
        participant_id, layer, expert, weight = _UPDATE_HEADER.unpack_from(
            body, offset)
        offset += _UPDATE_HEADER.size
        if codec.needs_reference and reference is None and reference_lookup is not None:
            reference = reference_lookup(layer, expert)
        state = _decode_tensors(body, offset, codec, reference, scratch)
    except (struct.error, KeyError, IndexError, UnicodeDecodeError, TypeError) as exc:
        # The CRC makes this unreachable for in-flight corruption; it guards
        # against truncated or foreign-writer frames that still checksum.
        raise PayloadCorruptedError(f"malformed update frame: {exc}") from exc
    return participant_id, layer, expert, weight, state


def encode_state_dict(state: Dict[str, np.ndarray], codec: Codec,
                      reference: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """Serialize a full model (or expert) state dict."""
    codec_bytes = codec.name.encode("ascii")
    parts: List[bytes] = [
        MAGIC,
        struct.pack("<BB", KIND_STATE_DICT, len(codec_bytes)),
        codec_bytes,
    ]
    _encode_tensors(parts, codec, state, reference)
    return _frame(parts)


def decode_state_dict(data,
                      reference: Optional[Dict[str, np.ndarray]] = None,
                      scratch: Optional[ScratchPool] = None
                      ) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_state_dict` (``data``: any bytes-like buffer).

    ``scratch`` decodes into pool-owned arrays, as :func:`decode_update` does.
    """
    body = _check_frame(data)
    try:
        kind, codec, offset = _parse_header(body)
        if kind != KIND_STATE_DICT:
            raise PayloadCorruptedError(f"expected a state-dict frame, got kind {kind}")
        return _decode_tensors(body, offset, codec, reference, scratch)
    except (struct.error, KeyError, IndexError, UnicodeDecodeError, TypeError) as exc:
        raise PayloadCorruptedError(f"malformed state-dict frame: {exc}") from exc
