"""Wire-level communication stack: codecs, framing, channels, streaming.

This layer sits *below* the federated substrate: it knows how to turn tensors
into framed byte payloads (:mod:`~repro.comm.serialization`) under a pluggable
:class:`Codec` (:mod:`~repro.comm.codecs`), how to move those payloads over a
metered, faultable link (:mod:`~repro.comm.channel`), how to delimit them on
a real byte stream — TCP or ``socketpair`` — with partial-read/-write-safe
length-prefixed framing (:mod:`~repro.comm.stream`), and how to fold decoded
updates into a constant-memory running average
(:mod:`~repro.comm.aggregator`).  The federated stack selects a codec and
transport via :class:`~repro.federated.RunConfig` (``codec=``,
``transport="wire"``, ``streaming_aggregation=True``).
"""

from .aggregator import StreamingAggregator, finalize_weighted_sum, fold_weighted_state
from .channel import Channel, ChannelStats, TransferRecord
from .scratch import ScratchPool, thread_scratch
from .codecs import (
    CastCodec,
    Codec,
    GroupQuantCodec,
    SparseDeltaCodec,
    TopKDeltaCodec,
    TopKQuantCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from .serialization import (
    KIND_STATE_DICT,
    KIND_UPDATE,
    MAGIC,
    PayloadCorruptedError,
    decode_state_dict,
    decode_update,
    encode_state_dict,
    encode_update,
    frame_codec_name,
)
from .stream import (
    MAX_FRAME_BYTES,
    FrameStream,
    TruncatedFrameError,
    read_frame,
    write_frame,
)

__all__ = [
    "Codec",
    "CastCodec",
    "GroupQuantCodec",
    "SparseDeltaCodec",
    "TopKDeltaCodec",
    "TopKQuantCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "MAGIC",
    "KIND_UPDATE",
    "KIND_STATE_DICT",
    "PayloadCorruptedError",
    "encode_update",
    "decode_update",
    "encode_state_dict",
    "decode_state_dict",
    "frame_codec_name",
    "FrameStream",
    "TruncatedFrameError",
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
    "StreamingAggregator",
    "fold_weighted_state",
    "finalize_weighted_sum",
    "ScratchPool",
    "thread_scratch",
    "Channel",
    "ChannelStats",
    "TransferRecord",
]
