"""Reusable decode/fold scratch buffers for the aggregation hot path.

Decoding one wire frame used to allocate every tensor it reconstructed, and
every weighted fold allocated a ``weight * value`` term — per *update*, on a
path that runs hundreds of times per round.  A :class:`ScratchPool` removes
both allocations: decode checks arrays out of a per-``(shape, dtype)`` free
list (:meth:`take`), the fold multiplies into a persistent per-shape float64
term buffer (:meth:`term`), and once an update has been folded the checked-out
arrays go back on the free list (:meth:`recycle`) for the next frame.  After
one warm-up update per distinct tensor geometry, steady-state decode-and-fold
performs zero array allocations — :attr:`allocations` counts the warm-up
misses so benchmarks (and CI) can assert exactly that.

Pools are deliberately dumb about ownership: arrays handed out by
:meth:`take` are *volatile* — valid only until the next :meth:`recycle` —
so they must never be retained (buffering strategies like ``trimmed_mean``
keep references to decoded states, which is why
:class:`~repro.comm.aggregator.StreamingAggregator` only engages scratch
decode for ``foldable`` strategies).  :meth:`term` buffers are separate
storage from :meth:`take` arrays, so a fold can multiply into a term while
reading a scratch-decoded value of the same shape.

Pools are not thread-safe; use :func:`thread_scratch` for an ambient
per-thread pool (the process-pool fold workers and the in-process service
server run on different threads of the same process, so a module-global pool
would race).  Pickling a pool ships an *empty* pool — buffers are pure cache,
and a pool riding a pickled server/tuner snapshot must not bloat the payload.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

_PoolKey = Tuple[Tuple[int, ...], np.dtype]


class ScratchPool:
    """Free lists of decode arrays plus persistent fold-term buffers."""

    def __init__(self) -> None:
        self._free: Dict[_PoolKey, List[np.ndarray]] = {}
        #: (free-list, array) pairs checked out since the last recycle — the
        #: list reference rides along so recycle never re-hashes the key
        self._taken: List[Tuple[List[np.ndarray], np.ndarray]] = []
        self._terms: Dict[Tuple[int, ...], np.ndarray] = {}
        #: lifetime count of fresh array allocations (take misses + new term
        #: shapes); flat across a steady-state round = allocation-free decode
        self.allocations = 0

    def take(self, shape, dtype) -> np.ndarray:
        """Check out one uninitialised ``(shape, dtype)`` array until
        :meth:`recycle`.

        The contents are whatever the previous user left — callers overwrite
        every element (decode targets always do).
        """
        # np.dtype objects hash and compare by value, so the dtype itself is
        # the cheapest stable key component (no .str string build per take);
        # the hot caller (frame decode) always passes a tuple + np.dtype, so
        # normalization is a type check, not a conversion.
        if type(shape) is not tuple:
            shape = tuple(shape)
        if not isinstance(dtype, np.dtype):
            dtype = np.dtype(dtype)
        key = (shape, dtype)
        free = self._free.get(key)
        if free is None:
            free = self._free[key] = []
        if free:
            array = free.pop()
        else:
            array = np.empty(key[0], dtype=key[1])
            self.allocations += 1
        self._taken.append((free, array))
        return array

    def recycle(self) -> None:
        """Return every checked-out array to its free list.

        Call once the arrays' contents have been consumed (folded into an
        accumulator); anything still referencing them now sees volatile
        storage.
        """
        for free, array in self._taken:
            free.append(array)
        self._taken.clear()

    def term(self, shape) -> np.ndarray:
        """The persistent float64 fold-term buffer for ``shape``.

        One buffer per shape, reused across folds and rounds — never recycled
        and never handed out by :meth:`take`, so it cannot alias a decode
        array.  Only one term per shape is live at a time, which is exactly
        the fold's access pattern (multiply into it, add it, move on).
        """
        key = shape if type(shape) is tuple else tuple(shape)
        buffer = self._terms.get(key)
        if buffer is None:
            buffer = self._terms[key] = np.empty(key, dtype=np.float64)
            self.allocations += 1
        return buffer

    def __reduce__(self):
        # Scratch is pure cache: crossing a pickle boundary (server snapshots,
        # tuner payloads to training workers) ships an empty pool.
        return (type(self), ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScratchPool(free={sum(map(len, self._free.values()))}, "
                f"taken={len(self._taken)}, terms={len(self._terms)}, "
                f"allocations={self.allocations})")


_LOCAL = threading.local()


def thread_scratch() -> ScratchPool:
    """This thread's ambient :class:`ScratchPool` (created on first use).

    The default pool of the worker-side fold functions
    (:func:`repro.runtime.executor._fold_shard_frames` and friends): each
    process-pool worker is a single-threaded process, so its pool — and the
    warm buffers in it — persists across every round the worker folds.
    """
    pool = getattr(_LOCAL, "pool", None)
    if pool is None:
        pool = _LOCAL.pool = ScratchPool()
    return pool
