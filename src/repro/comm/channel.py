"""Metered transport channel between a participant and the server.

A :class:`Channel` charges each payload for real airtime — latency plus
``len(payload)`` bytes over the participant's link bandwidth (from its
:class:`~repro.systems.cost_model.CostModel`) — and applies loss/corruption
faults drawn from a :class:`~repro.runtime.faults.ChannelFaultInjector` (any
object with compatible ``outcome``/``corrupt`` hooks works).  Every transfer
is recorded into :class:`ChannelStats`, which is where *measured* payload
bytes come from; the analytic
:class:`~repro.federated.communication.ExchangePlan` estimate stays available
as a cross-check.

Measured airtime is reported (``RoundResult.wire_seconds``) alongside — not
instead of — the analytic communication seconds the methods charge into their
cost breakdowns: the simulated clock stays on the analytic estimates, so the
wire measurements can disagree with them without double-charging time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of one payload crossing the channel."""

    payload: Optional[bytes]
    nbytes: int
    seconds: float
    direction: str = "up"
    lost: bool = False
    corrupted: bool = False

    @property
    def delivered(self) -> bool:
        return not self.lost


@dataclass
class ChannelStats:
    """Accumulated wire measurements (per channel, round or run)."""

    payloads: int = 0
    bytes_up: float = 0.0
    bytes_down: float = 0.0
    seconds: float = 0.0
    lost: int = 0
    corrupted: int = 0
    decode_failures: int = 0

    @property
    def total_bytes(self) -> float:
        return self.bytes_up + self.bytes_down

    def record(self, transfer: TransferRecord) -> None:
        self.payloads += 1
        if transfer.direction == "down":
            self.bytes_down += transfer.nbytes
        else:
            self.bytes_up += transfer.nbytes
        self.seconds += transfer.seconds
        if transfer.lost:
            self.lost += 1
        if transfer.corrupted:
            self.corrupted += 1

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        self.payloads += other.payloads
        self.bytes_up += other.bytes_up
        self.bytes_down += other.bytes_down
        self.seconds += other.seconds
        self.lost += other.lost
        self.corrupted += other.corrupted
        self.decode_failures += other.decode_failures
        return self


class Channel:
    """One participant's up/down link to the parameter server."""

    def __init__(self, participant_id: int = 0, cost_model=None, faults=None,
                 latency_s: float = 0.0) -> None:
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        self.participant_id = participant_id
        self.cost_model = cost_model
        self.faults = faults
        self.latency_s = latency_s
        self.stats = ChannelStats()
        self._sequence = 0

    @property
    def bandwidth_bytes_per_s(self) -> Optional[float]:
        if self.cost_model is None:
            return None
        return self.cost_model.device.network_bytes_per_s

    def transfer_seconds(self, nbytes: int) -> float:
        """Airtime for ``nbytes``: latency plus serialization at link speed."""
        bandwidth = self.bandwidth_bytes_per_s
        if bandwidth is None:
            return self.latency_s
        return self.latency_s + nbytes / bandwidth

    def export_state(self) -> dict:
        """Picklable resume state: the payload sequence position and stats.

        The sequence number keys the channel fault stream, so restoring it
        resumes loss/corruption draws exactly where an interrupted run left
        them (used by :mod:`repro.runtime.checkpoint`).  Stats are copied on
        both export and import, so a snapshot is a true point-in-time capture
        and two channels never alias one counter object.
        """
        return {"sequence": self._sequence, "stats": replace(self.stats)}

    def import_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot."""
        self._sequence = int(state["sequence"])
        self.stats = replace(state["stats"])

    def send(self, payload: bytes, direction: str = "up") -> TransferRecord:
        """Transfer one framed payload, applying any configured faults.

        A lost payload still consumed its airtime (the sender transmitted it);
        a corrupted one arrives with flipped bytes for the decoder's checksum
        to catch.
        """
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        sequence = self._sequence
        self._sequence += 1
        nbytes = len(payload)
        seconds = self.transfer_seconds(nbytes)
        lost = corrupted = False
        delivered: Optional[bytes] = payload
        if self.faults is not None:
            outcome = self.faults.outcome(sequence, self.participant_id)
            if outcome.lost:
                lost, delivered = True, None
            elif outcome.corrupted:
                corrupted = True
                delivered = self.faults.corrupt(payload, sequence, self.participant_id)
        record = TransferRecord(payload=delivered, nbytes=nbytes, seconds=seconds,
                                direction=direction, lost=lost, corrupted=corrupted)
        self.stats.record(record)
        return record
