"""Pluggable wire codecs: how one tensor becomes bytes on the wire.

A :class:`Codec` turns a numpy array into one or more byte *sections* (and
back).  Sections are codec-specific — a cast codec ships one section of raw
little-endian values, a quantizing codec ships packed integer codes plus
per-row scales, the top-k codec ships indices plus delta values — and the
framing layer (:mod:`repro.comm.serialization`) wraps them with shapes,
dtypes and a checksum so the receiver can reconstruct the tensor without any
out-of-band knowledge beyond, for delta codecs, the shared reference state.

Codecs are stateless and registered by name; look one up with
:func:`get_codec` (``"topk:<density>"`` parameterises the sparsifier inline).
Every codec also reports an analytic :meth:`~Codec.wire_bytes_per_param` so
the historical :class:`~repro.federated.communication.ExchangePlan` estimates
can be cross-checked against measured payload sizes.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantization import PACKABLE_BITS, pack_int_codes, quantize_array, unpack_int_codes

#: section dtypes are fixed little-endian so frames are portable
_SCALE_DTYPE = "<f4"
_INDEX_DTYPE = "<u4"
_NARROW_INDEX_DTYPE = "<u2"
_VALUE_DTYPE = "<f8"

#: largest flattened tensor whose sparse indices fit the narrow u2 width
_NARROW_INDEX_MAX = np.iinfo(np.uint16).max


def _index_dtype_for(size: int) -> np.dtype:
    """Narrowest index dtype that addresses a ``size``-element flat tensor."""
    return np.dtype(_NARROW_INDEX_DTYPE if size <= _NARROW_INDEX_MAX
                    else _INDEX_DTYPE)


def _deliver(values: np.ndarray, shape: Tuple[int, ...], dtype: np.dtype,
             out: Optional[np.ndarray]) -> np.ndarray:
    """Reshape-and-cast ``values`` into ``out``, or a fresh array if ``None``.

    The scratch path (``np.copyto`` with ``casting="unsafe"``) runs the same
    cast kernels as ``astype``, so both paths are bit-identical; ``out`` must
    already have the declared shape/dtype (decode scratch is keyed on them).
    """
    if out is None:
        return values.reshape(shape).astype(dtype)
    if out.shape != tuple(shape) or out.dtype != dtype:
        raise ValueError(
            f"decode scratch of shape {out.shape}/{out.dtype} cannot hold a "
            f"{shape}/{np.dtype(dtype)} tensor")
    np.copyto(out, values.reshape(shape), casting="unsafe")
    return out


def _delta_workspace(reference: np.ndarray, shape: Tuple[int, ...],
                     out: Optional[np.ndarray]) -> Tuple[np.ndarray, bool]:
    """A flat float64 copy of ``reference`` for delta codecs to scatter into.

    When ``out`` is a float64 array of the right shape the copy lands directly
    in it (``(out-as-flat, True)``) and the decode is allocation-free;
    otherwise a fresh workspace is returned (``(flat, False)``) and the caller
    delivers it through :func:`_deliver`.
    """
    flat_ref = np.asarray(reference, dtype=np.float64).reshape(-1)
    if (out is not None and out.dtype == np.float64
            and tuple(out.shape) == tuple(shape)):
        work = out.reshape(-1)
        np.copyto(work, flat_ref)
        return work, True
    return flat_ref.copy(), False


def _decode_sparse_indices(section: bytes, count: int, size: int) -> np.ndarray:
    """Read ``count`` sparse indices, accepting both u2 and u4 widths.

    The preferred width is the one :func:`_index_dtype_for` picks for
    ``size`` — but frames written before the narrow width existed carry u4
    indices on small tensors, so whichever width is consistent with the
    section length is accepted.
    """
    if count == 0:
        if section:
            raise PayloadCorruptedError("sparse index section should be empty")
        return np.empty(0, dtype=np.int64)
    for dtype in (_index_dtype_for(size), np.dtype(_INDEX_DTYPE),
                  np.dtype(_NARROW_INDEX_DTYPE)):
        if len(section) == count * dtype.itemsize:
            indices = np.frombuffer(section, dtype=dtype)
            if int(indices.max()) >= size:
                raise PayloadCorruptedError("sparse index outside the declared tensor")
            return indices.astype(np.int64)
    raise PayloadCorruptedError("sparse index section length matches no index width")


class PayloadCorruptedError(ValueError):
    """A wire payload failed its checksum or is structurally inconsistent.

    Raised by the framing layer on CRC mismatch and by codecs when a frame's
    declared geometry disagrees with its section contents.  Caller mistakes —
    a missing or wrong-shaped delta reference — stay plain :class:`ValueError`
    so they surface as bugs instead of being dropped as line noise.
    """


class Codec(abc.ABC):
    """One wire encoding for a single tensor."""

    #: registry tag (also written into every frame)
    name: str = "base"
    #: True when decode reproduces the input bit-for-bit (given a wide-enough
    #: source dtype); False for lossy (bounded-error) codecs
    exact: bool = False
    #: True when encode/decode need the shared reference tensor (delta codecs)
    needs_reference: bool = False

    #: set by codecs whose decode is exactly "``np.frombuffer`` the single
    #: section at this dtype, reshape, cast" — the frame decoder inlines that
    #: walk (the fp64 fold hot path) without a per-tensor ``decode_array``
    #: dispatch.  ``None`` (the default) means decode through
    #: :meth:`decode_array`.
    cast_wire_dtype: Optional[np.dtype] = None

    @abc.abstractmethod
    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        """Encode ``array`` into this codec's byte sections."""

    @abc.abstractmethod
    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        """Reconstruct a tensor of ``shape``/``dtype`` from byte sections.

        Sections may be any bytes-like buffers (``memoryview`` sections of a
        zero-copy frame included).  ``out``, when given, must be a
        caller-owned array of exactly the declared shape/dtype; the codec
        decodes into it and returns it, bit-identical to the allocating path
        (the scratch fast path — see :mod:`repro.comm.scratch`).
        """

    @abc.abstractmethod
    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        """Analytic payload bytes per parameter (excluding frame headers).

        ``group_size`` is the number of parameters sharing one scale (for
        group/row-quantized codecs); codecs without scales ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _check_reference(array_shape: Tuple[int, ...],
                     reference: Optional[np.ndarray]) -> np.ndarray:
    if reference is None:
        raise ValueError("this codec requires the shared reference tensor")
    reference = np.asarray(reference)
    if tuple(reference.shape) != tuple(array_shape):
        raise ValueError(
            f"reference shape {reference.shape} does not match tensor shape {array_shape}")
    return reference


class CastCodec(Codec):
    """Cast to a fixed floating dtype and ship the raw values.

    ``fp64`` is lossless for every float source; ``fp32``/``fp16`` are exact
    for sources already representable at that width and bounded-error casts
    otherwise.
    """

    def __init__(self, name: str, wire_dtype: str) -> None:
        self.name = name
        self.wire_dtype = np.dtype(wire_dtype)
        self.exact = self.wire_dtype.itemsize >= 8
        # decode is a pure frombuffer-reshape-cast: the frame decoder may
        # inline it (bit-identical to decode_array by construction)
        self.cast_wire_dtype = self.wire_dtype

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        values = np.ascontiguousarray(np.asarray(array), dtype=self.wire_dtype)
        return [values.tobytes()]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        if len(sections) != 1:
            raise PayloadCorruptedError("cast codec expects exactly one section")
        values = np.frombuffer(sections[0], dtype=self.wire_dtype)
        if values.size != math.prod(shape):
            raise PayloadCorruptedError("payload size does not match the declared shape")
        return _deliver(values, shape, dtype, out)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        return float(self.wire_dtype.itemsize)


class GroupQuantCodec(Codec):
    """Symmetric row-quantized integers plus float32 scales.

    Reuses :func:`repro.quantization.quantize_array` (one scale per output
    row) and packs the integer codes at ``bits`` per value; decode multiplies
    back and restores the source dtype.  The reconstruction error is bounded
    by half a quantization step per element.
    """

    def __init__(self, bits: int) -> None:
        if bits not in (2, 4, 8):
            raise ValueError("group-quantized wire codecs support 2, 4 or 8 bits")
        self.bits = bits
        self.name = f"int{bits}"

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        if array.size == 0:
            return [b"", b""]
        quantized = quantize_array(array, self.bits)
        codes = pack_int_codes(quantized.codes, self.bits)
        scales = np.ascontiguousarray(quantized.scales, dtype=_SCALE_DTYPE).tobytes()
        return [codes, scales]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        if len(sections) != 2:
            raise PayloadCorruptedError("quantized codec expects code + scale sections")
        packed, scale_bytes = sections
        size = math.prod(shape)
        if size == 0:
            return _deliver(np.zeros(size), shape, dtype, out)
        try:
            codes = unpack_int_codes(packed, self.bits, size)
        except ValueError as exc:
            raise PayloadCorruptedError(str(exc)) from exc
        scales = np.frombuffer(scale_bytes, dtype=_SCALE_DTYPE).astype(np.float64)
        rows = shape[0] if len(shape) > 1 else 1
        if scales.size != rows:
            raise PayloadCorruptedError("scale count does not match the declared row count")
        values = codes.reshape(rows, -1) * scales[:, None]
        return _deliver(values, shape, dtype, out)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        per_code = self.bits / 8.0
        if group_size is None:
            return per_code
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        return per_code + np.dtype(_SCALE_DTYPE).itemsize / float(group_size)


class TopKDeltaCodec(Codec):
    """Sparsified delta-vs-reference encoding.

    Ships only the ``density`` fraction of entries where the tensor moved
    farthest from the shared reference (the global expert state the client
    downloaded); the receiver adds those deltas back onto its own copy of the
    reference.  Reconstruction error is bounded by the norm of the dropped
    deltas — zero at ``density=1`` up to float addition round-off.
    """

    needs_reference = True

    def __init__(self, density: float = 0.1) -> None:
        if not 0.0 < density <= 1.0:
            raise ValueError("topk density must be in (0, 1]")
        self.density = density
        self.name = "topk" if density == 0.1 else f"topk:{density:g}"

    def _select(self, array: np.ndarray,
                reference: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        """Top-k nonzero deltas vs the reference: (indices, values, flat size).

        Exact zeros are dropped from the selection — they carry no information
        (adding zero is a no-op), so an all-zero delta encodes to empty
        sections instead of shipping ``k`` zeros.
        """
        delta = (np.asarray(array, dtype=np.float64)
                 - np.asarray(reference, dtype=np.float64))
        flat = delta.reshape(-1)
        if flat.size == 0:
            return np.empty(0, dtype=np.int64), flat, 0
        k = max(1, int(math.ceil(self.density * flat.size)))
        if k >= flat.size:
            indices = np.arange(flat.size, dtype=np.int64)
        else:
            indices = np.sort(np.argpartition(np.abs(flat), -k)[-k:])
        values = flat[indices]
        nonzero = values != 0.0
        return indices[nonzero], values[nonzero], flat.size

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        reference = _check_reference(array.shape, reference)
        indices, values, size = self._select(array, reference)
        return [
            np.ascontiguousarray(indices, dtype=_index_dtype_for(size)).tobytes(),
            np.ascontiguousarray(values, dtype=_VALUE_DTYPE).tobytes(),
        ]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        reference = _check_reference(shape, reference)
        if len(sections) != 2:
            raise PayloadCorruptedError("top-k codec expects index + value sections")
        value_width = np.dtype(_VALUE_DTYPE).itemsize
        if len(sections[1]) % value_width:
            raise PayloadCorruptedError("top-k value section is not whole values")
        values = np.frombuffer(sections[1], dtype=_VALUE_DTYPE)
        work, direct = _delta_workspace(reference, shape, out)
        indices = _decode_sparse_indices(sections[0], values.size, work.size)
        work[indices] += values
        if direct:
            return out
        return _deliver(work, shape, dtype, out)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        # conservative wide-index estimate: small tensors ship u2 indices and
        # come in under this, which keeps the analytic plan an upper bound
        per_entry = np.dtype(_INDEX_DTYPE).itemsize + np.dtype(_VALUE_DTYPE).itemsize
        return self.density * per_entry


class TopKQuantCodec(TopKDeltaCodec):
    """Composed sparsify + quantize: top-k deltas shipped as packed ints.

    ``topk:<density>:int<bits>`` keeps the top-k selection of
    :class:`TopKDeltaCodec` but bit-packs the surviving values with the same
    :func:`repro.quantization.pack_int_codes` machinery the ``int<bits>``
    codecs use (one float32 scale for the whole selected-value vector) instead
    of shipping raw ``<f8``.  Per selected entry the wire cost drops from
    12 bytes to ``index + bits/8`` — e.g. 2.5 bytes at int4 on u2-indexed
    tensors.  Reconstruction error adds half a quantization step on the kept
    deltas to the dropped-delta mass.
    """

    needs_reference = True

    def __init__(self, density: float, bits: int) -> None:
        super().__init__(density=density)
        if bits not in PACKABLE_BITS:
            raise ValueError(
                f"topk-quantized codecs support {PACKABLE_BITS} bit codes")
        self.bits = bits
        self.name = f"topk:{density:g}:int{bits}"

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        reference = _check_reference(array.shape, reference)
        indices, values, size = self._select(array, reference)
        if values.size == 0:
            return [b"", b"", b""]
        quantized = quantize_array(values, self.bits)
        return [
            np.ascontiguousarray(indices, dtype=_index_dtype_for(size)).tobytes(),
            pack_int_codes(quantized.codes, self.bits),
            np.ascontiguousarray(quantized.scales, dtype=_SCALE_DTYPE).tobytes(),
        ]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        reference = _check_reference(shape, reference)
        if len(sections) != 3:
            raise PayloadCorruptedError(
                "topk-quantized codec expects index + code + scale sections")
        index_section, code_section, scale_section = sections
        work, direct = _delta_workspace(reference, shape, out)
        if not index_section and not code_section and not scale_section:
            return out if direct else _deliver(work, shape, dtype, out)
        scales = np.frombuffer(scale_section, dtype=_SCALE_DTYPE).astype(np.float64)
        if scales.size != 1:
            raise PayloadCorruptedError(
                "topk-quantized codec expects exactly one scale")
        # the index width determines k: try the width the encoder would pick
        # for this tensor first, then the other, cross-checked against the
        # packed-code section length
        k = None
        preferred = _index_dtype_for(work.size).itemsize
        for width in (preferred, 6 - preferred):  # the other of {2, 4}
            candidate, remainder = divmod(len(index_section), width)
            if remainder == 0 and len(code_section) == -(-candidate * self.bits // 8):
                k = candidate
                break
        if k is None or k == 0:
            raise PayloadCorruptedError(
                "topk-quantized index and code sections disagree in length")
        indices = _decode_sparse_indices(index_section, k, work.size)
        try:
            codes = unpack_int_codes(code_section, self.bits, k)
        except ValueError as exc:
            raise PayloadCorruptedError(str(exc)) from exc
        work[indices] += codes * scales[0]
        return out if direct else _deliver(work, shape, dtype, out)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        """Analytic bytes/param: u2 indices + packed codes (+ the scale).

        Indexes are priced at the narrow u2 width every preset tensor
        (<= 65535 elements) actually uses; ``group_size`` — params sharing one
        scale, i.e. the flattened tensor size for this one-scale-per-tensor
        codec — adds the float32 scale when given.
        """
        per_entry = np.dtype(_NARROW_INDEX_DTYPE).itemsize + self.bits / 8.0
        per_param = self.density * per_entry
        if group_size is not None:
            if group_size <= 0:
                raise ValueError("group_size must be positive")
            per_param += np.dtype(_SCALE_DTYPE).itemsize / float(group_size)
        return per_param


class SparseDeltaCodec(Codec):
    """Exact sparse delta vs a reference: changed entries shipped verbatim.

    Unlike :class:`TopKDeltaCodec` (lossy: top-k *differences* added back)
    this ships the indices of every entry where the tensor differs from the
    reference together with the raw new ``<f8`` values, and decode *assigns*
    rather than adds — so the round trip is bit-exact for float64 and float32
    sources regardless of how sparse the change set is.  Used by delta model
    checkpoints, where the previous snapshot is the reference and only the
    experts touched since then moved.
    """

    name = "sparse-delta"
    exact = True
    needs_reference = True

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        reference = _check_reference(array.shape, reference)
        flat = np.asarray(array, dtype=np.float64).reshape(-1)
        ref_flat = np.asarray(reference, dtype=np.float64).reshape(-1)
        indices = np.flatnonzero(flat != ref_flat)
        return [
            np.ascontiguousarray(indices, dtype=_index_dtype_for(flat.size)).tobytes(),
            np.ascontiguousarray(flat[indices], dtype=_VALUE_DTYPE).tobytes(),
        ]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        reference = _check_reference(shape, reference)
        if len(sections) != 2:
            raise PayloadCorruptedError(
                "sparse-delta codec expects index + value sections")
        value_width = np.dtype(_VALUE_DTYPE).itemsize
        if len(sections[1]) % value_width:
            raise PayloadCorruptedError("sparse-delta value section is not whole values")
        values = np.frombuffer(sections[1], dtype=_VALUE_DTYPE)
        work, direct = _delta_workspace(reference, shape, out)
        indices = _decode_sparse_indices(sections[0], values.size, work.size)
        work[indices] = values
        if direct:
            return out
        return _deliver(work, shape, dtype, out)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        # worst case (every entry changed): index + raw value per param
        return float(np.dtype(_NARROW_INDEX_DTYPE).itemsize
                     + np.dtype(_VALUE_DTYPE).itemsize)


# --------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its name (later registrations win)."""
    _REGISTRY[codec.name] = codec
    return codec


def available_codecs() -> List[str]:
    return sorted(_REGISTRY)


def get_codec(name: str) -> Codec:
    """Look up a codec by tag.

    ``"topk:<density>"`` builds a parameterised sparsifier inline and
    ``"topk:<density>:int<bits>"`` the composed sparsify+quantize codec.
    """
    codec = _REGISTRY.get(name)
    if codec is not None:
        return codec
    if name.startswith("topk:"):
        parts = name.split(":")
        try:
            density = float(parts[1])
            bits = (int(parts[2][3:])
                    if len(parts) == 3 and parts[2].startswith("int") else None)
        except ValueError:
            raise KeyError(f"malformed topk codec tag {name!r}") from None
        if len(parts) == 2:
            return register_codec(TopKDeltaCodec(density=density))
        if len(parts) == 3 and bits is not None:
            return register_codec(TopKQuantCodec(density=density, bits=bits))
        raise KeyError(f"malformed topk codec tag {name!r}")
    raise KeyError(f"unknown codec {name!r}; available: {available_codecs()}")


register_codec(CastCodec("fp64", "<f8"))
register_codec(CastCodec("fp32", "<f4"))
register_codec(CastCodec("fp16", "<f2"))
register_codec(GroupQuantCodec(bits=8))
register_codec(GroupQuantCodec(bits=4))
register_codec(GroupQuantCodec(bits=2))
register_codec(TopKDeltaCodec(density=0.1))
register_codec(SparseDeltaCodec())
