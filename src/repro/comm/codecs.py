"""Pluggable wire codecs: how one tensor becomes bytes on the wire.

A :class:`Codec` turns a numpy array into one or more byte *sections* (and
back).  Sections are codec-specific — a cast codec ships one section of raw
little-endian values, a quantizing codec ships packed integer codes plus
per-row scales, the top-k codec ships indices plus delta values — and the
framing layer (:mod:`repro.comm.serialization`) wraps them with shapes,
dtypes and a checksum so the receiver can reconstruct the tensor without any
out-of-band knowledge beyond, for delta codecs, the shared reference state.

Codecs are stateless and registered by name; look one up with
:func:`get_codec` (``"topk:<density>"`` parameterises the sparsifier inline).
Every codec also reports an analytic :meth:`~Codec.wire_bytes_per_param` so
the historical :class:`~repro.federated.communication.ExchangePlan` estimates
can be cross-checked against measured payload sizes.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantization import pack_int_codes, quantize_array, unpack_int_codes

#: section dtypes are fixed little-endian so frames are portable
_SCALE_DTYPE = "<f4"
_INDEX_DTYPE = "<u4"
_VALUE_DTYPE = "<f8"


class PayloadCorruptedError(ValueError):
    """A wire payload failed its checksum or is structurally inconsistent.

    Raised by the framing layer on CRC mismatch and by codecs when a frame's
    declared geometry disagrees with its section contents.  Caller mistakes —
    a missing or wrong-shaped delta reference — stay plain :class:`ValueError`
    so they surface as bugs instead of being dropped as line noise.
    """


class Codec(abc.ABC):
    """One wire encoding for a single tensor."""

    #: registry tag (also written into every frame)
    name: str = "base"
    #: True when decode reproduces the input bit-for-bit (given a wide-enough
    #: source dtype); False for lossy (bounded-error) codecs
    exact: bool = False
    #: True when encode/decode need the shared reference tensor (delta codecs)
    needs_reference: bool = False

    @abc.abstractmethod
    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        """Encode ``array`` into this codec's byte sections."""

    @abc.abstractmethod
    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None) -> np.ndarray:
        """Reconstruct a tensor of ``shape``/``dtype`` from byte sections."""

    @abc.abstractmethod
    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        """Analytic payload bytes per parameter (excluding frame headers).

        ``group_size`` is the number of parameters sharing one scale (for
        group/row-quantized codecs); codecs without scales ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _check_reference(array_shape: Tuple[int, ...],
                     reference: Optional[np.ndarray]) -> np.ndarray:
    if reference is None:
        raise ValueError("this codec requires the shared reference tensor")
    reference = np.asarray(reference)
    if tuple(reference.shape) != tuple(array_shape):
        raise ValueError(
            f"reference shape {reference.shape} does not match tensor shape {array_shape}")
    return reference


class CastCodec(Codec):
    """Cast to a fixed floating dtype and ship the raw values.

    ``fp64`` is lossless for every float source; ``fp32``/``fp16`` are exact
    for sources already representable at that width and bounded-error casts
    otherwise.
    """

    def __init__(self, name: str, wire_dtype: str) -> None:
        self.name = name
        self.wire_dtype = np.dtype(wire_dtype)
        self.exact = self.wire_dtype.itemsize >= 8

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        values = np.ascontiguousarray(np.asarray(array), dtype=self.wire_dtype)
        return [values.tobytes()]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None) -> np.ndarray:
        if len(sections) != 1:
            raise PayloadCorruptedError("cast codec expects exactly one section")
        values = np.frombuffer(sections[0], dtype=self.wire_dtype)
        if values.size != math.prod(shape):
            raise PayloadCorruptedError("payload size does not match the declared shape")
        return values.reshape(shape).astype(dtype)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        return float(self.wire_dtype.itemsize)


class GroupQuantCodec(Codec):
    """Symmetric row-quantized integers plus float32 scales.

    Reuses :func:`repro.quantization.quantize_array` (one scale per output
    row) and packs the integer codes at ``bits`` per value; decode multiplies
    back and restores the source dtype.  The reconstruction error is bounded
    by half a quantization step per element.
    """

    def __init__(self, bits: int) -> None:
        if bits not in (2, 4, 8):
            raise ValueError("group-quantized wire codecs support 2, 4 or 8 bits")
        self.bits = bits
        self.name = f"int{bits}"

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        if array.size == 0:
            return [b"", b""]
        quantized = quantize_array(array, self.bits)
        codes = pack_int_codes(quantized.codes, self.bits)
        scales = np.ascontiguousarray(quantized.scales, dtype=_SCALE_DTYPE).tobytes()
        return [codes, scales]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None) -> np.ndarray:
        if len(sections) != 2:
            raise PayloadCorruptedError("quantized codec expects code + scale sections")
        packed, scale_bytes = sections
        size = math.prod(shape)
        if size == 0:
            return np.zeros(shape, dtype=dtype)
        try:
            codes = unpack_int_codes(packed, self.bits, size)
        except ValueError as exc:
            raise PayloadCorruptedError(str(exc)) from exc
        scales = np.frombuffer(scale_bytes, dtype=_SCALE_DTYPE).astype(np.float64)
        rows = shape[0] if len(shape) > 1 else 1
        if scales.size != rows:
            raise PayloadCorruptedError("scale count does not match the declared row count")
        values = codes.reshape(rows, -1) * scales[:, None]
        return values.reshape(shape).astype(dtype)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        per_code = self.bits / 8.0
        if group_size is None:
            return per_code
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        return per_code + np.dtype(_SCALE_DTYPE).itemsize / float(group_size)


class TopKDeltaCodec(Codec):
    """Sparsified delta-vs-reference encoding.

    Ships only the ``density`` fraction of entries where the tensor moved
    farthest from the shared reference (the global expert state the client
    downloaded); the receiver adds those deltas back onto its own copy of the
    reference.  Reconstruction error is bounded by the norm of the dropped
    deltas — zero at ``density=1`` up to float addition round-off.
    """

    needs_reference = True

    def __init__(self, density: float = 0.1) -> None:
        if not 0.0 < density <= 1.0:
            raise ValueError("topk density must be in (0, 1]")
        self.density = density
        self.name = "topk" if density == 0.1 else f"topk:{density:g}"

    def encode_array(self, array: np.ndarray,
                     reference: Optional[np.ndarray] = None) -> List[bytes]:
        array = np.asarray(array)
        reference = _check_reference(array.shape, reference)
        delta = np.asarray(array, dtype=np.float64) - np.asarray(reference, dtype=np.float64)
        flat = delta.reshape(-1)
        if flat.size == 0:
            return [b"", b""]
        k = max(1, int(math.ceil(self.density * flat.size)))
        if k >= flat.size:
            indices = np.arange(flat.size, dtype=np.uint32)
        else:
            indices = np.sort(np.argpartition(np.abs(flat), -k)[-k:]).astype(np.uint32)
        values = flat[indices]
        return [
            np.ascontiguousarray(indices, dtype=_INDEX_DTYPE).tobytes(),
            np.ascontiguousarray(values, dtype=_VALUE_DTYPE).tobytes(),
        ]

    def decode_array(self, sections: Sequence[bytes], shape: Tuple[int, ...],
                     dtype: np.dtype,
                     reference: Optional[np.ndarray] = None) -> np.ndarray:
        reference = _check_reference(shape, reference)
        if len(sections) != 2:
            raise PayloadCorruptedError("top-k codec expects index + value sections")
        indices = np.frombuffer(sections[0], dtype=_INDEX_DTYPE)
        values = np.frombuffer(sections[1], dtype=_VALUE_DTYPE)
        if indices.size != values.size:
            raise PayloadCorruptedError("top-k index and value sections disagree in length")
        out = np.asarray(reference, dtype=np.float64).copy().reshape(-1)
        if indices.size and int(indices.max()) >= out.size:
            raise PayloadCorruptedError("top-k index outside the declared tensor")
        out[indices] += values
        return out.reshape(shape).astype(dtype)

    def wire_bytes_per_param(self, group_size: Optional[float] = None) -> float:
        per_entry = np.dtype(_INDEX_DTYPE).itemsize + np.dtype(_VALUE_DTYPE).itemsize
        return self.density * per_entry


# --------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its name (later registrations win)."""
    _REGISTRY[codec.name] = codec
    return codec


def available_codecs() -> List[str]:
    return sorted(_REGISTRY)


def get_codec(name: str) -> Codec:
    """Look up a codec by tag; ``"topk:<density>"`` builds a parameterised one."""
    codec = _REGISTRY.get(name)
    if codec is not None:
        return codec
    if name.startswith("topk:"):
        try:
            density = float(name.split(":", 1)[1])
        except ValueError:
            raise KeyError(f"malformed topk codec tag {name!r}") from None
        return register_codec(TopKDeltaCodec(density=density))
    raise KeyError(f"unknown codec {name!r}; available: {available_codecs()}")


register_codec(CastCodec("fp64", "<f8"))
register_codec(CastCodec("fp32", "<f4"))
register_codec(CastCodec("fp16", "<f2"))
register_codec(GroupQuantCodec(bits=8))
register_codec(GroupQuantCodec(bits=4))
register_codec(GroupQuantCodec(bits=2))
register_codec(TopKDeltaCodec(density=0.1))
