"""Byte-stream framing for the wire protocol over real sockets.

The serialization layer's ``RWP1`` frames are self-contained byte strings —
CRC-checked, but *not* self-delimiting on a byte stream: a TCP (or
``socketpair``) connection delivers an arbitrary re-chunking of whatever the
peer wrote, so a reader needs to know where one frame ends and the next
begins.  :class:`FrameStream` adds exactly that — a little-endian ``u32``
length prefix per frame — and owns the partial-read/partial-write loop both
sides of a connection need:

* **writes** loop ``sendall`` over prefix + payload, so a frame is either
  fully queued or the stream raises;
* **reads** accumulate ``recv`` chunks until the prefix and then the payload
  are complete, whatever boundaries the transport chose.  A clean peer close
  *between* frames reads as end-of-stream (``recv_frame() -> None``); a close
  *inside* a frame — a killed server, a dropped link — raises
  :class:`TruncatedFrameError`, which is a :class:`PayloadCorruptedError`
  (the half-frame is corrupt by construction, and callers drop it exactly as
  they drop a CRC failure) as well as a :class:`ConnectionError` (so
  reconnect/retry logic catches it alongside ``ECONNRESET``).

``close()`` is idempotent and safe to race with a concurrent reader: the
socket is shut down and closed once, and every later call is a no-op.

The asyncio twins :func:`read_frame`/:func:`write_frame` speak the same
prefix format over ``StreamReader``/``StreamWriter`` pairs — they are what
the :mod:`repro.service` accept loop uses, and interoperate byte-for-byte
with a blocking :class:`FrameStream` on the other end of the connection.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional

from .codecs import PayloadCorruptedError

#: frame length prefix: little-endian unsigned 32-bit, like every other
#: integer in the wire format
LENGTH_PREFIX = struct.Struct("<I")

#: refuse frames larger than this (a corrupt or misaligned prefix otherwise
#: reads as a multi-gigabyte allocation before anything fails)
MAX_FRAME_BYTES = 1 << 30


class TruncatedFrameError(PayloadCorruptedError, ConnectionError):
    """The stream ended (or the peer died) in the middle of a frame.

    Doubly classified on purpose: the partial frame is corrupt payload
    (callers must drop it, never fold it — :class:`PayloadCorruptedError`)
    *and* the connection is gone (retry/reconnect paths treat it like any
    other :class:`ConnectionError`).
    """


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length > max_frame_bytes:
        raise PayloadCorruptedError(
            f"stream frame declares {length} bytes, over the "
            f"{max_frame_bytes}-byte limit (corrupt or misaligned length "
            "prefix?)")


class FrameStream:
    """Length-prefixed frame transport over a connected stream socket.

    Wraps one blocking, connected ``socket.socket`` (TCP or one end of a
    ``socket.socketpair()``).  Not thread-safe: callers serialize access per
    stream, except for :meth:`close`, which may be called from any thread at
    any time.
    """

    def __init__(self, sock: socket.socket, *,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._sock: Optional[socket.socket] = sock
        self._max_frame_bytes = int(max_frame_bytes)
        #: reusable receive buffer: ``recv_into`` fills it in place, growing
        #: it to the largest frame seen, so steady-state receives neither
        #: allocate nor concatenate chunk copies
        self._recv_buffer = bytearray(LENGTH_PREFIX.size)
        #: cumulative traffic counters (prefix bytes included), feeding the
        #: ``repro_service_bytes_*`` metrics
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    # ------------------------------------------------------------------ state
    @property
    def closed(self) -> bool:
        return self._sock is None

    def settimeout(self, timeout: Optional[float]) -> None:
        """Per-operation socket timeout (``socket.timeout`` is an ``OSError``)."""
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket (idempotent, thread-safe)."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone — close() below still releases the fd
        sock.close()

    def _require_open(self) -> socket.socket:
        if self._sock is None:
            raise ConnectionError("frame stream is closed")
        return self._sock

    # ------------------------------------------------------------------- send
    def send_frame(self, payload: bytes) -> int:
        """Queue one complete frame; returns the bytes written (prefix incl.)."""
        sock = self._require_open()
        _check_length(len(payload), self._max_frame_bytes)
        data = LENGTH_PREFIX.pack(len(payload)) + payload
        sock.sendall(data)
        self.bytes_sent += len(data)
        self.frames_sent += 1
        return len(data)

    def send_frames(self, payloads) -> int:
        """Queue several frames in one ``sendall`` (one syscall, one segment
        train).  Returns total bytes written.

        A transport primitive for senders whose payloads are already encoded;
        note the fold client deliberately does *not* batch its window this
        way — pre-encoding a burst serializes all client-side encoding ahead
        of the server's ingest, which measures slower on shared-CPU hosts
        than encode-one-send-one.

        Each payload is length-checked *before* anything is queued, so an
        oversized frame raises with the stream's framing still intact (no
        partial batch ever hits the wire).
        """
        sock = self._require_open()
        payloads = list(payloads)
        for payload in payloads:
            _check_length(len(payload), self._max_frame_bytes)
        data = b"".join(LENGTH_PREFIX.pack(len(payload)) + payload
                        for payload in payloads)
        sock.sendall(data)
        self.bytes_sent += len(data)
        self.frames_sent += len(payloads)
        return len(data)

    # ------------------------------------------------------------------- recv
    def _recv_exactly(self, num_bytes: int, *, at_boundary: bool) -> Optional[memoryview]:
        """Read exactly ``num_bytes`` into the reusable buffer, across
        however many chunks arrive; returns a view of the filled region.

        ``at_boundary=True`` (reading a length prefix) turns a clean EOF
        before the first byte into ``None``; EOF anywhere else is a peer
        dying mid-frame and raises :class:`TruncatedFrameError`.  The view
        is valid only until the next receive on this stream.
        """
        sock = self._require_open()
        if len(self._recv_buffer) < num_bytes:
            self._recv_buffer = bytearray(num_bytes)
        view = memoryview(self._recv_buffer)[:num_bytes]
        received = 0
        while received < num_bytes:
            chunk = sock.recv_into(view[received:])
            if chunk == 0:
                if at_boundary and received == 0:
                    return None
                raise TruncatedFrameError(
                    f"stream ended mid-frame: wanted {num_bytes} bytes, got "
                    f"{received} before the peer closed")
            received += chunk
        self.bytes_received += received
        return view

    def recv_frame_view(self) -> Optional[memoryview]:
        """The next complete frame as a *view* of the stream's receive buffer.

        Zero-copy twin of :meth:`recv_frame`: the returned ``memoryview``
        (empty for an empty frame, ``None`` on clean end-of-stream) feeds the
        wire decoder directly — ``decode_update``/``decode_message`` accept
        any buffer — without ever materialising a ``bytes`` frame.  It is
        only valid until the next receive on this stream; callers that keep
        frames (round accumulators) must copy with ``bytes(view)``.
        """
        prefix = self._recv_exactly(LENGTH_PREFIX.size, at_boundary=True)
        if prefix is None:
            return None
        (length,) = LENGTH_PREFIX.unpack_from(prefix)
        _check_length(length, self._max_frame_bytes)
        # The prefix's four buffer bytes may be overwritten by the payload
        # read below — ``length`` is already extracted, nothing else aliases.
        frame = self._recv_exactly(length, at_boundary=False)
        self.frames_received += 1
        return frame

    def recv_frame(self) -> Optional[bytes]:
        """The next complete frame, or ``None`` on clean end-of-stream."""
        view = self.recv_frame_view()
        return None if view is None else bytes(view)


# ------------------------------------------------------------- asyncio twins
async def read_frame(reader: asyncio.StreamReader, *,
                     max_frame_bytes: int = MAX_FRAME_BYTES) -> Optional[bytes]:
    """Asyncio twin of :meth:`FrameStream.recv_frame` (same EOF semantics)."""
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise TruncatedFrameError(
            "stream ended inside a frame's length prefix") from error
    except ConnectionError as error:
        raise TruncatedFrameError(
            f"connection lost reading a frame prefix: {error}") from error
    (length,) = LENGTH_PREFIX.unpack(prefix)
    _check_length(length, max_frame_bytes)
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError) as error:
        raise TruncatedFrameError(
            f"stream ended mid-frame: wanted {length} payload bytes") from error


async def write_frame(writer: asyncio.StreamWriter, payload: bytes, *,
                      max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Asyncio twin of :meth:`FrameStream.send_frame`; drains before returning."""
    _check_length(len(payload), max_frame_bytes)
    data = LENGTH_PREFIX.pack(len(payload)) + payload
    writer.write(data)
    await writer.drain()
    return len(data)
