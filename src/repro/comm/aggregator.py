"""Constant-memory streaming aggregation of expert updates.

The buffered FedAvg path keeps every client's update alive until the round
closes — O(clients) server memory.  :class:`StreamingAggregator` instead folds
each update into a running weighted sum per expert key the moment it arrives,
so peak server memory is one update plus the running sums, independent of how
many clients contributed.

Bit-identity with the buffered path is guaranteed structurally:
:func:`repro.federated.aggregation.fedavg_states` is implemented on top of the
same :func:`fold_weighted_state` / :func:`finalize_weighted_sum` pair, folding
in the same arrival order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from .serialization import decode_update

ExpertKey = Tuple[int, int]


def fold_weighted_state(acc: Dict[str, np.ndarray], state: Dict[str, np.ndarray],
                        weight: float) -> None:
    """Fold ``weight * state`` into ``acc`` in place (float64 accumulators)."""
    if weight < 0:
        raise ValueError("aggregation weights must be non-negative")
    if acc and set(state) != set(acc):
        raise ValueError("cannot fold states with mismatched tensor names")
    for name, value in state.items():
        term = np.multiply(np.asarray(value), float(weight), dtype=np.float64)
        if name in acc:
            acc[name] += term
        else:
            acc[name] = term


def finalize_weighted_sum(acc: Dict[str, np.ndarray],
                          total_weight: float) -> Dict[str, np.ndarray]:
    """Divide the running sums by the total weight."""
    if total_weight <= 0:
        raise ValueError("cannot finalize an aggregation with non-positive total weight")
    return {name: value / total_weight for name, value in acc.items()}


class StreamingAggregator:
    """Folds expert updates one at a time into per-expert running sums.

    Unlike the buffered path, all-zero weights cannot fall back to a uniform
    average (the individual states are gone by finalize time); feeding only
    zero-weight updates for a key raises at :meth:`finalize`.
    """

    def __init__(self) -> None:
        self._sums: Dict[ExpertKey, Dict[str, np.ndarray]] = {}
        self._weights: Dict[ExpertKey, float] = {}
        self._counts: Dict[ExpertKey, int] = {}

    def __len__(self) -> int:
        return len(self._sums)

    @property
    def num_updates(self) -> int:
        return sum(self._counts.values())

    def contributions(self) -> Dict[ExpertKey, int]:
        """Updates folded so far, per expert key."""
        return dict(self._counts)

    # ------------------------------------------------------------------ folding
    def add_state(self, key: ExpertKey, state: Dict[str, np.ndarray],
                  weight: float) -> None:
        acc = self._sums.setdefault(key, {})
        fold_weighted_state(acc, state, weight)
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)
        self._counts[key] = self._counts.get(key, 0) + 1

    def add(self, update) -> None:
        """Fold one :class:`~repro.federated.aggregation.ExpertUpdate`."""
        self.add_state(update.key, update.state, update.weight)

    def add_updates(self, updates: Iterable) -> None:
        for update in updates:
            self.add(update)

    def add_payload(self, data: bytes,
                    reference: Optional[Dict[str, np.ndarray]] = None,
                    reference_lookup=None):
        """Decode one wire frame and fold it; returns the decoded update."""
        update = decode_update(data, reference=reference,
                               reference_lookup=reference_lookup)
        self.add(update)
        return update

    # --------------------------------------------------------------- finalizing
    def finalize(self) -> Dict[ExpertKey, Dict[str, np.ndarray]]:
        """Averaged state per expert key (leaves the aggregator intact)."""
        return {key: finalize_weighted_sum(acc, self._weights[key])
                for key, acc in self._sums.items()}

    def apply(self, model) -> Dict[ExpertKey, int]:
        """Write the averaged experts into ``model``; returns contributions."""
        for (layer, expert), averaged in self.finalize().items():
            model.load_expert_state(layer, expert, averaged)
        return self.contributions()
