"""Constant-memory streaming aggregation of expert updates.

The buffered FedAvg path keeps every client's update alive until the round
closes — O(clients) server memory.  :class:`StreamingAggregator` instead folds
each update into a per-expert accumulator the moment it arrives; under the
default FedAvg strategy the accumulator is a running weighted sum, so peak
server memory is one update plus the running sums, independent of how many
clients contributed.

Bit-identity with the buffered path is guaranteed structurally:
:func:`repro.federated.aggregation.fedavg_states` is implemented on top of the
same :func:`fold_weighted_state` / :func:`finalize_weighted_sum` pair, folding
in the same arrival order.

The aggregator is strategy-aware (:mod:`repro.federated.strategies`): pass a
strategy name or instance and every expert key folds through that strategy's
accumulator instead.  Order statistics (``trimmed_mean``, ``median``) buffer
their contributions per key — streaming then bounds memory per *expert*, not
per run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from .scratch import ScratchPool
from .serialization import _decode_update_parts, decode_update

ExpertKey = Tuple[int, int]


def fold_weighted_state(acc: Dict[str, np.ndarray], state: Dict[str, np.ndarray],
                        weight: float,
                        scratch: Optional[ScratchPool] = None) -> None:
    """Fold ``weight * state`` into ``acc`` in place (float64 accumulators).

    With a ``scratch`` pool the ``weight * value`` term is computed into the
    pool's persistent per-shape term buffer instead of a fresh allocation —
    same multiply loop (``dtype=float64`` forced either way), same add, so
    the running sums are bit-identical to the allocating fold.
    """
    weight = float(weight)
    if weight < 0:
        raise ValueError("aggregation weights must be non-negative")
    # keys() views compare set-wise in C — no per-fold set construction
    if acc and state.keys() != acc.keys():
        raise ValueError("cannot fold states with mismatched tensor names")
    term_of = scratch.term if scratch is not None else None
    for name, value in state.items():
        running = acc.get(name)
        if running is None:
            # the accumulator owns this array, so it cannot come from scratch
            acc[name] = np.multiply(value, weight, dtype=np.float64)
        elif term_of is None:
            running += np.multiply(value, weight, dtype=np.float64)
        else:
            shape = getattr(value, "shape", None)
            if shape is None:
                value = np.asarray(value)
                shape = value.shape
            term = term_of(shape)
            np.multiply(value, weight, out=term, dtype=np.float64,
                        casting="unsafe")
            np.add(running, term, out=running)


def finalize_weighted_sum(acc: Dict[str, np.ndarray],
                          total_weight: float) -> Dict[str, np.ndarray]:
    """Divide the running sums by the total weight."""
    if total_weight <= 0:
        raise ValueError("cannot finalize an aggregation with non-positive total weight")
    return {name: value / total_weight for name, value in acc.items()}


class StreamingAggregator:
    """Folds expert updates one at a time into per-expert accumulators.

    ``strategy`` selects the per-expert reduction
    (:mod:`repro.federated.strategies`); ``None`` is weighted FedAvg, whose
    fold is bit-identical to the historical implementation.  Unlike the
    buffered path, all-zero FedAvg weights cannot fall back to a uniform
    average (the individual states are gone by finalize time); feeding only
    zero-weight updates for a key raises at :meth:`finalize`.
    """

    def __init__(self, strategy=None,
                 scratch: Optional[ScratchPool] = None) -> None:
        # Late import: repro.federated.strategies imports the fold primitives
        # from this module at load time, so the dependency must stay one-way
        # at import time and resolve here at construction time.
        from ..federated.strategies import get_strategy

        self.strategy = get_strategy(strategy if strategy is not None else "fedavg")
        # Scratch only engages for foldable strategies: buffering accumulators
        # (trimmed_mean, median) retain references to the decoded states, and
        # a recycled scratch array under a retained reference is corruption.
        self._scratch = scratch if self.strategy.foldable else None
        self._accs: Dict[ExpertKey, object] = {}

    @property
    def uses_scratch(self) -> bool:
        """Whether this aggregator folds through a scratch pool.

        ``False`` for buffering strategies even when one was passed — callers
        deciding whether to scratch-decode payloads must check this, not the
        constructor argument.
        """
        return self._scratch is not None

    def __len__(self) -> int:
        return len(self._accs)

    @property
    def num_updates(self) -> int:
        return sum(acc.count for acc in self._accs.values())

    def contributions(self) -> Dict[ExpertKey, int]:
        """Updates folded so far, per expert key."""
        return {key: acc.count for key, acc in self._accs.items()}

    def total_weight(self, key: ExpertKey) -> float:
        """Sum of the (possibly discounted) weights folded for ``key``."""
        return self._accs[key].total_weight

    # ------------------------------------------------------------------ folding
    def add_state(self, key: ExpertKey, state: Dict[str, np.ndarray],
                  weight: float, staleness: int = 0) -> None:
        acc = self._accs.get(key)
        if acc is None:
            acc = self._accs[key] = self.strategy.make_accumulator()
            if self._scratch is not None:
                acc.scratch = self._scratch
        acc.add(state, weight, staleness)

    def add(self, update) -> None:
        """Fold one :class:`~repro.federated.aggregation.ExpertUpdate`."""
        self.add_state(update.key, update.state, update.weight,
                       getattr(update, "staleness", 0))

    def add_updates(self, updates: Iterable) -> None:
        for update in updates:
            self.add(update)

    def add_payload(self, data,
                    reference: Optional[Dict[str, np.ndarray]] = None,
                    reference_lookup=None):
        """Decode one wire frame and fold it; returns the decoded update.

        This is the fused decode-and-fold hot path: with a scratch pool (and
        a foldable strategy) the frame decodes into pool-owned arrays, folds,
        and the arrays are recycled for the next frame — zero allocations in
        steady state.  The *returned* update's state then references volatile
        scratch storage; it is a peek at what was folded, not a value to
        retain.
        """
        scratch = self._scratch
        update = decode_update(data, reference=reference,
                               reference_lookup=reference_lookup,
                               scratch=scratch)
        self.add(update)
        if scratch is not None:
            scratch.recycle()
        return update

    def fold_payload(self, data,
                     reference: Optional[Dict[str, np.ndarray]] = None,
                     reference_lookup=None, staleness: int = 0) -> None:
        """:meth:`add_payload` without the update peek — the leanest fold.

        Identical decode and fold arithmetic; the only difference is that no
        :class:`~repro.federated.aggregation.ExpertUpdate` is materialised
        (wire frames carry no staleness, so pass ``staleness=`` explicitly
        when the transport tracks it out of band).
        """
        scratch = self._scratch
        _, layer, expert, weight, state = _decode_update_parts(
            data, reference, reference_lookup, scratch)
        self.add_state((layer, expert), state, weight, staleness)
        if scratch is not None:
            scratch.recycle()

    # --------------------------------------------------------------- finalizing
    def partials(self, participant_id: int) -> list:
        """Pre-folded partial aggregates, one update per finalizable key.

        Each partial carries the key's accumulated (post-discount) weight, so
        a downstream weighted fold treats this aggregator's whole input as one
        heavy contributor — the building block of hierarchical aggregation
        (:mod:`repro.federated.topology`) and of process-pool pre-folding
        (:mod:`repro.runtime.executor`).  Unfinalizable keys (only zero-weight
        FedAvg contributions) are dropped.  ``participant_id`` is the pseudo
        id stamped on the partials (aggregator tiers use negative ids).
        """
        from ..federated.aggregation import ExpertUpdate

        return [
            ExpertUpdate(
                participant_id=participant_id,
                layer=layer,
                expert=expert,
                state=state,
                weight=self.total_weight((layer, expert)),
            )
            for (layer, expert), state in self.finalize(skip_unfinalizable=True).items()
        ]

    def finalize(self, skip_unfinalizable: bool = False
                 ) -> Dict[ExpertKey, Dict[str, np.ndarray]]:
        """Aggregated state per expert key (leaves the aggregator intact).

        ``skip_unfinalizable=True`` silently drops keys whose accumulator
        cannot produce a result — under FedAvg, keys that received only
        zero-weight contributions (the states are gone, so no uniform-mean
        fallback is possible) — instead of raising.
        """
        return {key: acc.finalize() for key, acc in self._accs.items()
                if not skip_unfinalizable or getattr(acc, "finalizable", True)}

    def apply(self, model) -> Dict[ExpertKey, int]:
        """Write the aggregated experts into ``model``; returns contributions."""
        for (layer, expert), aggregated in self.finalize().items():
            model.load_expert_state(layer, expert, aggregated)
        return self.contributions()
