"""Expert-activation profiling and analysis.

:func:`profile_activation` runs forward-only passes over a set of batches and
collects, for every MoE layer, the per-expert activation frequency, the set of
samples routed to each expert, and the mean attention score of the tokens each
expert processed.  This is the measurement underlying the paper's Figure 2
(activation skew across layers), Figure 5 (quantized-profiling error) and
Figure 6 (activation drift across rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from ..autograd import no_grad
from ..data import Batch
from ..models import MoETransformer


@dataclass
class ActivationProfile:
    """Per-layer activation statistics of one model over one dataset slice."""

    frequencies: List[np.ndarray]              # per layer: (num_experts,)
    attention_scores: List[np.ndarray]         # per layer: mean attention per expert
    sample_sets: List[List[Set[int]]]          # per layer, per expert: sample ids (D_i^e)
    token_counts: List[np.ndarray]             # per layer: raw token counts
    total_tokens: int

    @property
    def num_layers(self) -> int:
        return len(self.frequencies)

    def layer_variance(self) -> np.ndarray:
        """Variance of activation frequencies within each layer (Figure 2, right)."""
        return np.asarray([float(np.var(freq)) for freq in self.frequencies])

    def frequency_matrix(self) -> np.ndarray:
        """Stack per-layer frequencies into a ``(layers, max_experts)`` matrix."""
        max_experts = max(len(freq) for freq in self.frequencies)
        matrix = np.zeros((self.num_layers, max_experts))
        for layer, freq in enumerate(self.frequencies):
            matrix[layer, : len(freq)] = freq
        return matrix

    def samples_for_expert(self, layer: int, expert: int) -> Set[int]:
        """The paper's :math:`D^e_i`: samples whose tokens reached this expert."""
        return set(self.sample_sets[layer][expert])

    def flat_frequencies(self) -> np.ndarray:
        """All per-expert frequencies concatenated across layers."""
        return np.concatenate(self.frequencies) if self.frequencies else np.zeros(0)


def profile_activation(model: MoETransformer, batches: Sequence[Batch]) -> ActivationProfile:
    """Measure expert activation of ``model`` over ``batches`` (forward only)."""
    if not batches:
        raise ValueError("profiling requires at least one batch")
    model.set_routing_accumulation(True)
    model.eval()
    try:
        with no_grad():
            for batch in batches:
                model.forward(batch.input_ids, attention_mask=batch.attention_mask,
                              sample_ids=batch.sample_ids)
    finally:
        model.train()
    records = model.routing_records(accumulated=True)
    model.set_routing_accumulation(False)

    frequencies = [record.activation_frequency() for record in records]
    attention = [record.average_attention() for record in records]
    sample_sets = [[set(s) for s in record.sample_ids] for record in records]
    token_counts = [record.token_counts.copy() for record in records]
    total_tokens = int(records[0].total_tokens) if records else 0
    return ActivationProfile(
        frequencies=frequencies,
        attention_scores=attention,
        sample_sets=sample_sets,
        token_counts=token_counts,
        total_tokens=total_tokens,
    )


def estimation_error(reference: ActivationProfile, estimate: ActivationProfile,
                     epsilon: float = 1e-3) -> float:
    """Mean relative error (%) between two activation-frequency profiles.

    Used to quantify how closely quantized-model profiling tracks the
    full-precision model (Figure 5) and the cost of stale profiling
    (Figure 14).
    """
    if reference.num_layers != estimate.num_layers:
        raise ValueError("profiles cover different numbers of layers")
    errors: List[float] = []
    for ref_freq, est_freq in zip(reference.frequencies, estimate.frequencies):
        if len(ref_freq) != len(est_freq):
            raise ValueError("profiles cover different numbers of experts")
        denom = np.maximum(ref_freq, epsilon)
        errors.extend(np.abs(ref_freq - est_freq) / denom)
    return float(np.mean(errors) * 100.0)


def frequency_drift(previous: ActivationProfile, current: ActivationProfile) -> np.ndarray:
    """Absolute per-expert activation-frequency change between two rounds (pp).

    The CDF of these values reproduces Figure 6(b); small drift is what makes
    stale profiling viable.
    """
    drifts: List[np.ndarray] = []
    for prev_freq, curr_freq in zip(previous.frequencies, current.frequencies):
        drifts.append(np.abs(curr_freq - prev_freq) * 100.0)
    return np.concatenate(drifts) if drifts else np.zeros(0)
