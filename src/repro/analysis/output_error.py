"""Output-error measurement between a modified model and the original.

The paper quantifies the damage done by merging or discarding experts as the
average cosine distance between the final token embeddings of the modified
model and the original full model (§5.1, Figures 8, 15 and 17).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import no_grad
from ..data import Batch
from ..models import MoETransformer


def cosine_distance(a: np.ndarray, b: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Element-wise cosine distance ``1 - cos(a, b)`` along ``axis``."""
    dot = (a * b).sum(axis=axis)
    norm = np.linalg.norm(a, axis=axis) * np.linalg.norm(b, axis=axis)
    return 1.0 - dot / np.maximum(norm, eps)


def final_embeddings(model: MoETransformer, batch: Batch) -> np.ndarray:
    """Final-layer token embeddings for one batch (no gradients recorded)."""
    with no_grad():
        hidden = model.forward_hidden(batch.input_ids, attention_mask=batch.attention_mask)
    return hidden.data


def output_error(reference: MoETransformer, modified: MoETransformer,
                 batches: Sequence[Batch]) -> float:
    """Average cosine distance between token embeddings of two models.

    Only non-padding tokens contribute.  A value of 0 means the modified model
    (e.g. with merged experts) reproduces the original exactly.
    """
    if not batches:
        raise ValueError("output_error requires at least one batch")
    distances = []
    for batch in batches:
        ref = final_embeddings(reference, batch)
        mod = final_embeddings(modified, batch)
        if ref.shape != mod.shape:
            raise ValueError("models produced differently shaped embeddings")
        dist = cosine_distance(ref, mod)
        mask = batch.attention_mask.astype(bool)
        distances.append(dist[mask])
    return float(np.mean(np.concatenate(distances)))
