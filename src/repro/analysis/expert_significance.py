"""Expert significance analysis: activation frequency is not the whole story.

The paper's Figure 9 shows that some rarely activated experts are nonetheless
critical: the tokens they process carry high attention scores, so discarding
them perturbs many downstream representations.  This module measures, for every
expert, the output error caused by discarding it and relates that to its
activation frequency and the attention scores of its tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data import Batch
from ..models import MoETransformer
from .activation import ActivationProfile, profile_activation


@dataclass
class ExpertSignificance:
    """Significance measurements for one expert."""

    layer: int
    expert: int
    activation_frequency: float
    attention_score: float
    discard_error: float


def discard_expert_error(model: MoETransformer, batches: Sequence[Batch],
                         layer: int, expert: int) -> float:
    """Output error caused by removing one expert (its output becomes zero).

    The expert's down-projection is temporarily zeroed in place — equivalent to
    skipping its computation while keeping routing unchanged — the error against
    the intact model is measured, and the weights are restored.
    """
    target = model.get_expert(layer, expert)
    saved = target.w_down.weight.data.copy()
    reference_outputs = [_masked_embeddings(model, batch) for batch in batches]
    try:
        target.w_down.weight.data[...] = 0.0
        modified_outputs = [_masked_embeddings(model, batch) for batch in batches]
    finally:
        target.w_down.weight.data[...] = saved
    distances = [
        _mean_cosine_distance(ref, mod, batch)
        for ref, mod, batch in zip(reference_outputs, modified_outputs, batches)
    ]
    return float(np.mean(distances))


def _masked_embeddings(model: MoETransformer, batch: Batch) -> np.ndarray:
    from .output_error import final_embeddings

    return final_embeddings(model, batch)


def _mean_cosine_distance(reference: np.ndarray, modified: np.ndarray, batch: Batch) -> float:
    from .output_error import cosine_distance

    mask = batch.attention_mask.astype(bool)
    return float(np.mean(cosine_distance(reference, modified)[mask]))


def significance_report(model: MoETransformer, batches: Sequence[Batch],
                        profile: Optional[ActivationProfile] = None,
                        max_experts: Optional[int] = None) -> List[ExpertSignificance]:
    """Measure discard error, frequency and attention for (a subset of) experts.

    Experts are scanned in (layer, expert) order; ``max_experts`` bounds the
    number measured (the discard sweep costs one evaluation per expert).
    """
    profile = profile or profile_activation(model, batches)
    results: List[ExpertSignificance] = []
    count = 0
    for layer_index, frequencies in enumerate(profile.frequencies):
        for expert_index in range(len(frequencies)):
            if max_experts is not None and count >= max_experts:
                return results
            error = discard_expert_error(model, batches, layer_index, expert_index)
            results.append(ExpertSignificance(
                layer=layer_index,
                expert=expert_index,
                activation_frequency=float(frequencies[expert_index]),
                attention_score=float(profile.attention_scores[layer_index][expert_index]),
                discard_error=error,
            ))
            count += 1
    return results


def top_significant_experts(report: Sequence[ExpertSignificance], top_k: int = 10
                            ) -> List[ExpertSignificance]:
    """The ``top_k`` experts with the largest discard error (Figure 9(b))."""
    return sorted(report, key=lambda item: -item.discard_error)[:top_k]


def frequency_significance_correlation(report: Sequence[ExpertSignificance]) -> float:
    """Pearson correlation between activation frequency and discard error.

    The paper's point is that this correlation is far from perfect — some
    low-frequency experts are highly significant.
    """
    if len(report) < 2:
        return 0.0
    freq = np.asarray([item.activation_frequency for item in report])
    err = np.asarray([item.discard_error for item in report])
    if np.std(freq) == 0 or np.std(err) == 0:
        return 0.0
    return float(np.corrcoef(freq, err)[0, 1])
