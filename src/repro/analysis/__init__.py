"""Analysis utilities: activation profiling, output error, expert significance."""

from .activation import ActivationProfile, estimation_error, frequency_drift, profile_activation
from .expert_significance import (
    ExpertSignificance,
    discard_expert_error,
    frequency_significance_correlation,
    significance_report,
    top_significant_experts,
)
from .output_error import cosine_distance, final_embeddings, output_error

__all__ = [
    "ActivationProfile",
    "profile_activation",
    "estimation_error",
    "frequency_drift",
    "cosine_distance",
    "final_embeddings",
    "output_error",
    "ExpertSignificance",
    "discard_expert_error",
    "significance_report",
    "top_significant_experts",
    "frequency_significance_correlation",
]
