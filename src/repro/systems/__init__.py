"""Device, memory and cost models: the simulated-hardware substrate."""

from .cost_model import (
    FORWARD_FLOPS_PER_PARAM,
    TRAIN_FLOPS_PER_PARAM,
    CostModel,
    RoundCostBreakdown,
    upload_costs,
)
from .device import (
    CONSUMER_GPU,
    DEVICE_PRESETS,
    L20_SERVER,
    SMALL_GPU,
    DeviceProfile,
    heterogeneous_fleet,
)
from .memory import (
    DEFAULT_EXPERT_FRACTION,
    TRAINING_OVERHEAD,
    MemoryModel,
    expert_memory_bytes,
    model_memory_bytes,
)
from .timeline import RoundTimeline, RunTimeline, SimulatedClock

__all__ = [
    "DeviceProfile",
    "CONSUMER_GPU",
    "SMALL_GPU",
    "L20_SERVER",
    "DEVICE_PRESETS",
    "heterogeneous_fleet",
    "MemoryModel",
    "DEFAULT_EXPERT_FRACTION",
    "TRAINING_OVERHEAD",
    "model_memory_bytes",
    "expert_memory_bytes",
    "CostModel",
    "RoundCostBreakdown",
    "FORWARD_FLOPS_PER_PARAM",
    "TRAIN_FLOPS_PER_PARAM",
    "upload_costs",
    "SimulatedClock",
    "RoundTimeline",
    "RunTimeline",
]
