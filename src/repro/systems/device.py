"""Device profiles for the simulated testbed.

The paper's participants run consumer-grade GPUs while the testbed server uses
NVIDIA L20s.  A :class:`DeviceProfile` captures the handful of quantities the
cost model needs: GPU memory, sustained training throughput, PCIe bandwidth
(for expert offloading) and network bandwidth (for parameter exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware characteristics of one participant (or the server)."""

    name: str
    gpu_memory_gb: float
    compute_tflops: float          # sustained training throughput (FP16 TFLOP/s)
    pcie_bandwidth_gbps: float     # GB/s between host RAM and GPU
    network_mbps: float            # up/down link to the parameter server (MB/s)
    compute_efficiency: float = 0.35   # fraction of peak usable for MoE fine-tuning
    quantized_speedup: float = 2.0     # relative speedup of low-bit forward passes

    def __post_init__(self) -> None:
        for field_name in ("gpu_memory_gb", "compute_tflops", "pcie_bandwidth_gbps", "network_mbps"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    @property
    def gpu_memory_bytes(self) -> float:
        return self.gpu_memory_gb * 1024 ** 3

    @property
    def effective_flops(self) -> float:
        """Usable floating-point operations per second for training."""
        return self.compute_tflops * 1e12 * self.compute_efficiency

    @property
    def pcie_bytes_per_s(self) -> float:
        return self.pcie_bandwidth_gbps * 1024 ** 3

    @property
    def network_bytes_per_s(self) -> float:
        return self.network_mbps * 1024 ** 2

    def scaled(self, factor: float, name: Optional[str] = None) -> "DeviceProfile":
        """A device with compute and bandwidth scaled by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            compute_tflops=self.compute_tflops * factor,
            pcie_bandwidth_gbps=self.pcie_bandwidth_gbps * factor,
            network_mbps=self.network_mbps * factor,
        )


# --------------------------------------------------------------------- presets
CONSUMER_GPU = DeviceProfile(
    name="consumer-gpu-24g",
    gpu_memory_gb=24.0,
    compute_tflops=80.0,
    pcie_bandwidth_gbps=12.0,
    network_mbps=50.0,
)

SMALL_GPU = DeviceProfile(
    name="consumer-gpu-12g",
    gpu_memory_gb=12.0,
    compute_tflops=40.0,
    pcie_bandwidth_gbps=8.0,
    network_mbps=25.0,
)

L20_SERVER = DeviceProfile(
    name="nvidia-l20-48g",
    gpu_memory_gb=48.0,
    compute_tflops=120.0,
    pcie_bandwidth_gbps=25.0,
    network_mbps=1000.0,
)

DEVICE_PRESETS = {
    "consumer-gpu-24g": CONSUMER_GPU,
    "consumer-gpu-12g": SMALL_GPU,
    "nvidia-l20-48g": L20_SERVER,
}


def heterogeneous_fleet(num_devices: int, seed: int = 0,
                        base: DeviceProfile = CONSUMER_GPU,
                        spread: float = 0.5) -> List[DeviceProfile]:
    """Sample a heterogeneous set of participant devices.

    Each device's compute/bandwidth is the base profile scaled by a factor in
    ``[1 - spread, 1 + spread]``, reproducing the computation heterogeneity the
    paper's role-assignment module must cope with.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be positive")
    if not 0 <= spread < 1:
        raise ValueError("spread must be in [0, 1)")
    rng = np.random.default_rng(seed)
    factors = rng.uniform(1.0 - spread, 1.0 + spread, size=num_devices)
    return [base.scaled(float(f), name=f"{base.name}-p{i}") for i, f in enumerate(factors)]
