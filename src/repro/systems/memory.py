"""Memory accounting for (partial) MoE models on constrained devices.

Given a full-scale :class:`~repro.models.config.ArchitectureDescriptor` and a
participant's :class:`~repro.systems.device.DeviceProfile`, this module derives
the expert budgets the paper denotes :math:`B_i` (experts loadable into GPU
memory) and :math:`B^{tune}_i` (experts that can be fine-tuned within the
round-time constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.config import ArchitectureDescriptor, MoEModelConfig
from .device import DeviceProfile

#: fraction of an MoE LLM's parameters that live in routed experts; the paper
#: cites "more than two-thirds", DeepSeek/LLaMA-MoE are closer to 0.75-0.9.
DEFAULT_EXPERT_FRACTION = 0.8

#: multiplier covering optimizer state + activations for a trainable expert
#: (Adam keeps two extra copies; activations roughly one more).
TRAINING_OVERHEAD = 4.0


@dataclass
class MemoryModel:
    """Byte-level memory model of one full-scale MoE architecture."""

    descriptor: ArchitectureDescriptor
    expert_fraction: float = DEFAULT_EXPERT_FRACTION
    bytes_per_param: int = 2

    @property
    def total_bytes(self) -> float:
        return self.descriptor.total_params * self.bytes_per_param

    @property
    def expert_bytes_total(self) -> float:
        return self.total_bytes * self.expert_fraction

    @property
    def dense_bytes(self) -> float:
        """Non-expert (attention, embeddings, norms, gates) bytes."""
        return self.total_bytes - self.expert_bytes_total

    @property
    def num_experts_total(self) -> int:
        return self.descriptor.n_layers * self.descriptor.experts_per_layer

    @property
    def bytes_per_expert(self) -> float:
        return self.expert_bytes_total / self.num_experts_total

    @property
    def params_per_expert(self) -> float:
        return self.descriptor.total_params * self.expert_fraction / self.num_experts_total

    # ------------------------------------------------------------ participant
    def max_loadable_experts(self, device: DeviceProfile,
                             reserve_fraction: float = 0.1) -> int:
        """The paper's :math:`B_i`: routed experts that fit in GPU memory.

        Dense components are always resident; a ``reserve_fraction`` of GPU
        memory is kept for activations and workspace.
        """
        available = device.gpu_memory_bytes * (1.0 - reserve_fraction) - self.dense_bytes
        if available <= 0:
            return 0
        return int(min(available // self.bytes_per_expert, self.num_experts_total))

    def max_tuning_experts(self, device: DeviceProfile, round_time_budget_s: float,
                           tokens_per_round: float, flops_per_param: float = 6.0,
                           reserve_fraction: float = 0.1) -> int:
        """The paper's :math:`B^{tune}_i`: experts trainable within the round budget.

        Two constraints apply: (1) memory — a trainable expert costs
        ``TRAINING_OVERHEAD`` times its parameter bytes; (2) compute — training
        ``k`` experts on ``tokens_per_round`` tokens must fit into the round
        time budget at the device's effective throughput.
        """
        if round_time_budget_s <= 0 or tokens_per_round <= 0:
            raise ValueError("round budget and token count must be positive")
        available = device.gpu_memory_bytes * (1.0 - reserve_fraction) - self.dense_bytes
        memory_limit = int(max(available, 0) // (self.bytes_per_expert * TRAINING_OVERHEAD))
        flops_per_expert = flops_per_param * self.params_per_expert * tokens_per_round
        compute_limit = int((round_time_budget_s * device.effective_flops) // max(flops_per_expert, 1.0))
        limit = min(memory_limit, compute_limit, self.num_experts_total)
        return max(limit, 0)


def model_memory_bytes(config: MoEModelConfig, bytes_per_param: int = 4) -> float:
    """In-memory footprint of a scaled-down (instantiated) model config."""
    return config.total_parameter_count() * bytes_per_param


def expert_memory_bytes(config: MoEModelConfig, bytes_per_param: int = 4) -> float:
    """In-memory footprint of a single expert of a scaled-down config."""
    return config.expert_parameter_count() * bytes_per_param
