"""Simulated wall-clock for federated rounds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cost_model import RoundCostBreakdown


@dataclass
class SimulatedClock:
    """A monotonically advancing simulated clock (seconds)."""

    _now: float = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self._now += seconds
        return self._now

    def reset(self) -> None:
        self._now = 0.0


@dataclass
class RoundTimeline:
    """Aggregated timing of one federated round across all participants.

    The round completes when the slowest participant finishes (synchronous
    FedAvg), after which the server aggregates.  Per-phase totals are kept for
    the overhead-breakdown experiment (Figure 20).
    """

    round_index: int
    participant_times: Dict[int, float] = field(default_factory=dict)
    participant_breakdowns: Dict[int, RoundCostBreakdown] = field(default_factory=dict)
    server_time: float = 0.0
    #: set by non-synchronous schedulers (deadline-based or buffered rounds)
    #: whose wall-clock span is not "slowest participant + aggregation"
    duration_override: Optional[float] = None

    def record_participant(self, participant_id: int, breakdown: RoundCostBreakdown,
                           overlap_profiling: bool = False) -> None:
        self.participant_breakdowns[participant_id] = breakdown
        self.participant_times[participant_id] = breakdown.total(overlap_profiling=overlap_profiling)

    def round_duration(self) -> float:
        """Wall-clock duration: slowest participant plus server aggregation."""
        if self.duration_override is not None:
            return self.duration_override
        slowest = max(self.participant_times.values(), default=0.0)
        return slowest + self.server_time

    def phase_totals(self) -> Dict[str, float]:
        """Sum of per-phase times across participants (plus server aggregation)."""
        totals: Dict[str, float] = {
            "profiling": 0.0, "merging": 0.0, "assignment": 0.0, "training": 0.0,
            "offloading": 0.0, "quantization": 0.0, "communication": 0.0,
        }
        for breakdown in self.participant_breakdowns.values():
            for phase, value in breakdown.as_dict().items():
                totals[phase] += value
        totals["aggregation"] = self.server_time
        return totals


@dataclass
class RunTimeline:
    """Collection of round timelines for a whole fine-tuning run."""

    rounds: List[RoundTimeline] = field(default_factory=list)

    def add(self, timeline: RoundTimeline) -> None:
        self.rounds.append(timeline)

    def total_time(self) -> float:
        return sum(r.round_duration() for r in self.rounds)

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for round_timeline in self.rounds:
            for phase, value in round_timeline.phase_totals().items():
                totals[phase] = totals.get(phase, 0.0) + value
        return totals

    def phase_fractions(self) -> Dict[str, float]:
        totals = self.phase_totals()
        overall = sum(totals.values())
        if overall <= 0:
            return {phase: 0.0 for phase in totals}
        return {phase: value / overall for phase, value in totals.items()}
