"""Analytical cost model: how long each federated fine-tuning step takes.

The paper's headline metric is *time-to-accuracy* on real hardware.  This
module charges each method for the work it actually performs — forward/backward
FLOPs over the experts it materialises, PCIe transfers when experts are
offloaded (FMD), quantized-forward profiling passes (Flux), clustering/merging
CPU work, and parameter upload/download — and converts that work into seconds
using a :class:`~repro.systems.device.DeviceProfile`.

All sizes refer to the *full-scale* architecture (via :class:`MemoryModel`), so
the simulated times are in the same regime as the paper's testbed even though
the learning dynamics run on the mini models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .device import DeviceProfile
from .memory import MemoryModel

#: FLOPs per parameter per token for a forward pass (the standard 2x).
FORWARD_FLOPS_PER_PARAM = 2.0
#: forward + backward + weight update, the standard 6x.
TRAIN_FLOPS_PER_PARAM = 6.0


@dataclass
class RoundCostBreakdown:
    """Seconds spent in each phase of one participant's round."""

    profiling: float = 0.0
    merging: float = 0.0
    assignment: float = 0.0
    training: float = 0.0
    offloading: float = 0.0
    quantization: float = 0.0
    communication: float = 0.0

    def total(self, overlap_profiling: bool = False) -> float:
        """Total round time.

        With ``overlap_profiling=True`` (Flux's stale profiling) the profiling
        and quantization cost is hidden behind aggregation/communication and
        only its excess over that window is charged.
        """
        hidden = self.profiling + self.quantization
        visible = self.merging + self.assignment + self.training + self.offloading + self.communication
        if overlap_profiling:
            overlap_window = self.communication + self.assignment
            return visible + max(hidden - overlap_window, 0.0)
        return visible + hidden

    def as_dict(self) -> Dict[str, float]:
        return {
            "profiling": self.profiling,
            "merging": self.merging,
            "assignment": self.assignment,
            "training": self.training,
            "offloading": self.offloading,
            "quantization": self.quantization,
            "communication": self.communication,
        }


@dataclass
class CostModel:
    """Converts per-round work into simulated seconds for one participant."""

    device: DeviceProfile
    memory: MemoryModel
    tokens_per_sample: float = 256.0
    #: CPU-side cost (seconds) of clustering/merging per expert involved
    merge_seconds_per_expert: float = 0.002
    #: server-side aggregation seconds per uploaded expert
    aggregation_seconds_per_expert: float = 0.001
    #: fixed per-expert handling cost per round: optimizer state updates,
    #: gradient materialisation and kernel dispatch for every expert held on
    #: the GPU.  This is what makes one round of fine-tuning grow with the
    #: number of experts even under top-k routing (paper Figure 1).
    expert_handling_seconds: float = 0.03

    # ------------------------------------------------------------- primitives
    def scaled_tokens(self, num_samples: float) -> float:
        """Full-scale token count corresponding to ``num_samples`` local samples.

        The mini models train on short synthetic sequences; charging costs for
        ``tokens_per_sample`` tokens per sample keeps the simulated times in
        the same regime as the paper's workloads (LLM-length sequences).
        """
        return float(num_samples) * self.tokens_per_sample

    def _flops_seconds(self, flops: float, quantized: bool = False) -> float:
        rate = self.device.effective_flops
        if quantized:
            rate *= self.device.quantized_speedup
        return flops / rate

    def _transfer_seconds(self, num_bytes: float, bandwidth_bytes_per_s: float) -> float:
        return num_bytes / bandwidth_bytes_per_s

    # ------------------------------------------------------------ model costs
    def dense_forward_flops(self, num_tokens: float) -> float:
        """FLOPs of the non-expert part of the model for ``num_tokens`` tokens."""
        dense_params = self.memory.descriptor.total_params * (1.0 - self.memory.expert_fraction)
        return FORWARD_FLOPS_PER_PARAM * dense_params * num_tokens

    def expert_forward_flops(self, num_tokens: float, active_experts_per_token: int = 2) -> float:
        """FLOPs of routed experts for ``num_tokens`` tokens (top-k routing)."""
        per_layer = self.memory.params_per_expert * active_experts_per_token
        return FORWARD_FLOPS_PER_PARAM * per_layer * self.memory.descriptor.n_layers * num_tokens

    # --------------------------------------------------------------- activities
    def training_time(self, num_tokens: float, tuning_experts: int, frozen_experts: int,
                      active_experts_per_token: int = 2, quantized: bool = False) -> float:
        """Seconds to run one local fine-tuning pass.

        Tuning experts pay full forward+backward+update cost; frozen (merged or
        preserved non-tuning) experts and the dense trunk pay forward-only cost
        plus backward-through activations (approximated at 2x forward).
        """
        total_slots = max(tuning_experts + frozen_experts, 1)
        tuning_share = tuning_experts / total_slots
        frozen_share = frozen_experts / total_slots
        expert_fwd = self.expert_forward_flops(num_tokens, active_experts_per_token)
        flops = (
            self.dense_forward_flops(num_tokens) * 3.0
            + expert_fwd * tuning_share * (TRAIN_FLOPS_PER_PARAM / FORWARD_FLOPS_PER_PARAM)
            + expert_fwd * frozen_share * 2.0
        )
        handling = (tuning_experts + 0.5 * frozen_experts) * self.expert_handling_seconds
        return self._flops_seconds(flops, quantized=quantized) + handling

    def forward_time(self, num_tokens: float, active_experts_per_token: int = 2,
                     quantized: bool = False) -> float:
        """Seconds for a full-precision (or quantized) forward-only pass."""
        flops = self.dense_forward_flops(num_tokens) + self.expert_forward_flops(
            num_tokens, active_experts_per_token)
        return self._flops_seconds(flops, quantized=quantized)

    def profiling_time(self, num_tokens: float, bits: int,
                       active_experts_per_token: int = 2) -> float:
        """Seconds to run a quantized profiling (forward-only) pass."""
        flops = self.dense_forward_flops(num_tokens) + self.expert_forward_flops(
            num_tokens, active_experts_per_token)
        # Lower-bit models run faster; scale the quantized speedup by 8/bits.
        speedup = self.device.quantized_speedup * (8.0 / max(bits, 1)) / 2.0
        return flops / (self.device.effective_flops * max(speedup, 1.0))

    def quantization_time(self, num_experts: int) -> float:
        """Seconds to quantize ``num_experts`` experts (CPU-bound, bandwidth-limited)."""
        num_bytes = num_experts * self.memory.bytes_per_expert
        return self._transfer_seconds(num_bytes, self.device.pcie_bytes_per_s) * 2.0

    def offload_time(self, experts_transferred: int) -> float:
        """Seconds of PCIe traffic to swap ``experts_transferred`` experts (FMD)."""
        num_bytes = experts_transferred * self.memory.bytes_per_expert
        return self._transfer_seconds(num_bytes, self.device.pcie_bytes_per_s)

    def merging_time(self, experts_merged: int) -> float:
        """Seconds of CPU work to cluster and merge ``experts_merged`` experts."""
        return experts_merged * self.merge_seconds_per_expert

    def assignment_time(self, num_candidate_experts: int) -> float:
        """Seconds to solve the role-assignment optimisation for one participant."""
        return num_candidate_experts * 1e-4

    def upload_time(self, num_experts: int, bytes_per_param: Optional[float] = None) -> float:
        """Seconds to upload ``num_experts`` expert updates to the server."""
        per_param = bytes_per_param if bytes_per_param is not None else self.memory.bytes_per_param
        num_bytes = num_experts * self.memory.params_per_expert * per_param
        return self._transfer_seconds(num_bytes, self.device.network_bytes_per_s)

    def download_time(self, num_experts: int, bytes_per_param: Optional[float] = None) -> float:
        """Seconds to download ``num_experts`` refreshed experts from the server."""
        return self.upload_time(num_experts, bytes_per_param=bytes_per_param)

    def aggregation_time(self, total_expert_updates: int) -> float:
        """Server-side seconds to aggregate ``total_expert_updates`` expert updates."""
        return total_expert_updates * self.aggregation_seconds_per_expert


def upload_costs(cost_models: Dict[int, "CostModel"],
                 num_experts: int = 1) -> Dict[int, float]:
    """Per-participant upload seconds for ``num_experts`` expert updates.

    The scalar load signal behind cost-aware edge grouping
    (:class:`~repro.federated.topology.CostAwareGrouping`): a greedy bin-pack
    over these costs balances the per-edge upload *makespan* — slow uplinks
    spread across edge aggregators instead of whichever edge ``pid % n``
    happens to pick.  Only relative magnitudes matter, so one representative
    expert (the default) is as good a signal as a full round's worth.
    """
    return {participant_id: cost_model.upload_time(num_experts)
            for participant_id, cost_model in cost_models.items()}
