"""Long-lived aggregator servers: the fold plane as a socket service.

An :class:`AggregatorServer` is one persistent fold node — the service twin
of one :class:`~repro.runtime.executor.AggregationPool` worker, except that
it outlives rounds (and runs): it keeps its round accumulators, lifetime
counters and connections between folds, and speaks the
:mod:`repro.service.protocol` messages over the length-prefixed
:mod:`repro.comm.stream` transport.  One asyncio accept loop per server
handles any number of concurrent client connections, so the shard folds and
tier-0 subtree pre-folds of one round — or of several concurrent runs — can
stream into the same server in parallel.

The fold math is deliberately *not* reimplemented here: flush requests call
the exact worker functions the process pool uses
(:func:`repro.runtime.executor._fold_shard_frames` /
:func:`~repro.runtime.executor._prefold_node_frames`), so a service fold is
bit-identical to a pooled or serial fold by construction (test-enforced).
Fold work runs inline on the event loop: one fold occupies the server — the
parallelism of the service plane comes from running many single-shard/subtree
servers, one per shard or subtree, exactly as the pool runs many workers.

Three ways to run one:

* :meth:`AggregatorServer.run_forever` — a TCP server in *this* process
  (blocking; what :func:`serve_main` runs in spawned children);
* :func:`spawn_server` — a TCP server in a child process, with the bound
  ephemeral port reported back through a pipe and an optional line-oriented
  log file (the CI smoke uploads these on failure);
* :class:`InProcessServer` — the ``socketpair`` transport: the same accept
  logic driven by a background-thread event loop that adopts one
  ``socket.socketpair()`` end per :meth:`~InProcessServer.connect`, so
  in-host tests exercise the full protocol without touching TCP.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..comm.scratch import ScratchPool
from ..comm.stream import read_frame, write_frame
from ..obs import span_record
from .protocol import (
    OP_ADD,
    OP_ERR,
    OP_FLUSH_NODE,
    OP_FLUSH_SHARD,
    OP_HELLO,
    OP_NAMES,
    OP_OK,
    OP_PING,
    OP_RESET,
    OP_SHUTDOWN,
    OP_STATS,
    PROTOCOL_VERSION,
    ServiceProtocolError,
    UnknownCodecError,
    decode_message,
    encode_message,
)

#: abandoned round accumulators to retain before evicting the oldest — a
#: client that died mid-round replays under a fresh token, so its orphaned
#: accumulator is garbage the moment the replacement token appears
_MAX_PENDING_TOKENS = 32


class AggregatorServer:
    """One persistent aggregator node (see module docstring).

    The server is transport-agnostic at its core: :meth:`handle_connection`
    serves one ``(StreamReader, StreamWriter)`` pair to completion, and both
    the TCP accept loop and the in-process ``socketpair`` adapter feed it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 name: str = "aggregator", log_path: Optional[str] = None) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral; rebound by start()
        self.name = name
        self.log_path = log_path
        #: round accumulators: token -> buffered (frame, staleness) pairs.
        #: This is the state that persists *between* requests — a round's
        #: updates accumulate across any number of OP_ADD chunks until a
        #: flush folds and clears them.
        self._pending: Dict[str, List[Tuple[bytes, int]]] = {}
        #: persistent decode/fold scratch shared by every fold this server
        #: ever runs — the long-lived service is the best case for scratch
        #: reuse, since the buffers stay warm *across rounds and runs*.
        #: Folds run inline on the (single) event-loop thread, so one pool
        #: per server is race-free.
        self._scratch = ScratchPool()
        self.stats: Dict[str, float] = {
            "pid": os.getpid(),
            "started_wall": time.time(),
            "connections_total": 0,
            "requests_total": 0,
            "frames_added": 0,
            "rounds_folded": 0,
            "bytes_received": 0,
            "bytes_sent": 0,
        }
        self._shutdown: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._log_handle = None

    # ---------------------------------------------------------------- logging
    def _log(self, message: str) -> None:
        if self.log_path is None:
            return
        if self._log_handle is None:
            self._log_handle = open(self.log_path, "a", encoding="utf-8")
        self._log_handle.write(
            f"{time.strftime('%H:%M:%S')} [{self.name} pid={os.getpid()}] "
            f"{message}\n")
        self._log_handle.flush()

    # ----------------------------------------------------------- request core
    def _flush_frames(self, token: str) -> List[Tuple[bytes, int]]:
        frames = self._pending.pop(token, [])
        # Every successful flush also evicts the oldest abandoned tokens so a
        # flaky client cannot grow the server without bound.
        while len(self._pending) > _MAX_PENDING_TOKENS:
            self._pending.pop(next(iter(self._pending)))
        return frames

    @staticmethod
    def _validated_pairs(raw_frames) -> List[Tuple[bytes, int]]:
        """Type- and codec-check one ADD chunk before it enters an accumulator.

        A frame declaring a codec the registry does not know raises the typed
        :class:`UnknownCodecError` *now* — at ADD time, with the offending tag
        in the message — instead of surfacing as an opaque decode failure (or
        worse, a pickle error) when the flush finally folds the round.
        """
        from ..comm import frame_codec_name, get_codec

        pairs: List[Tuple[bytes, int]] = []
        for frame, staleness in raw_frames:
            frame = bytes(frame)
            try:
                codec_name = frame_codec_name(frame)
            except ValueError as error:
                raise ServiceProtocolError(f"ADD payload is not an RWP1 "
                                           f"frame: {error}") from error
            try:
                get_codec(codec_name)
            except KeyError:
                raise UnknownCodecError(
                    f"ADD frame declares unknown codec {codec_name!r}") from None
            pairs.append((frame, int(staleness)))
        return pairs

    def handle_request(self, op: int, body) -> Tuple[int, object]:
        """Execute one request; returns the ``(op, body)`` of the response.

        Synchronous on purpose: fold work is CPU-bound, and interleaving two
        folds on one event loop would only slow both down.  Concurrency
        across *servers* (one per shard/subtree) is the service plane's
        parallelism, mirroring one-pool-worker-per-shard.
        """
        from ..runtime.executor import _fold_shard_frames, _prefold_node_frames

        self.stats["requests_total"] += 1
        if op == OP_HELLO:
            version = (int(body.get("version", 0))
                       if isinstance(body, dict) else 0)
            if version != PROTOCOL_VERSION:
                raise ServiceProtocolError(
                    f"client speaks service protocol version {version}, "
                    f"this server speaks {PROTOCOL_VERSION}")
            return OP_OK, {"version": PROTOCOL_VERSION, "pid": os.getpid(),
                           "name": self.name}
        if op == OP_PING:
            return OP_OK, {"pid": os.getpid(), "name": self.name,
                           "rounds_folded": self.stats["rounds_folded"]}
        if op == OP_ADD:
            validated = self._validated_pairs(body["frames"])
            pairs = self._pending.setdefault(str(body["token"]), [])
            pairs.extend(validated)
            self.stats["frames_added"] += len(validated)
            return OP_OK, {"buffered": len(pairs)}
        if op in (OP_FLUSH_NODE, OP_FLUSH_SHARD):
            import pickle

            from ..federated.topology import tier_of_pseudo_id

            # Flush-borne final chunk (see client ``_fold_round``): the last
            # ADD chunk of a round rides the flush body, saving one round
            # trip — validated exactly like an OP_ADD chunk, and *before*
            # the accumulator pops so a codec rejection leaves the pending
            # state untouched.
            tail: List[Tuple[bytes, int]] = []
            if body.get("frames"):
                tail = self._validated_pairs(body["frames"])
                self.stats["frames_added"] += len(tail)
            frames = self._flush_frames(str(body["token"])) + tail
            strategy = (pickle.loads(body["strategy"])
                        if body.get("strategy") is not None else None)
            references = body.get("references")
            wall_start = time.time()
            perf_start = time.perf_counter()
            if op == OP_FLUSH_NODE:
                pseudo_id = int(body["pseudo_id"])
                result: object = _prefold_node_frames(
                    strategy, pseudo_id, frames, references,
                    scratch=self._scratch)
                record_name, attrs = "prefold_node", {
                    "node": int(body["node"]),
                    "tier": tier_of_pseudo_id(pseudo_id)}
            else:
                result = _fold_shard_frames(
                    strategy, bool(body["streaming"]), frames, references,
                    scratch=self._scratch)
                record_name, attrs = "fold_shard", {"shard": int(body["shard"])}
            self.stats["rounds_folded"] += 1
            record = None
            if body.get("timed"):
                record = span_record(
                    record_name, "fold", wall_start,
                    time.perf_counter() - perf_start,
                    num_updates=len(frames), worker_pid=os.getpid(),
                    transport="service", server=self.name, **attrs)
            self._log(f"{OP_NAMES[op]}: folded {len(frames)} frame(s)")
            return OP_OK, {"result": result, "record": record}
        if op == OP_RESET:
            dropped = sum(len(pairs) for pairs in self._pending.values())
            self._pending.clear()
            self._log(f"reset: dropped {dropped} buffered frame(s)")
            return OP_OK, {"dropped_frames": dropped}
        if op == OP_STATS:
            return OP_OK, dict(self.stats, pending_tokens=len(self._pending))
        if op == OP_SHUTDOWN:
            self._log("shutdown requested")
            if self._shutdown is not None:
                self._shutdown.set()
            return OP_OK, {}
        raise ServiceProtocolError(f"server cannot handle op {op}")

    # ------------------------------------------------------------ connections
    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve one client connection until it closes (or shutdown)."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.stats["connections_total"] += 1
        self._log("connection opened")
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break  # clean close between requests
                self.stats["bytes_received"] += len(frame)
                try:
                    op, body = decode_message(frame)
                    response = encode_message(*self.handle_request(op, body))
                except Exception as error:  # surfaced client-side, not fatal here
                    self._log(f"request failed: {error!r}")
                    response = encode_message(OP_ERR, {
                        "error": str(error), "type": type(error).__name__})
                self.stats["bytes_sent"] += await write_frame(writer, response)
        except ConnectionError as error:
            # Includes TruncatedFrameError: the client died mid-request.  Its
            # round token is now orphaned and will be evicted, never folded.
            self._log(f"connection lost: {error!r}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._log("connection closed")

    # -------------------------------------------------------------- TCP serve
    async def start(self) -> None:
        """Bind the TCP accept loop (resolving an ephemeral port request)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self.handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"listening on {self.host}:{self.port}")

    async def serve_until_shutdown(self) -> None:
        """Accept until OP_SHUTDOWN, then drain open connections and exit."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        async with self._server:
            await self._shutdown.wait()
        # Graceful drain: accepting has stopped; let open handle_connection
        # tasks run to completion (the shutdown requester got its ack before
        # the event fired, so it closes its end promptly) rather than leave
        # them for asyncio.run's teardown cancellation.
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5.0)
        self._log("server stopped")
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def run_forever(self) -> None:
        """Blocking entry point: serve TCP until a shutdown request."""
        asyncio.run(self.serve_until_shutdown())


# ------------------------------------------------------------ child processes
_PARENT_POLL_S = 1.0


def _detach_stdio() -> None:
    """Point the server child's stdio at /dev/null.

    A spawned server inherits whatever stdin/stdout/stderr the run was
    launched with.  If that is a pipe (CI step, ``cmd | tail``) and the run
    is hard-killed, the orphaned server would keep the pipe's write end open
    and the reader would never see EOF — the CI step hangs until its timeout
    instead of failing fast.  The server never talks on stdio anyway (all
    diagnostics go to ``log_path``).
    """
    devnull = os.open(os.devnull, os.O_RDWR)
    for fd in (0, 1, 2):
        try:
            os.dup2(devnull, fd)
        except OSError:
            pass
    os.close(devnull)


def serve_main(conn, host: str, name: str, log_path: Optional[str],
               parent_pid: Optional[int] = None) -> None:
    """Child-process entry: serve TCP, reporting the bound port over ``conn``."""
    _detach_stdio()
    server = AggregatorServer(host=host, name=name, log_path=log_path)

    async def watch_parent() -> None:
        # Orphan self-termination: daemon children are only reaped by the
        # parent's atexit machinery, which an os._exit / SIGKILL / OOM kill
        # skips entirely.  A server that outlives the run it folds for is
        # pure leak, so poll the ppid and stop serving once it changes
        # (reparented to init/subreaper = parent is gone).
        assert server._shutdown is not None
        while os.getppid() == parent_pid:
            await asyncio.sleep(_PARENT_POLL_S)
        server._log(f"parent pid {parent_pid} is gone; shutting down")
        server._shutdown.set()

    async def main() -> None:
        await server.start()
        conn.send((server.host, server.port))
        conn.close()
        watchdog = (asyncio.ensure_future(watch_parent())
                    if parent_pid is not None else None)
        await server.serve_until_shutdown()
        if watchdog is not None:
            watchdog.cancel()

    asyncio.run(main())


class ServerProcess:
    """Handle on one spawned TCP aggregator server (see :func:`spawn_server`)."""

    def __init__(self, process, host: str, port: int, name: str,
                 log_path: Optional[str]) -> None:
        self.process = process
        self.host = host
        self.port = port
        self.name = name
        self.log_path = log_path

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-kill the server process (SIGKILL; no drain, no cleanup)."""
        self.process.kill()
        self.process.join()

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


def spawn_server(host: str = "127.0.0.1", *, name: str = "aggregator",
                 log_dir: Optional[str] = None,
                 start_timeout_s: float = 30.0) -> ServerProcess:
    """Start one TCP aggregator server in a child process and await its port."""
    import multiprocessing

    log_path = None
    if log_dir is not None:
        os.makedirs(log_dir, exist_ok=True)
        log_path = os.path.join(log_dir, f"{name}.log")
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=serve_main, args=(child_conn, host, name, log_path, os.getpid()),
        name=f"repro-service-{name}", daemon=True)
    process.start()
    child_conn.close()
    if not parent_conn.poll(start_timeout_s):
        process.terminate()
        process.join()
        raise ConnectionError(
            f"aggregator server {name!r} did not report a port within "
            f"{start_timeout_s}s")
    bound_host, bound_port = parent_conn.recv()
    parent_conn.close()
    return ServerProcess(process, bound_host, bound_port, name, log_path)


# --------------------------------------------------------------- socketpair
class InProcessServer:
    """The ``socketpair`` transport: one server on a background-thread loop.

    Each :meth:`connect` creates a ``socket.socketpair()``, hands the server
    side to the event loop (which serves it with the same
    :meth:`AggregatorServer.handle_connection` as TCP), and returns the
    client side — so in-host tests cover the full accept-loop/protocol path
    with zero network configuration.
    """

    def __init__(self, *, name: str = "aggregator",
                 log_path: Optional[str] = None) -> None:
        self.server = AggregatorServer(name=name, log_path=log_path)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def name(self) -> str:
        return self.server.name

    def start(self) -> "InProcessServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name=f"repro-service-{self.name}", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ConnectionError(
                f"in-process server {self.name!r} event loop did not start")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self.server._shutdown = asyncio.Event()
        self._ready.set()
        await self.server._shutdown.wait()
        # Drain: let adopted-connection tasks finish before the loop dies.
        tasks = [task for task in asyncio.all_tasks()
                 if task is not asyncio.current_task()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def connect(self) -> socket.socket:
        """A new connected client socket served by this server."""
        self.start()
        client_side, server_side = socket.socketpair()

        def adopt() -> None:
            async def serve() -> None:
                reader, writer = await asyncio.open_connection(sock=server_side)
                await self.server.handle_connection(reader, writer)

            asyncio.ensure_future(serve())

        assert self._loop is not None
        self._loop.call_soon_threadsafe(adopt)
        return client_side

    def close(self) -> None:
        """Stop the loop thread (idempotent; pending connections drain)."""
        thread, self._thread = self._thread, None
        if thread is None or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(
                lambda: self.server._shutdown is not None
                and self.server._shutdown.set())
        except RuntimeError:
            pass  # loop already stopped (e.g. a client's OP_SHUTDOWN landed)
        thread.join(timeout=30.0)
