"""Persistent socket-backed aggregation service (``backend="service"``).

Instead of forking a process pool per fold call, this package keeps
long-lived aggregator servers — one per shard/subtree — each holding its
round accumulator *between* requests and speaking the CRC-framed
:mod:`repro.comm` wire protocol over a real transport: ``socketpair`` for
in-host tests, TCP for multi-process topologies.  The pieces:

* :mod:`~repro.service.protocol` — the ``RWS1`` op/pickle envelope around
  ordinary ``RWP1`` wire frames.
* :mod:`~repro.service.server` — the asyncio accept loop
  (:class:`AggregatorServer`), plus the two deployment wrappers:
  :func:`spawn_server`/:class:`ServerProcess` (TCP child process) and
  :class:`InProcessServer` (background-thread ``socketpair``).
* :mod:`~repro.service.client` — :class:`ServiceClient`, the blocking
  per-server connection with reconnect/retry/timeout and token-scoped
  round replay.
* :mod:`~repro.service.pool` — :class:`ServiceAggregationPool`, the
  pool-shaped facade that plugs into the runtime as
  ``RunConfig(aggregation_executor="service")``.

The service fold plane is bit-identical to the pooled and serial planes
(same worker fold functions; lossless fp64 interchange by default, or —
with ``RunConfig(service_codec="wire")`` — the round's original codec
frames forwarded verbatim with per-job references; test-enforced) and
survives a hard-killed server mid-round by respawning and replaying the
round — see the CI ``service-smoke`` lane and ``scripts/service_smoke.py``.
Connections open with an ``OP_HELLO`` version handshake
(:data:`PROTOCOL_VERSION`) and ADDs are pipelined in a bounded window
acknowledged before each flush.
"""

from .client import (
    DEFAULT_CHUNK_FRAMES,
    DEFAULT_WINDOW,
    ServiceClient,
    ServiceUnavailableError,
)
from .pool import ServiceAggregationPool
from .protocol import (
    OP_NAMES,
    PROTOCOL_VERSION,
    SERVICE_MAGIC,
    ServiceError,
    ServiceProtocolError,
    UnknownCodecError,
    decode_message,
    encode_message,
)
from .server import AggregatorServer, InProcessServer, ServerProcess, spawn_server

__all__ = [
    "SERVICE_MAGIC",
    "PROTOCOL_VERSION",
    "OP_NAMES",
    "encode_message",
    "decode_message",
    "ServiceProtocolError",
    "UnknownCodecError",
    "ServiceError",
    "AggregatorServer",
    "InProcessServer",
    "ServerProcess",
    "spawn_server",
    "ServiceClient",
    "ServiceUnavailableError",
    "DEFAULT_CHUNK_FRAMES",
    "DEFAULT_WINDOW",
    "ServiceAggregationPool",
]
