"""The ``backend="service"`` fold plane: a pool-shaped client over live servers.

:class:`ServiceAggregationPool` implements the exact duck-typed interface of
:class:`~repro.runtime.executor.AggregationPool` — ``fold_shards`` /
``prefold_nodes`` / ``last_span_records`` / ``close`` — so the
:class:`~repro.federated.topology.AggregationTree`, the
:class:`~repro.federated.ShardedParameterServer` and the schedulers gain the
service backend without changing a line: ``RunConfig(aggregation_executor=
"service")`` routes every fold through long-lived
:class:`~repro.service.server.AggregatorServer` processes instead of
process-pool workers.

Topology: one client connection per server, shard/node ``k`` pinned to
server ``k % num_servers`` (stable across rounds, so a shard's folds always
land on the same persistent server), jobs to distinct servers dispatched
concurrently from a thread pool while jobs sharing a server serialize on its
connection lock.  The payloads are the same ``(wire frame, staleness)`` pairs
the process pool ships, and the servers run the same worker fold functions —
service folds are bit-identical to pooled and serial folds (test-enforced).

Failure handling: each client retries its whole round with
backoff (see :mod:`repro.service.client`); for *spawned* servers the dial
factory first respawns a dead process on a fresh port, so a hard-killed
server mid-round heals transparently — the round replays against the
replacement and the run completes (the CI ``service-smoke`` lane kills one
mid-round to enforce exactly this).  ``close()`` is the graceful drain: every
server gets an ack'd ``OP_SHUTDOWN``, spawned processes are joined, and the
pool can lazily restart for a next run, like the process pool.

Transports: ``"tcp"`` spawns one child process per server on an ephemeral
``127.0.0.1`` port (or, with ``addresses=[(host, port), ...]``, dials
externally managed servers and never spawns or shuts down anything);
``"socketpair"`` runs each server on an in-process background-thread accept
loop reached over ``socket.socketpair()`` — the same protocol end-to-end
with zero network setup, for in-host tests and constrained sandboxes.

Compressed service wire: with ``wire_frames=True`` (from
``RunConfig(service_codec="wire")``) the callers forward each round's
*original* codec frames verbatim instead of re-encoding partials to fp64 —
the pool advertises the mode via its :attr:`wire_frames` attribute, and jobs
may carry a trailing per-job references dict (fp64 reference frames for
reference-requiring codecs) that rides the flush body to the server.  The
server decodes exactly the bytes the serial path would, so bit-identity
holds by construction while wire bytes shrink to the codec's ratio.  ADDs
are pipelined client-side in a bounded ``window`` (see
:mod:`repro.service.client`).

Observability: with telemetry bound (the orchestrator calls
:meth:`bind_telemetry`), every fold call drains the per-server transport
counters into ``repro_service_*`` metrics — including per-codec
``repro_service_frame_bytes_total``, per-tier
``repro_service_tier_folds_total`` and ``repro_service_reference_bytes_total``
payload counters — and server-measured fold span records land in
:attr:`last_span_records` for the caller's tracer to ingest, exactly like
pool workers' records.
"""

from __future__ import annotations

import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..comm.serialization import frame_codec_name
from ..comm.stream import FrameStream
from .client import DEFAULT_CHUNK_FRAMES, DEFAULT_WINDOW, ServiceClient
from .server import InProcessServer, ServerProcess, spawn_server

#: spawned-server default when ``aggregation_workers`` is unset: enough for
#: the benched shard counts, without forking a server per core on big hosts
_DEFAULT_NUM_SERVERS = 4

TRANSPORTS = ("tcp", "socketpair")


class ServiceAggregationPool:
    """Service-backed fold plane (see module docstring)."""

    name = "service"

    def __init__(self, num_servers: Optional[int] = None, *,
                 transport: str = "tcp",
                 addresses: Optional[Sequence[Tuple[str, int]]] = None,
                 retry_attempts: int = 3, retry_delay_s: float = 0.05,
                 timeout_s: float = 30.0,
                 chunk_frames: int = DEFAULT_CHUNK_FRAMES,
                 window: int = DEFAULT_WINDOW,
                 wire_frames: bool = False,
                 log_dir: Optional[str] = None) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown service transport {transport!r} "
                             f"(expected one of {', '.join(TRANSPORTS)})")
        if addresses is not None:
            if transport != "tcp":
                raise ValueError("explicit addresses require transport='tcp'")
            if not addresses:
                raise ValueError("addresses must name at least one server")
            if num_servers is not None and num_servers != len(addresses):
                raise ValueError(
                    f"num_servers={num_servers} disagrees with "
                    f"{len(addresses)} explicit address(es)")
            num_servers = len(addresses)
        if num_servers is not None and num_servers < 1:
            raise ValueError("num_servers must be positive")
        self.transport = transport
        self.addresses = [tuple(address) for address in addresses] if addresses else None
        self.num_servers = num_servers or min(
            _DEFAULT_NUM_SERVERS, os.cpu_count() or 1)
        self.retry_attempts = int(retry_attempts)
        self.retry_delay_s = float(retry_delay_s)
        self.timeout_s = float(timeout_s)
        self.chunk_frames = int(chunk_frames)
        self.window = int(window)
        #: advertised to callers (topology / parameter server): ``True`` asks
        #: them to forward original codec wire frames + per-job references
        #: instead of re-encoding partials to fp64 (``service_codec="wire"``)
        self.wire_frames = bool(wire_frames)
        self.log_dir = log_dir
        #: server-measured fold span records of the most recent ``timed=True``
        #: call (cleared per call) — same contract as ``AggregationPool``
        self.last_span_records: List[dict] = []
        self._servers: List[object] = []     # ServerProcess | InProcessServer | None
        self._clients: List[ServiceClient] = []
        self._locks: List[threading.Lock] = []
        self._dispatch: Optional[ThreadPoolExecutor] = None
        self._registry = None
        self._published: List[Dict[str, int]] = []
        self._respawns: List[int] = []

    # -------------------------------------------------------------- lifecycle
    def __getstate__(self):
        # Like the process pool, the service pool crosses pickle boundaries
        # (the tuner ships to training workers) resource-less: live sockets,
        # server handles and thread pools stay behind; the unpickled copy can
        # lazily start its own servers if it ever folds.
        state = self.__dict__.copy()
        for live in ("_servers", "_clients", "_locks", "_published", "_respawns"):
            state[live] = []
        state["_dispatch"] = None
        state["_registry"] = None
        return state

    def bind_telemetry(self, telemetry) -> None:
        """Adopt the run's metrics registry (``None``-registry telemetry is off)."""
        self._registry = getattr(telemetry, "registry", None)

    def _server_name(self, index: int) -> str:
        return f"server{index}"

    def _dial_tcp(self, host: str, port: int) -> FrameStream:
        sock = socket.create_connection((host, port), timeout=self.timeout_s)
        # Without NODELAY, Nagle holds each request's sub-MSS tail segment
        # whenever earlier data is unacked — which is precisely the pipelined
        # window's steady state.  (asyncio already sets it server-side.)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return FrameStream(sock)

    def _connect_factory(self, index: int):
        """The per-server dial callable handed to its :class:`ServiceClient`.

        Called on every (re)connect, so for spawned servers it is also the
        supervisor: a dead server process is respawned on a fresh port before
        dialing, which — combined with round-level replay in the client — is
        what lets a run survive a hard-killed aggregator.
        """
        if self.addresses is not None:
            host, port = self.addresses[index]
            return lambda: self._dial_tcp(host, port)
        if self.transport == "socketpair":
            return lambda: FrameStream(self._servers[index].connect())

        def dial() -> FrameStream:
            server = self._servers[index]
            if not server.alive:
                server.join(timeout=1.0)
                self._servers[index] = spawn_server(
                    name=self._server_name(index), log_dir=self.log_dir)
                self._respawns[index] += 1
            return self._dial_tcp(*self._servers[index].address)

        return dial

    def _ensure_started(self) -> None:
        if self._clients:
            return
        self.last_span_records = []
        if self.addresses is not None:
            self._servers = [None] * self.num_servers
        elif self.transport == "socketpair":
            self._servers = [
                InProcessServer(name=self._server_name(index)).start()
                for index in range(self.num_servers)]
        else:
            self._servers = [
                spawn_server(name=self._server_name(index), log_dir=self.log_dir)
                for index in range(self.num_servers)]
        self._respawns = [0] * self.num_servers
        self._published = [dict.fromkeys(
            ("connections", "reconnects", "requests", "bytes_sent",
             "bytes_received", "retried_rounds"), 0)
            for _ in range(self.num_servers)]
        self._clients = [
            ServiceClient(self._connect_factory(index),
                          name=self._server_name(index),
                          retry_attempts=self.retry_attempts,
                          retry_delay_s=self.retry_delay_s,
                          timeout_s=self.timeout_s,
                          chunk_frames=self.chunk_frames,
                          window=self.window)
            for index in range(self.num_servers)]
        self._locks = [threading.Lock() for _ in range(self.num_servers)]
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.num_servers,
            thread_name_prefix="repro-service-dispatch")

    def close(self) -> None:
        """Graceful drain (idempotent; the pool lazily restarts on next use).

        Every spawned/in-process server receives an ack'd shutdown and is
        joined; externally addressed servers only lose their connections —
        their lifecycle belongs to whoever started them.
        """
        clients, self._clients = self._clients, []
        servers, self._servers = self._servers, []
        for index, client in enumerate(clients):
            if self.addresses is not None:
                client.close()  # external servers outlive the pool
                continue
            server = servers[index]
            if isinstance(server, ServerProcess) and not server.alive:
                client.close()
                continue  # a dead spawned server needs no drain
            client.shutdown()
        for server in servers:
            if isinstance(server, ServerProcess):
                server.join(timeout=self.timeout_s)
            elif isinstance(server, InProcessServer):
                server.close()
        self._locks = []
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None

    # -------------------------------------------------------------- durability
    def on_resume(self, checkpoint: Dict) -> None:  # noqa: ARG002 — snapshot-keyed hook
        """Rebuild server accumulators to match the snapshot being resumed.

        Checkpoints land *between* rounds, when every round accumulator has
        been flushed — the snapshot's accumulator state is empty by
        construction, so freshly spawned servers are already correct.  What
        can disagree is a *surviving* server (externally managed, or reused
        across ``run()`` calls) still holding the half-accumulated round the
        killed run never flushed: reset every reachable server so the resumed
        rounds refold from clean accumulators, bit-identical to the
        uninterrupted run.
        """
        if not self._clients:
            return  # servers not started yet: they spawn empty, i.e. correct
        for client in self._clients:
            client.reset()

    # ------------------------------------------------------------------ folds
    def _count(self, metric: str, value, **labels) -> None:
        if self._registry is not None and value:
            self._registry.counter(metric, **labels).inc(value)

    def _publish_metrics(self) -> None:
        """Drain per-client transport counter deltas into the metrics registry."""
        if self._registry is None:
            return
        for index, client in enumerate(self._clients):
            published = self._published[index]
            labels = {"server": client.name}
            for stat, metric in (
                    ("connections", "repro_service_connections_total"),
                    ("reconnects", "repro_service_reconnects_total"),
                    ("requests", "repro_service_requests_total"),
                    ("bytes_sent", "repro_service_bytes_sent_total"),
                    ("bytes_received", "repro_service_bytes_received_total"),
                    ("retried_rounds", "repro_service_retried_rounds_total")):
                self._count(metric, client.stats[stat] - published[stat], **labels)
                published[stat] = client.stats[stat]
            if self._respawns[index]:
                self._count("repro_service_respawns_total",
                            self._respawns[index], **labels)
                self._respawns[index] = 0

    def _count_payloads(self, framed_lists, references_list) -> None:
        """Account fold payload bytes: per-codec frame bytes + reference bytes.

        The codec is sniffed from each frame's RWP1 header (``"unknown"`` for
        anything unparseable), which is what makes the compressed-wire savings
        visible per codec in run reports without decoding anything.
        """
        if self._registry is None:
            return
        by_codec: Dict[str, int] = {}
        for framed in framed_lists:
            for frame, _ in framed:
                try:
                    codec = frame_codec_name(frame)
                except ValueError:
                    codec = "unknown"
                by_codec[codec] = by_codec.get(codec, 0) + len(frame)
        for codec in sorted(by_codec):
            self._count("repro_service_frame_bytes_total", by_codec[codec],
                        codec=codec)
        self._count("repro_service_reference_bytes_total", sum(
            len(frame) for references in references_list if references
            for frame in references.values()))

    def _run_jobs(self, kind: str, jobs: Sequence[Tuple], run_one) -> List:
        """Dispatch one fold call's jobs across the servers (results job-order)."""
        self._ensure_started()
        self.last_span_records = []

        def execute(job):
            server_index = int(job[0]) % self.num_servers
            with self._locks[server_index]:
                return run_one(self._clients[server_index], job)

        assert self._dispatch is not None
        results_and_records = list(self._dispatch.map(execute, jobs))
        out = []
        for (key, result, record) in results_and_records:
            if record is not None:
                self.last_span_records.append(record)
            out.append((key, result))
        self._count("repro_service_folds_total", len(jobs), kind=kind)
        self._publish_metrics()
        return out

    def fold_shards(self, strategy, streaming: bool,
                    jobs: Sequence[Tuple[int, Sequence[Tuple[bytes, int]]]],
                    timed: bool = False
                    ) -> List[Tuple[int, List[Tuple[Tuple[int, int], bytes, int]]]]:
        """Fold every shard's framed updates on its pinned server (job order).

        Jobs are ``(shard, framed)`` or — compressed service wire —
        ``(shard, framed, references)``.
        """

        def run_one(client: ServiceClient, job):
            shard, framed = job[0], job[1]
            result, record = client.fold_shard(
                strategy, streaming, shard, framed, timed=timed,
                references=job[2] if len(job) > 2 else None)
            return shard, result, record

        out = self._run_jobs("shard", jobs, run_one)
        self._count_payloads([job[1] for job in jobs],
                             [job[2] if len(job) > 2 else None for job in jobs])
        return out

    def prefold_nodes(self, strategy,
                      jobs: Sequence[Tuple[int, int, Sequence[Tuple[bytes, int]]]],
                      timed: bool = False) -> List[Tuple[int, List[bytes]]]:
        """Pre-fold every tree node's framed updates on its pinned server.

        Jobs are ``(node, pseudo_id, framed)`` or — compressed service wire —
        ``(node, pseudo_id, framed, references)``.  The pseudo id also names
        the node's tree tier, counted into
        ``repro_service_tier_folds_total{tier=...}`` so inner-tier routing is
        visible in run reports.
        """

        def run_one(client: ServiceClient, job):
            node, pseudo_id, framed = job[0], job[1], job[2]
            result, record = client.prefold_node(
                strategy, node, pseudo_id, framed, timed=timed,
                references=job[3] if len(job) > 3 else None)
            return node, result, record

        out = self._run_jobs("node", jobs, run_one)
        if self._registry is not None and jobs:
            from ..federated.topology import tier_of_pseudo_id
            tiers = [tier_of_pseudo_id(job[1]) for job in jobs]
            for tier in sorted(set(tiers)):
                self._count("repro_service_tier_folds_total",
                            tiers.count(tier), tier=tier)
        self._count_payloads([job[2] for job in jobs],
                             [job[3] if len(job) > 3 else None for job in jobs])
        return out

    # -------------------------------------------------------------- inspection
    def server_stats(self) -> List[Dict]:
        """Live per-server lifetime counters (starts the servers if needed)."""
        self._ensure_started()
        return [client.server_stats() for client in self._clients]
