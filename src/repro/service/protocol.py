"""Request/response message format of the aggregation service.

One service message is one :mod:`repro.comm.stream` frame whose payload is::

    b"RWS1" | op (u8) | pickled body

``RWS1`` deliberately parallels the serialization layer's ``RWP1``: the
*contents* that matter — the expert updates and folded states inside request
bodies — travel as ordinary ``RWP1`` wire frames (lossless fp64, CRC-checked),
exactly the bytes the process-pool fold plane ships today; the service layer
only wraps them in an op byte and a pickled envelope for the RPC bookkeeping
(round tokens, shard/node ids, strategy).

Requests (client → server):

* ``OP_HELLO`` — protocol-version negotiation, sent once per connection
  before anything else.  The server acks a matching
  :data:`PROTOCOL_VERSION` and rejects a mismatch with a typed
  :class:`ServiceProtocolError` — and a *pre-versioning* server rejects the
  unknown op the same way — so an incompatible client/server pair fails
  fast on connect instead of mid-round.  Servers still serve HELLO-less
  connections (old clients keep working against new servers).
* ``OP_PING`` — liveness + server identity.
* ``OP_ADD`` — append one chunk of ``(frame, staleness)`` pairs to the round
  accumulator named by ``token``.  A token the server has not seen starts a
  fresh accumulator, so a reconnecting client replays its round under a new
  token and any half-filled accumulator from the dead connection is simply
  abandoned (and evicted at the next flush).  Each frame's declared codec is
  validated on arrival: a tag missing from the codec registry raises a typed
  :class:`UnknownCodecError` (surfaced client-side as the same class), never
  a downstream decode/pickle failure.  Clients may pipeline a bounded window
  of ADDs before reading acks — responses are returned in request order on
  each connection, so the sender drains exactly as many acks as it sent.
* ``OP_FLUSH_NODE`` / ``OP_FLUSH_SHARD`` — fold the token's accumulated
  frames with the request's strategy and return the node partials / per-key
  shard aggregates, clearing the accumulator.  These call the *same* worker
  fold functions as the process pool
  (:func:`repro.runtime.executor._prefold_node_frames` /
  :func:`~repro.runtime.executor._fold_shard_frames`), which is what makes
  the service backend bit-identical to pooled and serial folds.
* ``OP_RESET`` — drop every pending accumulator (checkpoint-resume hygiene).
* ``OP_STATS`` — the server's lifetime counters.
* ``OP_SHUTDOWN`` — graceful drain: the server acks, stops accepting, and
  exits once open connections finish.

Responses are ``OP_OK`` with a result body, or ``OP_ERR`` carrying the
server-side error string (re-raised client-side as :class:`ServiceError`).

Strategies cross the wire pre-pickled (via
:func:`repro.federated.strategies.picklable_strategy`, the same reduction the
process pool applies), so the envelope pickle itself stays cheap and the
server needs no strategy registry of its own.
"""

from __future__ import annotations

import pickle
from typing import Any, Tuple

#: service envelope magic (the inner payloads are RWP1 frames)
SERVICE_MAGIC = b"RWS1"

#: spoken protocol version, negotiated via ``OP_HELLO``.  v2 added HELLO
#: itself, per-frame codec validation on ADD, pipelined ADD windows and
#: per-job reference shipping on flush; the envelope format is unchanged.
PROTOCOL_VERSION = 2

OP_PING = 1
OP_ADD = 2
OP_FLUSH_NODE = 3
OP_FLUSH_SHARD = 4
OP_RESET = 5
OP_STATS = 6
OP_SHUTDOWN = 7
OP_HELLO = 8
OP_OK = 64
OP_ERR = 65

OP_NAMES = {
    OP_PING: "ping",
    OP_ADD: "add",
    OP_FLUSH_NODE: "flush_node",
    OP_FLUSH_SHARD: "flush_shard",
    OP_RESET: "reset",
    OP_STATS: "stats",
    OP_SHUTDOWN: "shutdown",
    OP_HELLO: "hello",
    OP_OK: "ok",
    OP_ERR: "err",
}


class ServiceProtocolError(ValueError):
    """A service message is malformed, or the peers speak different versions.

    Deliberately *not* a ``ConnectionError``: the client's reconnect/replay
    machinery must not retry a request the other end can never understand —
    version and format mismatches fail fast instead.
    """


class UnknownCodecError(ServiceProtocolError):
    """An ADD payload declares a codec id missing from the codec registry."""


class ServiceError(RuntimeError):
    """The server reported an error executing a request (``OP_ERR``)."""


def encode_message(op: int, body: Any = None) -> bytes:
    """One service message: magic, op byte, pickled body."""
    if not 0 <= op <= 255:
        raise ValueError(f"op must fit one byte, got {op}")
    return SERVICE_MAGIC + bytes((op,)) + pickle.dumps(
        body, protocol=pickle.HIGHEST_PROTOCOL)


def decode_message(frame: bytes) -> Tuple[int, Any]:
    """Invert :func:`encode_message`; raises :class:`ServiceProtocolError`."""
    header = len(SERVICE_MAGIC) + 1
    if len(frame) < header or frame[:len(SERVICE_MAGIC)] != SERVICE_MAGIC:
        raise ServiceProtocolError(
            "not a service message (bad magic or truncated header)")
    op = frame[len(SERVICE_MAGIC)]
    if op not in OP_NAMES:
        raise ServiceProtocolError(f"unknown service op {op}")
    try:
        body = pickle.loads(frame[header:])
    except Exception as error:
        raise ServiceProtocolError(f"undecodable message body: {error}") from error
    return op, body
