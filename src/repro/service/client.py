"""Blocking client for one aggregator server, with reconnect/retry/timeout.

A :class:`ServiceClient` owns one connection to one
:class:`~repro.service.server.AggregatorServer` (dialed lazily through a
``connect()`` factory, so TCP, ``socketpair`` and respawn-on-death transports
all look the same) and turns protocol round trips into method calls.

Failure handling is transactional at *round* granularity: a fold round is an
``OP_ADD`` chunk sequence followed by one flush, and the client buffers
nothing — the pool hands it the round's frames, so when the connection dies
anywhere inside the round (``ConnectionError``, a socket timeout, a
mid-frame :class:`~repro.comm.TruncatedFrameError`), the client reconnects
with backoff and replays the whole round under a **fresh token**.  The dead
attempt's half-accumulated state is thereby orphaned server-side (never
folded, evicted at the server's next flush), which is what makes retries
safe: a round folds from exactly one complete token or not at all.

The ADD sequence is *pipelined*: up to ``window`` chunks ride the connection
before the client reads an acknowledgement (the server answers every request,
in order, so the sender drains exactly as many acks as it sent before the
flush round-trips), and the round's *final* chunk rides the flush body
itself — so a round that fits one chunk (every tree-node prefold in
practice) is a single request/response, and every round saves one round
trip.  On TCP this removes the per-chunk RTT stall from the fold critical
path; correctness is unchanged because the whole-round-replay semantics
above never depended on *when* an ack is read — a connection that dies with
a window in flight just replays the round.  Each (re)connect opens
with an ``OP_HELLO`` version handshake, so mismatched peers fail fast with a
typed :class:`~repro.service.protocol.ServiceProtocolError` (never retried)
instead of corrupting a round.

Retries assume the ``connect`` factory can produce a working connection
again — for spawned servers the pool's factory respawns a dead process
first, which is how a hard-killed server mid-round heals (the CI
``service-smoke`` lane exercises exactly this).  When attempts are
exhausted, :class:`ServiceUnavailableError` surfaces to the run loop.
"""

from __future__ import annotations

import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..comm.stream import FrameStream
from .protocol import (
    OP_ADD,
    OP_ERR,
    OP_FLUSH_NODE,
    OP_FLUSH_SHARD,
    OP_HELLO,
    OP_OK,
    OP_PING,
    OP_RESET,
    OP_SHUTDOWN,
    OP_STATS,
    PROTOCOL_VERSION,
    ServiceError,
    ServiceProtocolError,
    UnknownCodecError,
    decode_message,
    encode_message,
)

#: frames per OP_ADD chunk: small enough that a round is a multi-request
#: streaming conversation (exercising the accumulator-between-requests path),
#: large enough that envelope overhead stays negligible
DEFAULT_CHUNK_FRAMES = 32

#: OP_ADD chunks in flight before the sender waits for an acknowledgement;
#: bounded so a slow server applies backpressure through the window rather
#: than through unbounded client-side socket buffering
DEFAULT_WINDOW = 8


class ServiceUnavailableError(ConnectionError):
    """Every connect/retry attempt against an aggregator server failed."""


class ServiceClient:
    """One retrying connection to one aggregator server (see module docstring).

    Not thread-safe: the pool serializes access per client with one lock per
    server connection.
    """

    def __init__(self, connect: Callable[[], "FrameStream"], *,
                 name: str = "server0",
                 retry_attempts: int = 3, retry_delay_s: float = 0.05,
                 timeout_s: float = 30.0,
                 chunk_frames: int = DEFAULT_CHUNK_FRAMES,
                 window: int = DEFAULT_WINDOW) -> None:
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        self._connect = connect
        self.name = name
        self.retry_attempts = int(retry_attempts)
        self.retry_delay_s = float(retry_delay_s)
        self.timeout_s = float(timeout_s)
        self.chunk_frames = int(chunk_frames)
        self.window = int(window)
        self._stream: Optional[FrameStream] = None
        self._token_counter = 0
        #: lifetime transport counters, drained into ``repro_service_*``
        #: metrics by the pool
        self.stats: Dict[str, int] = {
            "connections": 0, "reconnects": 0, "requests": 0,
            "bytes_sent": 0, "bytes_received": 0, "retried_rounds": 0,
        }

    # ------------------------------------------------------------- connection
    def _ensure_stream(self) -> FrameStream:
        if self._stream is None or self._stream.closed:
            stream = self._connect()
            stream.settimeout(self.timeout_s)
            self._stream = stream
            self.stats["connections"] += 1
            # Version handshake before anything else rides this connection: a
            # server speaking another protocol version rejects it with a
            # typed ServiceProtocolError (pre-versioning servers reject the
            # unknown op the same way), which is NOT retried — mismatched
            # peers fail fast instead of replaying a round they can never
            # complete.
            self._round_trip(OP_HELLO, {"version": PROTOCOL_VERSION})
        return self._stream

    def _drop_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def close(self) -> None:
        """Close the connection (idempotent; redialed lazily on next use)."""
        self._drop_stream()

    # --------------------------------------------------------------- requests
    def _send_request(self, stream: FrameStream, op: int, body) -> None:
        """Ship one request frame without waiting for its response."""
        sent_before = stream.bytes_sent
        try:
            stream.send_frame(encode_message(op, body))
        finally:
            self.stats["bytes_sent"] += stream.bytes_sent - sent_before

    def _recv_response(self, stream: FrameStream) -> object:
        """Read + check the next (in-order) response on the stream."""
        received_before = stream.bytes_received
        try:
            # Zero-copy receive: the view aliases the stream's reusable
            # buffer, and decode_message below fully materialises op + body
            # (pickle copies what it keeps) before the next receive reuses it.
            response = stream.recv_frame_view()
        finally:
            self.stats["bytes_received"] += stream.bytes_received - received_before
        if response is None:
            raise ConnectionError(
                f"server {self.name!r} closed the connection mid-request")
        self.stats["requests"] += 1
        response_op, response_body = decode_message(response)
        if response_op == OP_ERR:
            kind = (response_body.get("type")
                    if isinstance(response_body, dict) else None)
            detail = (f"{kind}: {response_body.get('error')}"
                      if isinstance(response_body, dict) else str(response_body))
            message = f"server {self.name!r} request failed: {detail}"
            # Re-raise the server's typed protocol failures as themselves so
            # callers can tell "this pairing can never work" (version/codec
            # mismatch — fail fast, never retried) from a generic fold error.
            if kind == "UnknownCodecError":
                raise UnknownCodecError(message)
            if kind == "ServiceProtocolError":
                raise ServiceProtocolError(message)
            raise ServiceError(message)
        if response_op != OP_OK:
            raise ServiceError(
                f"server {self.name!r} sent unexpected response op "
                f"{response_op}")
        return response_body

    def _round_trip(self, op: int, body) -> object:
        """One request/response on the live stream (no retry at this level)."""
        stream = self._ensure_stream()
        self._send_request(stream, op, body)
        return self._recv_response(stream)

    def _with_retries(self, transaction: Callable[[], object]) -> object:
        """Run ``transaction`` (one or more round trips), replaying it whole
        on connection failure, with backoff, up to ``retry_attempts``."""
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry_attempts):
            if attempt:
                self.stats["reconnects"] += 1
                time.sleep(self.retry_delay_s * attempt)
            try:
                return transaction()
            except (ConnectionError, OSError) as error:
                # Covers socket timeouts (TimeoutError is an OSError) and
                # TruncatedFrameError (a ConnectionError): the attempt's
                # token dies with the connection; the replay gets a new one.
                last_error = error
                self._drop_stream()
        raise ServiceUnavailableError(
            f"server {self.name!r} unreachable after {self.retry_attempts} "
            f"attempt(s): {last_error!r}") from last_error

    def call(self, op: int, body=None):
        """One retried request (for the single-round-trip ops)."""
        return self._with_retries(lambda: self._round_trip(op, body))

    # ------------------------------------------------------------ service API
    def ping(self) -> Dict:
        return self.call(OP_PING)

    def server_stats(self) -> Dict:
        return self.call(OP_STATS)

    def reset(self) -> Dict:
        return self.call(OP_RESET)

    def shutdown(self) -> None:
        """Graceful drain: ack'd stop; the server exits after this returns."""
        try:
            self.call(OP_SHUTDOWN)
        except (ServiceUnavailableError, ServiceError):
            pass  # already dead (or dying) is a successful shutdown
        self._drop_stream()

    def _next_token(self) -> str:
        self._token_counter += 1
        return f"{id(self)}-{self._token_counter}"

    def _fold_round(self, frames: Sequence[Tuple[bytes, int]], flush_op: int,
                    flush_body: Dict) -> Tuple[object, Optional[dict]]:
        """ADD-chunk the round's frames (pipelined), flush, return the result.

        Up to :attr:`window` ADD chunks are in flight before an ack is read;
        every outstanding ack is drained before the flush round-trips, so a
        fold never flushes past an unacknowledged window.  Chunks are encoded
        and sent one at a time (never pre-encoded as a batch: on a
        shared-CPU host that would serialize all client-side encoding ahead
        of the server's ingest), and the final chunk rides the flush body —
        a ≤ ``chunk_frames`` round is one single request/response.  Any
        failure inside the window — including an error ack for an *earlier*
        chunk — aborts the attempt and the round replays whole under a fresh
        token.
        """

        def transaction():
            token = self._next_token()  # fresh per attempt (see module docstring)
            stream = self._ensure_stream()
            chunks = [list(frames[start:start + self.chunk_frames])
                      for start in range(0, len(frames), self.chunk_frames)]
            flush = dict(flush_body, token=token)
            if chunks:
                flush["frames"] = chunks.pop()  # final chunk rides the flush
            inflight = 0
            for chunk in chunks:
                if inflight >= self.window:
                    self._recv_response(stream)
                    inflight -= 1
                self._send_request(stream, OP_ADD,
                                   {"token": token, "frames": chunk})
                inflight += 1
            while inflight:
                self._recv_response(stream)
                inflight -= 1
            body = self._round_trip(flush_op, flush)
            return body["result"], body.get("record")

        reconnects_before = self.stats["reconnects"]
        result = self._with_retries(transaction)
        if self.stats["reconnects"] != reconnects_before:
            self.stats["retried_rounds"] += 1
        return result

    @staticmethod
    def _pickle_strategy(strategy) -> Optional[bytes]:
        if strategy is None:
            return None
        from ..federated.strategies import picklable_strategy

        return pickle.dumps(picklable_strategy(strategy),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def prefold_node(self, strategy, node: int, pseudo_id: int,
                     frames: Sequence[Tuple[bytes, int]], timed: bool = False,
                     references: Optional[Dict] = None,
                     ) -> Tuple[List[bytes], Optional[dict]]:
        """Fold one tree node's framed updates into partial frames.

        ``references`` (compressed service wire only) maps ``(layer, expert)``
        keys to fp64 reference frames for any reference-requiring codec among
        ``frames``; it rides the flush body — not the ADDs — so a replayed
        round reships it automatically and the server stores nothing per-token.
        """
        body = {"strategy": self._pickle_strategy(strategy),
                "node": int(node), "pseudo_id": int(pseudo_id), "timed": timed}
        if references:
            body["references"] = references
        return self._fold_round(frames, OP_FLUSH_NODE, body)

    def fold_shard(self, strategy, streaming: bool, shard: int,
                   frames: Sequence[Tuple[bytes, int]], timed: bool = False,
                   references: Optional[Dict] = None,
                   ) -> Tuple[List[Tuple[Tuple[int, int], bytes, int]],
                              Optional[dict]]:
        """Fold one shard's framed updates into per-key aggregate frames.

        ``references`` semantics match :meth:`prefold_node`.
        """
        body = {"strategy": self._pickle_strategy(strategy),
                "streaming": bool(streaming), "shard": int(shard),
                "timed": timed}
        if references:
            body["references"] = references
        return self._fold_round(frames, OP_FLUSH_SHARD, body)
