"""Federated participants: local data, local resources, local fine-tuning.

A :class:`Participant` owns a non-IID shard of the dataset, a device profile,
and the resource budgets the paper derives from it (:math:`B_i` experts
loadable, :math:`B^{tune}_i` experts trainable per round).  The participant's
:meth:`Participant.local_finetune` runs genuine gradient-descent fine-tuning of
whichever experts the calling method marked trainable, and reports per-expert
gradient magnitudes and token counts — the raw signals Flux's expert-utility
definition consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..autograd import Adam
from ..data import Batch, Sample, SyntheticDataset, make_batches
from ..models import MoETransformer
from ..systems import CONSUMER_GPU, CostModel, DeviceProfile, MemoryModel

ExpertKey = Tuple[int, int]


@dataclass
class ParticipantResources:
    """Per-participant expert budgets (the paper's :math:`B_i` and :math:`B^{tune}_i`)."""

    max_experts: int          # experts loadable into GPU memory (B_i)
    max_tuning_experts: int   # experts trainable within the round budget (B_tune_i)

    def __post_init__(self) -> None:
        if self.max_experts < 1:
            raise ValueError("a participant must be able to load at least one expert")
        if self.max_tuning_experts < 1:
            raise ValueError("a participant must be able to tune at least one expert")
        if self.max_tuning_experts > self.max_experts:
            raise ValueError("cannot tune more experts than can be loaded")

    @property
    def max_non_tuning_experts(self) -> int:
        """Budget left for merged / frozen experts (B_i - B_tune_i)."""
        return self.max_experts - self.max_tuning_experts

    @classmethod
    def from_device(cls, memory: MemoryModel, device: DeviceProfile,
                    round_time_budget_s: float = 600.0,
                    tokens_per_round: float = 16 * 256) -> "ParticipantResources":
        """Derive budgets for a full-scale architecture from the device profile."""
        max_experts = max(memory.max_loadable_experts(device), 1)
        max_tuning = max(memory.max_tuning_experts(device, round_time_budget_s, tokens_per_round), 1)
        return cls(max_experts=max_experts, max_tuning_experts=min(max_tuning, max_experts))


@dataclass
class LocalTrainResult:
    """Outcome of one participant's local fine-tuning pass."""

    mean_loss: float
    num_batches: int
    num_tokens: int
    num_samples: int
    #: L2 norm of the accumulated gradient of each trainable expert
    expert_grad_norms: Dict[ExpertKey, float] = field(default_factory=dict)
    #: token assignments observed per expert (original-id coordinates)
    expert_token_counts: Dict[ExpertKey, int] = field(default_factory=dict)


class Participant:
    """One federated-learning participant."""

    def __init__(
        self,
        participant_id: int,
        dataset: SyntheticDataset,
        device: DeviceProfile = CONSUMER_GPU,
        resources: Optional[ParticipantResources] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("participant needs at least one local sample")
        self.participant_id = participant_id
        self.dataset = dataset
        self.device = device
        self.resources = resources or ParticipantResources(max_experts=8, max_tuning_experts=4)
        self.cost_model = cost_model
        self.seed = seed
        self._round_seed = seed

    # ------------------------------------------------------------------ data
    def __repr__(self) -> str:
        return (f"Participant(id={self.participant_id}, samples={len(self.dataset)}, "
                f"device={self.device.name})")

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    # ------------------------------------------------------------------ wire
    def make_channel(self, cost_model=None, faults=None, latency_s: float = 0.0):
        """Build this participant's metered uplink/downlink channel.

        Bandwidth comes from ``cost_model`` (the participant's own when not
        given); ``faults`` is a
        :class:`~repro.runtime.faults.ChannelFaultInjector` for payload
        loss/corruption.
        """
        from ..comm import Channel

        return Channel(
            participant_id=self.participant_id,
            cost_model=cost_model if cost_model is not None else self.cost_model,
            faults=faults,
            latency_s=latency_s,
        )

    def local_batches(self, batch_size: int, max_batches: Optional[int] = None,
                      sample_ids: Optional[Iterable[int]] = None,
                      max_seq_len: Optional[int] = None) -> List[Batch]:
        """Build this round's local batches (optionally restricted to ``sample_ids``)."""
        samples: Sequence[Sample] = self.dataset.samples
        if sample_ids is not None:
            wanted = set(int(s) for s in sample_ids)
            filtered = [s for s in samples if s.sample_id in wanted]
            if filtered:
                samples = filtered
        self._round_seed += 1
        batches = make_batches(samples, batch_size=batch_size, vocab=self.dataset.vocab,
                               shuffle=True, seed=self._round_seed, max_seq_len=max_seq_len)
        if max_batches is not None:
            batches = batches[:max_batches]
        return batches

    # -------------------------------------------------------------- training
    def local_finetune(
        self,
        model: MoETransformer,
        batches: Sequence[Batch],
        learning_rate: float = 5e-3,
        trainable_experts: Optional[Set[ExpertKey]] = None,
        iterations: int = 1,
    ) -> LocalTrainResult:
        """Fine-tune ``model`` in place on ``batches``.

        Only routed experts receive gradients.  When ``trainable_experts`` is
        given, experts outside the set are frozen (Flux / FMES); ``None`` makes
        every *local* expert trainable (FMD / FMQ).  Expert keys refer to the
        model's local expert slots.
        """
        if not batches:
            raise ValueError("local_finetune requires at least one batch")
        model.freeze_non_expert_parameters()
        if trainable_experts is not None:
            for layer_index, layer in enumerate(model.moe_layers()):
                for expert_index in range(len(layer.experts)):
                    trainable = (layer_index, expert_index) in trainable_experts
                    for param in layer.experts[expert_index].parameters():
                        param.requires_grad = trainable

        params = [p for p in model.parameters() if p.requires_grad]
        if not params:
            raise ValueError("no trainable experts selected")
        optimizer = Adam(params, lr=learning_rate)

        grad_sq: Dict[ExpertKey, float] = {}
        token_counts: Dict[ExpertKey, int] = {}
        losses: List[float] = []
        total_tokens = 0

        model.train()
        for _ in range(max(iterations, 1)):
            for batch in batches:
                optimizer.zero_grad()
                loss = model.compute_loss(
                    batch.input_ids,
                    labels=batch.labels,
                    attention_mask=batch.attention_mask,
                    sample_ids=batch.sample_ids,
                )
                if loss.requires_grad:
                    loss.backward()
                    self._accumulate_expert_stats(model, grad_sq, token_counts)
                    optimizer.step()
                # else: no routed token touched a trainable expert in this
                # batch — a legitimate zero-gradient step, not an error.
                losses.append(loss.item())
                total_tokens += batch.num_tokens

        grad_norms = {key: float(np.sqrt(value)) for key, value in grad_sq.items()}
        return LocalTrainResult(
            mean_loss=float(np.mean(losses)),
            num_batches=len(batches) * max(iterations, 1),
            num_tokens=total_tokens,
            num_samples=sum(batch.batch_size for batch in batches),
            expert_grad_norms=grad_norms,
            expert_token_counts=token_counts,
        )

    @staticmethod
    def _accumulate_expert_stats(model: MoETransformer, grad_sq: Dict[ExpertKey, float],
                                 token_counts: Dict[ExpertKey, int]) -> None:
        for layer_index, layer in enumerate(model.moe_layers()):
            for expert_index, expert in enumerate(layer.experts):
                key = (layer_index, expert_index)
                for param in expert.parameters():
                    if param.grad is not None:
                        grad_sq[key] = grad_sq.get(key, 0.0) + float((param.grad ** 2).sum())
            record = layer.last_routing
            if record is not None:
                for expert_index, count in enumerate(record.token_counts):
                    if count:
                        key = (layer_index, expert_index)
                        token_counts[key] = token_counts.get(key, 0) + int(count)
