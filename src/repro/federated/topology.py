"""Hierarchical aggregation topology: participants → edge aggregators → root.

A production fleet of millions cannot upload every expert update to one root
server.  :class:`HierarchicalTopology` inserts a tier of *edge aggregators*
between the participants and the (possibly sharded) parameter server: each
edge pre-folds its group's updates with the run's aggregation strategy and
forwards **one wire-framed partial aggregate per expert key** — carrying the
group's accumulated weight — over a metered :class:`~repro.comm.Channel` to
the root.  The root then aggregates the partials exactly as it would
aggregate client updates, so edge tiers compose with expert sharding and with
any :class:`~repro.federated.strategies.AggregationStrategy`.

For weighted FedAvg the two-tier weighted-mean-of-weighted-means is
mathematically the flat weighted mean (floating-point association differs,
the values agree to rounding).  Order statistics (trimmed mean, median)
become their standard hierarchical approximations: each tier applies the
robust reduction to what it received.

Edge-hop traffic is measured, not estimated: every partial crosses its edge's
channel, and the per-round byte/latency totals surface as
``RoundResult.edge_bytes`` / ``edge_seconds`` next to the participant-hop
wire metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..comm import (
    Channel,
    ChannelStats,
    PayloadCorruptedError,
    StreamingAggregator,
    decode_update,
    encode_update,
    get_codec,
)
from .aggregation import ExpertKey, ExpertUpdate

#: edge→root frames are lossless float64 — pre-folded partials must not lose
#: precision on the backhaul hop
EDGE_CODEC = "fp64"


class HierarchicalTopology:
    """A two-tier aggregation topology with ``num_edges`` edge aggregators.

    Parameters
    ----------
    num_edges:
        Number of edge aggregators in the tier.
    group_fn:
        Maps a participant id to its edge index (default: ``pid % num_edges``,
        a stable round-robin assignment).
    channels:
        Optional pre-built edge→root channels, one per edge.  The default
        builds unmetered-bandwidth :class:`~repro.comm.Channel`'s with
        ``latency_s`` per frame (edges are assumed to sit on datacenter-grade
        links; pass explicit channels to model constrained backhaul).
    latency_s:
        Per-frame edge→root latency for the default channels.
    """

    def __init__(self, num_edges: int,
                 group_fn: Optional[Callable[[int], int]] = None,
                 channels: Optional[List[Channel]] = None,
                 latency_s: float = 0.0) -> None:
        if num_edges < 1:
            raise ValueError("a hierarchical topology needs at least one edge aggregator")
        if channels is not None and len(channels) != num_edges:
            raise ValueError("one edge→root channel per edge aggregator is required")
        self.num_edges = int(num_edges)
        self._group_fn = group_fn
        self.channels = channels or [
            Channel(participant_id=edge, latency_s=latency_s)
            for edge in range(self.num_edges)
        ]
        #: participant updates folded per edge in the most recent round
        self.last_edge_counts: List[int] = [0] * self.num_edges

    def edge_of(self, participant_id: int) -> int:
        """The edge aggregator serving ``participant_id``."""
        if self._group_fn is not None:
            edge = int(self._group_fn(participant_id))
            if not 0 <= edge < self.num_edges:
                raise ValueError(
                    f"group_fn mapped participant {participant_id} to edge {edge}, "
                    f"outside [0, {self.num_edges})")
            return edge
        return int(participant_id) % self.num_edges

    # -------------------------------------------------------------- aggregation
    def partial_updates(self, edge: int,
                        aggregator: StreamingAggregator) -> List[ExpertUpdate]:
        """The edge's pre-folded partials, one update per expert key.

        The partial's weight is the group's accumulated (post-discount)
        weight, so the root's weighted fold treats the group exactly as one
        heavy contributor.  Edge partials carry a negative pseudo participant
        id (``-(edge + 1)``) so logs can tell tiers apart.

        Keys whose group contributed only zero-weight FedAvg updates are
        dropped (the pre-fold consumed the individual states, so the flat
        buffered path's uniform-mean fallback is impossible here): a
        zero-weight group simply contributes nothing to the root.
        """
        finalized = aggregator.finalize(skip_unfinalizable=True)
        return [
            ExpertUpdate(
                participant_id=-(edge + 1),
                layer=layer,
                expert=expert,
                state=state,
                weight=aggregator.total_weight((layer, expert)),
            )
            for (layer, expert), state in finalized.items()
        ]

    def aggregate(self, server, updates: Iterable[ExpertUpdate],
                  streaming: bool = False, strategy=None
                  ) -> Tuple[Dict[ExpertKey, int], ChannelStats]:
        """Run one round of two-tier aggregation into ``server``.

        Consumes ``updates`` one at a time (a generator streams straight into
        the edge accumulators), folds each into its participant's edge, ships
        every edge's partials over its metered channel as framed payloads, and
        hands the delivered partials to ``server.aggregate``.  Returns the
        root's contribution counts (partials folded per key — what the root
        actually received) plus the measured edge-hop :class:`ChannelStats`.
        """
        edge_aggregators = [StreamingAggregator(strategy) for _ in range(self.num_edges)]
        for update in updates:
            edge_aggregators[self.edge_of(update.participant_id)].add(update)
        self.last_edge_counts = [agg.num_updates for agg in edge_aggregators]

        codec = get_codec(EDGE_CODEC)
        stats = ChannelStats()

        def delivered_partials():
            for edge, aggregator in enumerate(edge_aggregators):
                if not len(aggregator):
                    continue
                for partial in self.partial_updates(edge, aggregator):
                    record = self.channels[edge].send(
                        encode_update(partial, codec), direction="up")
                    stats.record(record)
                    if not record.delivered:
                        continue
                    if record.corrupted:
                        # Same contract as the participant hop: a corrupted
                        # frame must fail its CRC and be dropped, never fold.
                        try:
                            yield decode_update(record.payload)
                        except PayloadCorruptedError:
                            stats.decode_failures += 1
                    else:
                        # Pristine frames skip the (lossless fp64) re-decode:
                        # the in-memory partial is byte-for-byte what a
                        # decode would reconstruct.
                        yield partial

        contributions = server.aggregate(delivered_partials(), streaming=streaming,
                                         strategy=strategy)
        return contributions, stats

    # ---------------------------------------------------------------- inspection
    def describe(self) -> Dict:
        """Topology shape summary (for logs and examples)."""
        return {
            "tiers": 2,
            "num_edges": self.num_edges,
            "edge_counts": list(self.last_edge_counts),
        }


def make_topology(config) -> Optional[HierarchicalTopology]:
    """The topology a :class:`~repro.federated.RunConfig` selects (or ``None``).

    ``num_edge_aggregators == 0`` keeps the flat single-tier path — the
    bit-identical legacy behaviour.
    """
    num_edges = int(getattr(config, "num_edge_aggregators", 0) or 0)
    if num_edges < 1:
        return None
    return HierarchicalTopology(
        num_edges, latency_s=float(getattr(config, "edge_latency_s", 0.0)))
