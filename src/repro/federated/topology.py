"""Generalized N-tier aggregation topology: participants → aggregator tiers → root.

A production fleet of millions cannot upload every expert update to one root
server.  :class:`AggregationTree` inserts *N tiers* of aggregator nodes
between the participants and the (possibly sharded) parameter server: each
tier-0 node pre-folds its participant group's updates with the run's
aggregation strategy and forwards **one wire-framed partial aggregate per
expert key** — carrying the group's accumulated weight — over a metered
:class:`~repro.comm.Channel` to its parent node; inner tiers fold the partials
they receive and forward their own partials upward, until the last tier's
partials stream into the root server.  Because the root aggregates partials
exactly as it would aggregate client updates, trees of any depth compose with
expert sharding and with any
:class:`~repro.federated.strategies.AggregationStrategy`.

For weighted FedAvg an N-tier weighted-mean-of-weighted-means is
mathematically the flat weighted mean (floating-point association differs,
the values agree to rounding).  Order statistics (trimmed mean, median)
become their standard hierarchical approximations: each tier applies the
robust reduction to what it received.

**Group assignment** is pluggable (:class:`GroupingPolicy`).  The default for
runs with per-participant cost models is :class:`CostAwareGrouping`: a greedy
longest-processing-time bin-pack on each participant's expert *upload cost*
(:func:`repro.systems.cost_model.upload_costs`), so slow uplinks spread
evenly across edges instead of piling onto ``pid % num_edges``.  Without cost
information it degrades to the stable round-robin assignment, which keeps
cost-less configurations bit-identical to the historical behaviour.

**Parallel pre-fold**: pass an
:class:`~repro.runtime.executor.AggregationPool` and every tier-0 node folds
its subtree in a process-pool worker — workers receive the updates as wire
frames (they already serialize losslessly) and return the node's partial
frames, so fold throughput scales with cores while staying bit-identical to
the serial fold (test-enforced).

Tier-hop traffic is measured, not estimated: every partial crosses its node's
channel, and the per-round byte/latency totals surface per tier as
``RoundResult.tier_bytes`` / ``tier_seconds`` / ``tier_payloads`` (with the
cross-tier totals kept in ``edge_bytes`` / ``edge_seconds`` for continuity).

:class:`HierarchicalTopology` remains as the depth-1 specialization
(participants → edges → root) with its historical constructor and round-robin
default, bit-identical to its pre-tree implementation.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..comm import (
    Channel,
    ChannelStats,
    PayloadCorruptedError,
    ScratchPool,
    StreamingAggregator,
    decode_update,
    encode_update,
    get_codec,
)
from ..obs import NULL_TRACER
from .aggregation import ExpertKey, ExpertUpdate

#: inter-tier frames are lossless float64 — pre-folded partials must not lose
#: precision on the backhaul hops
EDGE_CODEC = "fp64"

#: pseudo participant ids spacing between tiers: tier ``k`` node ``j`` frames
#: its partials as ``-(k * _TIER_ID_STRIDE + j + 1)``, so tier 0 keeps the
#: historical ``-(edge + 1)`` ids and logs can tell tiers apart.
_TIER_ID_STRIDE = 1000


def tier_of_pseudo_id(pseudo_id: int) -> int:
    """Invert :meth:`AggregationTree.pseudo_id` to its tier index.

    Non-negative (real participant) ids map to tier 0, so fold-plane record
    labelling stays sane on direct/benchmark calls that never built a tree.
    """
    return max(0, -int(pseudo_id) - 1) // _TIER_ID_STRIDE


# ------------------------------------------------------------------- grouping
class GroupingPolicy(abc.ABC):
    """Maps a participant id to its tier-0 aggregator node."""

    name: str = "base"

    @abc.abstractmethod
    def group_of(self, participant_id: int, num_groups: int) -> int:
        """The tier-0 node index serving ``participant_id``."""


class RoundRobinGrouping(GroupingPolicy):
    """The stable historical assignment: ``pid % num_groups``."""

    name = "round_robin"

    def group_of(self, participant_id: int, num_groups: int) -> int:
        return int(participant_id) % num_groups


class CallableGrouping(GroupingPolicy):
    """Adapts a user ``group_fn(pid) -> group`` (range-checked per call)."""

    name = "callable"

    def __init__(self, group_fn: Callable[[int], int]) -> None:
        self._group_fn = group_fn

    def group_of(self, participant_id: int, num_groups: int) -> int:
        group = int(self._group_fn(participant_id))
        if not 0 <= group < num_groups:
            raise ValueError(
                f"group_fn mapped participant {participant_id} to edge {group}, "
                f"outside [0, {num_groups})")
        return group


class CostAwareGrouping(GroupingPolicy):
    """Greedy LPT bin-pack of participants onto groups by upload cost.

    Participants with known costs are assigned longest-processing-time first
    (ties broken by ascending participant id) to the currently least-loaded
    group (ties broken by lowest group index), which balances the per-edge
    upload makespan instead of the participant *count*.  The assignment is a
    pure function of the cost map, so identically configured runs — and
    checkpoint resumes — reproduce it exactly.  Participants without a cost
    entry (and empty cost maps) fall back to round-robin, making the policy a
    drop-in default that only changes behaviour when cost models exist.
    """

    name = "cost_aware"

    def __init__(self, costs: Optional[Mapping[int, float]] = None) -> None:
        self.costs = dict(costs or {})
        self._assignments: Dict[int, Dict[int, int]] = {}

    def _assign(self, num_groups: int) -> Dict[int, int]:
        assignment = self._assignments.get(num_groups)
        if assignment is None:
            loads = [0.0] * num_groups
            assignment = {}
            for pid, cost in sorted(self.costs.items(),
                                    key=lambda item: (-item[1], item[0])):
                group = min(range(num_groups), key=lambda g: (loads[g], g))
                loads[group] += float(cost)
                assignment[pid] = group
            self._assignments[num_groups] = assignment
        return assignment

    def group_loads(self, num_groups: int) -> List[float]:
        """Accumulated upload cost per group under the current assignment."""
        loads = [0.0] * num_groups
        for pid, group in self._assign(num_groups).items():
            loads[group] += float(self.costs[pid])
        return loads

    def group_of(self, participant_id: int, num_groups: int) -> int:
        assigned = self._assign(num_groups).get(int(participant_id))
        if assigned is not None:
            return assigned
        return int(participant_id) % num_groups


def _resolve_grouping(grouping) -> GroupingPolicy:
    if grouping is None:
        return RoundRobinGrouping()
    if isinstance(grouping, GroupingPolicy):
        return grouping
    if callable(grouping):
        return CallableGrouping(grouping)
    raise TypeError(f"grouping must be a GroupingPolicy or callable, got {grouping!r}")


# ----------------------------------------------------------------------- tree
class AggregationTree:
    """An N-tier aggregation topology.

    Parameters
    ----------
    tiers:
        Aggregator-tier widths from the participant-facing tier inward: e.g.
        ``(6, 2)`` is participants → 6 edge nodes → 2 super-edge nodes → root.
    grouping:
        Participant→tier-0 assignment: a :class:`GroupingPolicy`, a bare
        ``group_fn(pid)`` callable, or ``None`` for round-robin.  Inner tiers
        always group node ``j`` under parent ``j % width`` — node ids are
        synthetic, so nothing cost-aware applies there.
    channels:
        Optional pre-built upward channels, one list per tier (``channels[k][j]``
        carries tier-``k`` node ``j``'s partials toward its parent).  The
        default builds unmetered-bandwidth :class:`~repro.comm.Channel`'s with
        ``latency_s`` per frame (aggregator nodes are assumed to sit on
        datacenter-grade links; pass explicit channels to model constrained
        backhaul).
    latency_s:
        Per-frame upward latency for the default channels.
    """

    def __init__(self, tiers: Sequence[int], grouping=None,
                 channels: Optional[Sequence[Sequence[Channel]]] = None,
                 latency_s: float = 0.0) -> None:
        widths = tuple(int(width) for width in tiers)
        if not widths or any(width < 1 for width in widths):
            raise ValueError(
                "an aggregation tree needs at least one tier of at least one "
                f"aggregator node (got tiers={tuple(tiers)!r})")
        self.tiers = widths
        self.grouping = _resolve_grouping(grouping)
        if channels is not None:
            tier_channels = [list(tier) for tier in channels]
            if [len(tier) for tier in tier_channels] != list(widths):
                raise ValueError(
                    "one upward channel per aggregator node is required "
                    f"(tiers {widths}, got {[len(t) for t in tier_channels]})")
            self.tier_channels = tier_channels
        else:
            self.tier_channels = [
                [Channel(participant_id=node, latency_s=latency_s)
                 for node in range(width)]
                for width in widths
            ]
        #: contributions folded per node per tier in the most recent round
        self.last_tier_counts: List[List[int]] = [[0] * w for w in widths]
        #: per-tier measured channel stats of the most recent round
        self.last_tier_stats: List[ChannelStats] = [ChannelStats() for _ in widths]
        #: persistent fold scratch for the *serial* tier folds (pooled folds
        #: run in workers, which keep their own per-thread pools); every
        #: serial fold this tree ever runs shares these term buffers
        self._fold_scratch = ScratchPool()

    # ----------------------------------------------------------------- shape
    @property
    def depth(self) -> int:
        """Number of aggregator tiers between the participants and the root."""
        return len(self.tiers)

    @property
    def num_edges(self) -> int:
        """Width of the participant-facing tier."""
        return self.tiers[0]

    @property
    def channels(self) -> List[Channel]:
        """The participant-facing tier's upward channels (legacy accessor)."""
        return self.tier_channels[0]

    @property
    def last_edge_counts(self) -> List[int]:
        """Participant updates folded per tier-0 node in the most recent round."""
        return self.last_tier_counts[0]

    def edge_of(self, participant_id: int) -> int:
        """The tier-0 aggregator node serving ``participant_id``."""
        return self.grouping.group_of(participant_id, self.tiers[0])

    def parent_of(self, tier: int, node: int) -> int:
        """The tier ``tier + 1`` node fed by tier-``tier`` node ``node``."""
        if tier >= self.depth - 1:
            raise ValueError(f"tier {tier} feeds the root, not a parent tier")
        return node % self.tiers[tier + 1]

    def pseudo_id(self, tier: int, node: int) -> int:
        """The negative participant id stamped on this node's partials."""
        return -(tier * _TIER_ID_STRIDE + node + 1)

    # -------------------------------------------------------------- aggregation
    def partial_updates(self, edge: int,
                        aggregator: StreamingAggregator) -> List[ExpertUpdate]:
        """A tier-0 node's pre-folded partials, one update per expert key.

        The partial's weight is the group's accumulated (post-discount)
        weight, so the parent's weighted fold treats the group exactly as one
        heavy contributor.  Partials carry a negative pseudo participant id
        (``-(edge + 1)`` at tier 0) so logs can tell tiers apart.

        Keys whose group contributed only zero-weight FedAvg updates are
        dropped (the pre-fold consumed the individual states, so the flat
        buffered path's uniform-mean fallback is impossible here): a
        zero-weight group simply contributes nothing upward.
        """
        return aggregator.partials(self.pseudo_id(0, edge))

    def _send(self, tier: int, node: int, partial: ExpertUpdate,
              frame: Optional[bytes], codec
              ) -> Tuple[Optional[ExpertUpdate], Optional[bytes]]:
        """Ship one partial over its node's channel; return what arrived.

        Returns ``(delivered update, delivered frame bytes)`` — both ``None``
        when the payload was lost or failed its CRC.  Pristine frames skip
        the (lossless fp64) re-decode: the in-memory partial is byte-for-byte
        what a decode would reconstruct.  A corrupted frame must fail its CRC
        and be dropped, never fold — the same contract as the participant
        hop; a corrupted-but-decodable payload returns the *received* bytes,
        which are what any downstream re-decode must see.
        """
        if frame is None:
            frame = encode_update(partial, codec)
        record = self.tier_channels[tier][node].send(frame, direction="up")
        self.last_tier_stats[tier].record(record)
        if not record.delivered:
            return None, None
        if record.corrupted:
            try:
                return decode_update(record.payload), bytes(record.payload)
            except PayloadCorruptedError:
                self.last_tier_stats[tier].decode_failures += 1
                return None, None
        return partial, frame

    def _fold_leaf_tier(self, updates: Iterable[ExpertUpdate], strategy,
                        pool, codec, tracer=NULL_TRACER
                        ) -> Dict[int, List[Tuple[ExpertUpdate, Optional[bytes]]]]:
        """Fold participant updates into tier-0 partials, serially or pooled.

        Returns ``{node: [(partial, frame-or-None), ...]}`` in node order of
        first appearance; per-node partial order is accumulator insertion
        order either way, so pooled and serial folds are bit-identical.
        """
        width = self.tiers[0]
        if pool is None:
            aggregators = [StreamingAggregator(strategy, scratch=self._fold_scratch)
                           for _ in range(width)]
            for update in updates:
                aggregators[self.edge_of(update.participant_id)].add(update)
            partials: Dict[int, List[Tuple[ExpertUpdate, Optional[bytes]]]] = {}
            for node, aggregator in enumerate(aggregators):
                self.last_tier_counts[0][node] = aggregator.num_updates
                if len(aggregator):
                    # The serial fold streams updates into all nodes at once,
                    # so the span covers the node's partial extraction (its
                    # finalize work); pooled folds time the whole subtree fold
                    # in their worker instead.
                    with tracer.span("prefold_node", category="fold", node=node,
                                     tier=0, num_updates=aggregator.num_updates):
                        partials[node] = [(partial, None)
                                          for partial in self.partial_updates(node, aggregator)]
            return partials
        # Pooled pre-fold: the updates cross the process boundary as wire
        # frames (plus their in-memory staleness, which does not travel in
        # frames) and each node's worker returns its partial frames.  Updates
        # that arrived as wire frames forward those bytes verbatim; with a
        # compressed-wire pool (``pool.wire_frames``) even delta-codec frames
        # forward, alongside one fp64-framed reference per expert key per
        # node (see :func:`~repro.runtime.executor.frame_update`).
        from ..runtime.executor import frame_update

        collect_refs = bool(getattr(pool, "wire_frames", False))
        framed: Dict[int, List[Tuple[bytes, int]]] = {}
        references: Dict[int, Dict] = {}
        for update in updates:
            node = self.edge_of(update.participant_id)
            node_refs = references.setdefault(node, {}) if collect_refs else None
            framed.setdefault(node, []).append(
                frame_update(update, references=node_refs))
            self.last_tier_counts[0][node] += 1
        jobs = [
            (node, self.pseudo_id(0, node), frames, references[node])
            if references.get(node) else (node, self.pseudo_id(0, node), frames)
            for node, frames in framed.items()
        ]
        folded = pool.prefold_nodes(strategy, jobs, timed=tracer.enabled)
        for record in pool.last_span_records:
            tracer.ingest(record)
        return {node: [(decode_update(frame), frame) for frame in partial_frames]
                for node, partial_frames in folded}

    def aggregate(self, server, updates: Iterable[ExpertUpdate],
                  streaming: bool = False, strategy=None, pool=None,
                  tracer=None) -> Tuple[Dict[ExpertKey, int], ChannelStats]:
        """Run one round of N-tier aggregation into ``server``.

        Consumes ``updates`` one at a time (a generator streams straight into
        the tier-0 accumulators), folds each into its participant's node,
        ships every node's partials over its metered channel as framed
        payloads tier by tier, and hands the last tier's delivered partials
        to ``server.aggregate``.  Returns the root's contribution counts
        (partials folded per key — what the root actually received) plus the
        cross-tier total of the measured :class:`ChannelStats` (per-tier
        breakdowns stay in :attr:`last_tier_stats`).

        ``pool`` (an :class:`~repro.runtime.executor.AggregationPool`) moves
        the tier-0 subtree folds into process-pool workers; inner tiers fold
        the handful of partials in-process.  Pooled folding buffers each
        node's update frames before dispatch, trading the serial path's
        one-update-at-a-time memory profile for parallel fold throughput.

        ``tracer`` (a :class:`~repro.obs.Tracer`) records per-node fold spans
        and per-(tier, node) transfer spans; ``None`` is the no-op tracer.
        """
        self.reset_round_metrics()
        if tracer is None:
            tracer = NULL_TRACER
        codec = get_codec(EDGE_CODEC)
        current = self._fold_leaf_tier(updates, strategy, pool, codec, tracer)
        return self._propagate(server, current, streaming, strategy, codec,
                               tracer, pool=pool)

    def reset_round_metrics(self) -> None:
        """Zero the per-round counts/stats.

        :meth:`aggregate` calls this *before* touching the update stream, so
        a round that delivers zero updates (or dies mid-fold) can never
        surface the previous round's counts as its own.
        """
        self.last_tier_counts = [[0] * width for width in self.tiers]
        self.last_tier_stats = [ChannelStats() for _ in self.tiers]

    def _propagate(self, server, current, streaming, strategy, codec,
                   tracer=NULL_TRACER, pool=None
                   ) -> Tuple[Dict[ExpertKey, int], ChannelStats]:
        """Ship tier-0 partials up the tree and into the root server."""
        # Inner tiers: deliver each node's partials to its parent aggregator,
        # re-fold, re-frame.  Nodes iterate in index order so channel fault
        # sequences are deterministic.  With a fold pool attached every inner
        # node becomes its own fold job — independent subtrees at each tier
        # fold concurrently (pool workers or aggregator servers) instead of
        # serializing on this loop; the jobs carry the delivered frames in
        # arrival order, so the worker's streaming fold is bit-identical to
        # the serial parent aggregator (test-enforced).
        for tier in range(self.depth - 1):
            parents = ([StreamingAggregator(strategy, scratch=self._fold_scratch)
                        for _ in range(self.tiers[tier + 1])]
                       if pool is None else [])
            inbox: Dict[int, List[Tuple[bytes, int]]] = {}
            for node in sorted(current):
                parent = self.parent_of(tier, node)
                with tracer.span("tier_send", category="transfer", tier=tier,
                                 node=node, partials=len(current[node])) as span:
                    airtime_before = self.last_tier_stats[tier].seconds
                    for partial, frame in current[node]:
                        delivered, delivered_frame = self._send(
                            tier, node, partial, frame, codec)
                        if delivered is None:
                            continue
                        if pool is None:
                            parents[parent].add(delivered)
                        else:
                            inbox.setdefault(parent, []).append(
                                (delivered_frame,
                                 getattr(delivered, "staleness", 0)))
                    span.set(sim_duration=self.last_tier_stats[tier].seconds
                             - airtime_before)
            current = {}
            if pool is not None:
                jobs = [(node, self.pseudo_id(tier + 1, node), inbox[node])
                        for node in sorted(inbox)]
                for node, _, framed in jobs:
                    self.last_tier_counts[tier + 1][node] = len(framed)
                folded = pool.prefold_nodes(strategy, jobs, timed=tracer.enabled)
                for record in pool.last_span_records:
                    tracer.ingest(record)
                current = {node: [(decode_update(frame), frame)
                                  for frame in partial_frames]
                           for node, partial_frames in folded}
                continue
            for node, aggregator in enumerate(parents):
                self.last_tier_counts[tier + 1][node] = aggregator.num_updates
                if len(aggregator):
                    with tracer.span("fold_node", category="fold", tier=tier + 1,
                                     node=node, num_updates=aggregator.num_updates):
                        current[node] = [(partial, None) for partial in
                                         aggregator.partials(self.pseudo_id(tier + 1, node))]

        def delivered_partials():
            tier = self.depth - 1
            for node in sorted(current):
                with tracer.span("tier_send", category="transfer", tier=tier,
                                 node=node, partials=len(current[node])) as span:
                    airtime_before = self.last_tier_stats[tier].seconds
                    for partial, frame in current[node]:
                        delivered, _ = self._send(tier, node, partial, frame, codec)
                        if delivered is not None:
                            yield delivered
                    span.set(sim_duration=self.last_tier_stats[tier].seconds
                             - airtime_before)

        contributions = server.aggregate(delivered_partials(), streaming=streaming,
                                         strategy=strategy)
        totals = ChannelStats()
        for tier_stats in self.last_tier_stats:
            totals.merge(tier_stats)
        return contributions, totals

    # ------------------------------------------------------------- durability
    def export_state(self) -> Dict:
        """Picklable snapshot: tree shape, grouping, per-tier channel positions."""
        return {
            "tiers": list(self.tiers),
            "grouping": self.grouping.name,
            # Cost-aware assignment is a pure function of the cost map, so
            # snapshotting the costs pins the participant→edge assignment.
            "grouping_costs": (dict(self.grouping.costs)
                               if isinstance(self.grouping, CostAwareGrouping)
                               else None),
            "channels": [[channel.export_state() for channel in tier]
                         for tier in self.tier_channels],
        }

    def import_state(self, state: Dict) -> None:
        """Restore an :meth:`export_state` snapshot (shape + grouping must match)."""
        if list(state["tiers"]) != list(self.tiers):
            raise ValueError(
                f"checkpoint topology has tiers {tuple(state['tiers'])} but the "
                f"resuming tuner's topology has tiers {self.tiers}")
        if state["grouping"] != self.grouping.name:
            # The RunConfig check cannot catch this: edge_grouping="cost_aware"
            # resolves to round_robin when cost models are absent, so the same
            # config can yield different *effective* groupings — and a changed
            # participant→edge assignment silently diverges from the
            # uninterrupted run.
            raise ValueError(
                f"checkpoint was written with {state['grouping']!r} edge "
                f"grouping but the resuming tuner groups {self.grouping.name!r} "
                "(did the participants' cost models change?)")
        saved_costs = state.get("grouping_costs")
        if isinstance(self.grouping, CostAwareGrouping) \
                and saved_costs != self.grouping.costs:
            raise ValueError(
                "checkpoint was written with different participant upload "
                "costs; the cost-aware edge assignment would change and the "
                "resumed run would silently diverge")
        for tier, tier_states in zip(self.tier_channels, state["channels"]):
            for channel, channel_state in zip(tier, tier_states):
                channel.import_state(channel_state)

    # ---------------------------------------------------------------- inspection
    def describe(self) -> Dict:
        """Topology shape summary (for logs and examples)."""
        return {
            "tiers": self.depth + 1,
            "tier_widths": list(self.tiers),
            "grouping": self.grouping.name,
            "num_edges": self.num_edges,
            "edge_counts": list(self.last_edge_counts),
            "tier_counts": [list(counts) for counts in self.last_tier_counts],
        }


class HierarchicalTopology(AggregationTree):
    """The two-tier specialization: participants → ``num_edges`` edges → root.

    Kept as the named depth-1 topology with its historical constructor; the
    default assignment stays the stable ``pid % num_edges`` round-robin, so
    standalone use is bit-identical to the pre-tree implementation.

    Parameters
    ----------
    num_edges:
        Number of edge aggregators in the tier.
    group_fn:
        Maps a participant id to its edge index (default: round-robin).
    channels:
        Optional pre-built edge→root channels, one per edge.
    latency_s:
        Per-frame edge→root latency for the default channels.
    grouping:
        A :class:`GroupingPolicy` overriding ``group_fn`` (e.g.
        :class:`CostAwareGrouping` from :func:`make_topology`).
    """

    def __init__(self, num_edges: int,
                 group_fn: Optional[Callable[[int], int]] = None,
                 channels: Optional[List[Channel]] = None,
                 latency_s: float = 0.0, grouping=None) -> None:
        if num_edges < 1:
            raise ValueError("a hierarchical topology needs at least one edge aggregator")
        if channels is not None and len(channels) != num_edges:
            raise ValueError("one edge→root channel per edge aggregator is required")
        if group_fn is not None and grouping is not None:
            raise ValueError("pass either group_fn or grouping, not both")
        super().__init__(
            (int(num_edges),),
            grouping=grouping if grouping is not None else group_fn,
            channels=[list(channels)] if channels is not None else None,
            latency_s=latency_s)


def make_topology(config, participant_costs: Optional[Mapping[int, float]] = None
                  ) -> Optional[AggregationTree]:
    """The topology a :class:`~repro.federated.RunConfig` selects (or ``None``).

    An empty tier spec (``num_edge_aggregators == 0`` and no ``edge_tiers``)
    keeps the flat single-tier path — the bit-identical legacy behaviour.
    ``participant_costs`` (per-participant upload seconds, see
    :func:`repro.systems.cost_model.upload_costs`) feeds the default
    cost-aware grouping; without it — or with
    ``edge_grouping="round_robin"`` — assignment is the stable round-robin.
    """
    if hasattr(config, "resolved_edge_tiers"):
        tiers = tuple(config.resolved_edge_tiers)
    else:
        num_edges = int(getattr(config, "num_edge_aggregators", 0) or 0)
        tiers = (num_edges,) if num_edges >= 1 else ()
    if not tiers:
        return None
    grouping: Optional[GroupingPolicy] = None
    if getattr(config, "edge_grouping", "cost_aware") == "cost_aware" and participant_costs:
        grouping = CostAwareGrouping(participant_costs)
    latency_s = float(getattr(config, "edge_latency_s", 0.0))
    if len(tiers) == 1:
        return HierarchicalTopology(tiers[0], latency_s=latency_s, grouping=grouping)
    return AggregationTree(tiers, grouping=grouping, latency_s=latency_s)
