"""Communication accounting for parameter exchange.

Thin helpers translating "how many experts moved between a participant and the
server" into bytes and (via the participant's device profile) seconds.  The
orchestrator charges these times into each round's cost breakdown.

``bytes_per_param`` follows the wire precision of the method: full-precision
methods ship FP16/BF16 (2 bytes), quantized methods ship ``bits / 8`` bytes per
parameter (see :meth:`ExchangePlan.for_bits`), so e.g. FMQ's INT4 round trips
charge a quarter of the FP16 transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..systems import CostModel

#: wire bytes per parameter for full-precision (FP16/BF16) exchange
FULL_PRECISION_BYTES_PER_PARAM = 2.0

#: bytes per quantization scale shipped on the wire (float32)
WIRE_SCALE_BYTES = 4.0


def bytes_per_param_for_bits(bits: int, group_size: Optional[float] = None,
                             scale_bytes: float = WIRE_SCALE_BYTES) -> float:
    """Wire bytes per parameter when experts are quantized to ``bits`` bits.

    Without ``group_size`` this is the pure-payload ``bits / 8`` estimate.
    With it, the per-group quantization scale is charged too —
    ``group_size`` is the number of parameters sharing one scale (for the
    row-quantized wire codecs, the row length) — which is what the measured
    payload sizes of :mod:`repro.comm` actually ship.
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    per_param = bits / 8.0
    if group_size is not None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        per_param += scale_bytes / float(group_size)
    return per_param


@dataclass
class ExchangePlan:
    """Experts a participant downloads and uploads in one round."""

    download_experts: int
    upload_experts: int
    bytes_per_param: float = FULL_PRECISION_BYTES_PER_PARAM

    @classmethod
    def for_bits(cls, download_experts: int, upload_experts: int, bits: int,
                 group_size: Optional[float] = None) -> "ExchangePlan":
        """An exchange whose payloads are quantized to ``bits`` bits/param."""
        return cls(download_experts=download_experts, upload_experts=upload_experts,
                   bytes_per_param=bytes_per_param_for_bits(bits, group_size=group_size))

    @classmethod
    def for_codec(cls, download_experts: int, upload_experts: int, codec,
                  group_size: Optional[float] = None) -> "ExchangePlan":
        """An exchange priced from a wire codec's analytic bytes/param."""
        return cls(download_experts=download_experts, upload_experts=upload_experts,
                   bytes_per_param=codec.wire_bytes_per_param(group_size))

    def communication_seconds(self, cost_model: CostModel) -> float:
        """Total transfer time for this exchange on the participant's link."""
        down = cost_model.download_time(self.download_experts, bytes_per_param=self.bytes_per_param)
        up = cost_model.upload_time(self.upload_experts, bytes_per_param=self.bytes_per_param)
        return down + up

    def total_bytes(self, cost_model: CostModel) -> float:
        per_expert = cost_model.memory.params_per_expert * self.bytes_per_param
        return (self.download_experts + self.upload_experts) * per_expert

    def payload_bytes(self, params_per_expert: float) -> float:
        """Analytic payload bytes for experts of ``params_per_expert`` params.

        The cross-check for measured wire traffic: frame headers excluded,
        codec payload (including group scales when ``bytes_per_param`` came
        from :meth:`for_bits`/:meth:`for_codec` with a ``group_size``)
        included.
        """
        per_expert = float(params_per_expert) * self.bytes_per_param
        return (self.download_experts + self.upload_experts) * per_expert
