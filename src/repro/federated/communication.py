"""Communication accounting for parameter exchange.

Thin helpers translating "how many experts moved between a participant and the
server" into bytes and (via the participant's device profile) seconds.  The
orchestrator charges these times into each round's cost breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..systems import CostModel


@dataclass
class ExchangePlan:
    """Experts a participant downloads and uploads in one round."""

    download_experts: int
    upload_experts: int
    bytes_per_param: int = 2

    def communication_seconds(self, cost_model: CostModel) -> float:
        """Total transfer time for this exchange on the participant's link."""
        down = cost_model.download_time(self.download_experts, bytes_per_param=self.bytes_per_param)
        up = cost_model.upload_time(self.upload_experts, bytes_per_param=self.bytes_per_param)
        return down + up

    def total_bytes(self, cost_model: CostModel) -> float:
        per_expert = cost_model.memory.params_per_expert * self.bytes_per_param
        return (self.download_experts + self.upload_experts) * per_expert
