"""Communication accounting for parameter exchange.

Thin helpers translating "how many experts moved between a participant and the
server" into bytes and (via the participant's device profile) seconds.  The
orchestrator charges these times into each round's cost breakdown.

``bytes_per_param`` follows the wire precision of the method: full-precision
methods ship FP16/BF16 (2 bytes), quantized methods ship ``bits / 8`` bytes per
parameter (see :meth:`ExchangePlan.for_bits`), so e.g. FMQ's INT4 round trips
charge a quarter of the FP16 transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..systems import CostModel

#: wire bytes per parameter for full-precision (FP16/BF16) exchange
FULL_PRECISION_BYTES_PER_PARAM = 2.0


def bytes_per_param_for_bits(bits: int) -> float:
    """Wire bytes per parameter when experts are quantized to ``bits`` bits."""
    if bits < 1:
        raise ValueError("bits must be positive")
    return bits / 8.0


@dataclass
class ExchangePlan:
    """Experts a participant downloads and uploads in one round."""

    download_experts: int
    upload_experts: int
    bytes_per_param: float = FULL_PRECISION_BYTES_PER_PARAM

    @classmethod
    def for_bits(cls, download_experts: int, upload_experts: int,
                 bits: int) -> "ExchangePlan":
        """An exchange whose payloads are quantized to ``bits`` bits/param."""
        return cls(download_experts=download_experts, upload_experts=upload_experts,
                   bytes_per_param=bytes_per_param_for_bits(bits))

    def communication_seconds(self, cost_model: CostModel) -> float:
        """Total transfer time for this exchange on the participant's link."""
        down = cost_model.download_time(self.download_experts, bytes_per_param=self.bytes_per_param)
        up = cost_model.upload_time(self.upload_experts, bytes_per_param=self.bytes_per_param)
        return down + up

    def total_bytes(self, cost_model: CostModel) -> float:
        per_expert = cost_model.memory.params_per_expert * self.bytes_per_param
        return (self.download_experts + self.upload_experts) * per_expert
