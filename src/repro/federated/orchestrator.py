"""The federated fine-tuning round loop shared by Flux and all baselines.

:class:`FederatedFineTuner` owns everything common to every method: participant
sampling, the synchronous round structure, FedAvg aggregation, simulated-time
accounting and per-round evaluation.  Concrete methods (Flux, FMD, FMQ, FMES)
implement a single hook — :meth:`FederatedFineTuner.participant_round` — that
runs one participant's local work and returns its expert updates plus a cost
breakdown.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import SyntheticDataset
from ..metrics import PerformanceTracker, evaluate_model
from ..models import MoETransformer
from ..systems import CostModel, RoundCostBreakdown, RoundTimeline, RunTimeline, SimulatedClock
from .aggregation import ExpertUpdate
from .client import Participant
from .server import ParameterServer


@dataclass
class RunConfig:
    """Hyper-parameters of one federated fine-tuning run.

    Mirrors the paper's §8.1 settings (mini-batch 16, one local iteration per
    round, 20 participants per round) with a learning rate recalibrated for the
    mini models.
    """

    batch_size: int = 16
    local_iterations: int = 1
    learning_rate: float = 5e-3
    max_local_batches: Optional[int] = 2
    participants_per_round: Optional[int] = None   # None = all participants
    eval_batch_size: int = 16
    eval_max_samples: Optional[int] = 64
    target_relative_accuracy: float = 1.0
    seed: int = 0


@dataclass
class ParticipantRoundResult:
    """What one participant returns to the server at the end of a round."""

    updates: List[ExpertUpdate]
    breakdown: RoundCostBreakdown
    train_loss: float
    overlap_profiling: bool = False
    #: optional scalar report (e.g. expert utilities) consumed by the method
    report: Dict = field(default_factory=dict)


@dataclass
class RoundResult:
    """Aggregate outcome of one federated round."""

    round_index: int
    train_loss: float
    metric_value: float
    simulated_time: float
    round_duration: float
    timeline: RoundTimeline


@dataclass
class RunResult:
    """Full outcome of a federated fine-tuning run."""

    method: str
    tracker: PerformanceTracker
    timeline: RunTimeline
    rounds: List[RoundResult]

    @property
    def total_time(self) -> float:
        return self.timeline.total_time()

    def time_to_target(self) -> Optional[float]:
        return self.tracker.time_to_target()

    def final_metric(self) -> float:
        return self.tracker.final_metric()


class FederatedFineTuner(abc.ABC):
    """Base class implementing the synchronous federated round loop."""

    #: human-readable method name used in benchmark reports
    name: str = "base"

    def __init__(
        self,
        server: ParameterServer,
        participants: Sequence[Participant],
        test_dataset: SyntheticDataset,
        cost_models: Optional[Dict[int, CostModel]] = None,
        config: Optional[RunConfig] = None,
    ) -> None:
        if not participants:
            raise ValueError("at least one participant is required")
        self.server = server
        self.participants = list(participants)
        self.test_dataset = test_dataset
        self.cost_models = cost_models or {}
        self.config = config or RunConfig()
        self.clock = SimulatedClock()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        """Run one participant's local work for this round."""

    def before_round(self, round_index: int, selected: Sequence[Participant]) -> None:
        """Hook invoked before local work starts (e.g. Flux's role assignment)."""

    def after_aggregation(self, round_index: int,
                          results: Dict[int, ParticipantRoundResult]) -> None:
        """Hook invoked after the server aggregated this round's updates."""

    # ------------------------------------------------------------------- loop
    def select_participants(self, round_index: int) -> List[Participant]:
        """Choose the participants taking part in this round."""
        per_round = self.config.participants_per_round
        if per_round is None or per_round >= len(self.participants):
            return list(self.participants)
        picked = self._rng.choice(len(self.participants), size=per_round, replace=False)
        return [self.participants[int(i)] for i in picked]

    def cost_model_for(self, participant: Participant) -> Optional[CostModel]:
        return self.cost_models.get(participant.participant_id, participant.cost_model)

    def evaluate(self) -> float:
        """Evaluate the global model on the held-out test set."""
        return evaluate_model(
            self.server.global_model,
            self.test_dataset,
            batch_size=self.config.eval_batch_size,
            max_samples=self.config.eval_max_samples,
            seed=self.config.seed,
        )

    def target_metric(self) -> float:
        """Absolute metric value corresponding to relative accuracy 1.0."""
        return self.test_dataset.spec.mini_target * self.config.target_relative_accuracy

    def run_round(self, round_index: int) -> Tuple[RoundResult, Dict[int, ParticipantRoundResult]]:
        """Execute one synchronous federated round."""
        selected = self.select_participants(round_index)
        self.before_round(round_index, selected)

        timeline = RoundTimeline(round_index=round_index)
        results: Dict[int, ParticipantRoundResult] = {}
        all_updates: List[ExpertUpdate] = []
        losses: List[float] = []

        for participant in selected:
            result = self.participant_round(participant, round_index)
            results[participant.participant_id] = result
            timeline.record_participant(participant.participant_id, result.breakdown,
                                        overlap_profiling=result.overlap_profiling)
            all_updates.extend(result.updates)
            losses.append(result.train_loss)

        self.server.aggregate(all_updates)
        server_cost = self._server_aggregation_time(len(all_updates))
        timeline.server_time = server_cost
        self.after_aggregation(round_index, results)

        duration = timeline.round_duration()
        simulated_time = self.clock.advance(duration)
        metric = self.evaluate()
        round_result = RoundResult(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            metric_value=metric,
            simulated_time=simulated_time,
            round_duration=duration,
            timeline=timeline,
        )
        return round_result, results

    def _server_aggregation_time(self, num_updates: int) -> float:
        if not self.cost_models:
            return 0.0
        any_cost_model = next(iter(self.cost_models.values()))
        return any_cost_model.aggregation_time(num_updates)

    def run(self, num_rounds: int, stop_at_target: bool = False,
            target_metric: Optional[float] = None) -> RunResult:
        """Run ``num_rounds`` federated rounds (optionally stopping at the target)."""
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        goal = target_metric if target_metric is not None else self.target_metric()
        tracker = PerformanceTracker(target=goal)
        run_timeline = RunTimeline()
        rounds: List[RoundResult] = []

        for round_index in range(num_rounds):
            round_result, _ = self.run_round(round_index)
            rounds.append(round_result)
            run_timeline.add(round_result.timeline)
            tracker.record(
                round_index=round_index,
                simulated_time=round_result.simulated_time,
                metric_value=round_result.metric_value,
                train_loss=round_result.train_loss,
            )
            if stop_at_target and round_result.metric_value >= goal:
                break

        return RunResult(method=self.name, tracker=tracker, timeline=run_timeline, rounds=rounds)
