"""The federated fine-tuning orchestration shared by Flux and all baselines.

:class:`FederatedFineTuner` owns everything common to every method: the hooks
one participant round implements, FedAvg aggregation, simulated-time accounting
and per-round evaluation.  Concrete methods (Flux, FMD, FMQ, FMES) implement a
single hook — :meth:`FederatedFineTuner.participant_round` — that runs one
participant's local work and returns its expert updates plus a cost breakdown.

*When* and *on what* participant work runs is delegated to the
:mod:`repro.runtime` subsystem: :meth:`FederatedFineTuner.run` hands the loop
to the scheduler selected by :attr:`RunConfig.scheduler` (synchronous FedAvg by
default, reproducing the legacy loop exactly; deadline-based semi-synchronous
and FedBuff-style asynchronous aggregation otherwise), which also applies
client sampling, fault injection and — for round-based schedulers — optional
process-pool parallel local training.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data import SyntheticDataset
from ..metrics import PerformanceTracker, evaluate_model
from ..systems import CostModel, RoundCostBreakdown, RoundTimeline, RunTimeline, SimulatedClock
from .aggregation import ExpertUpdate
from .client import Participant
from .server import ParameterServer

#: default wire codec: lossless for the float64 default models, so enabling
#: ``transport="wire"`` alone does not change learning dynamics.
#: ``RunConfig.codec`` keeps ``None`` as "no explicit choice" so methods with
#: a natural wire format (FMQ ships its quantization bits) can override the
#: default without clobbering an explicit user selection.
DEFAULT_WIRE_CODEC = "fp64"


@dataclass
class RunConfig:
    """Hyper-parameters of one federated fine-tuning run.

    Mirrors the paper's §8.1 settings (mini-batch 16, one local iteration per
    round, 20 participants per round) with a learning rate recalibrated for the
    mini models.  The runtime block selects the :mod:`repro.runtime` scheduling
    policy; the defaults reproduce the legacy synchronous loop exactly.
    """

    batch_size: int = 16
    local_iterations: int = 1
    learning_rate: float = 5e-3
    max_local_batches: Optional[int] = 2
    participants_per_round: Optional[int] = None   # None = all participants
    eval_batch_size: int = 16
    eval_max_samples: Optional[int] = 64
    target_relative_accuracy: float = 1.0
    seed: int = 0

    # --- runtime: aggregation policy (repro.runtime.scheduler)
    scheduler: str = "sync"                  # "sync" | "semisync" | "async"
    deadline_seconds: Optional[float] = None     # semisync: fixed round deadline
    deadline_quantile: float = 0.8           # semisync: else this duration quantile
    buffer_size: int = 4                     # async: updates per aggregation
    staleness_exponent: float = 0.5          # async: update weight (1+s)^-a
    async_concurrency: Optional[int] = None  # async: concurrent clients (None = participants_per_round)

    # --- runtime: client sampling (repro.runtime.sampling)
    sampler: str = "uniform"                 # "uniform" | "resource_aware" | "availability"
    availability_trace: Optional[Mapping[int, Sequence[int]]] = None

    # --- runtime: fault injection (repro.runtime.faults)
    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0

    # --- runtime: local-training executor (repro.runtime.executor)
    executor: str = "serial"                 # "serial" | "process"
    executor_workers: Optional[int] = None

    # --- comm: wire transport (repro.comm)
    transport: str = "analytic"              # "analytic" | "wire"
    codec: Optional[str] = None              # wire codec tag; None = method default
    streaming_aggregation: bool = False      # fold updates server-side as they arrive
    channel_loss_prob: float = 0.0           # wire: per-payload loss probability
    channel_corrupt_prob: float = 0.0        # wire: per-payload corruption probability
    #: wire: per-payload link latency folded into the *measured* airtime
    #: (``RoundResult.wire_seconds``); the simulated clock keeps charging the
    #: methods' analytic communication estimates, so this knob affects
    #: reporting, not time-to-accuracy
    channel_latency_s: float = 0.0

    # --- aggregation topology (repro.federated.{strategies,server,topology})
    #: aggregation strategy: "fedavg" | "trimmed_mean" | "median" |
    #: "staleness_fedavg".  Note: the built-in round-based schedulers always
    #: produce staleness-0 updates, so "staleness_fedavg" only discounts when
    #: a custom scheduler (or direct ``server.aggregate`` use) stamps
    #: ``ExpertUpdate.staleness``; with scheduler="async" it is rejected (the
    #: async scheduler already pre-discounts weights).  Any explicit strategy
    #: also bypasses the buffered FedAvg path's all-zero-weight uniform
    #: fallback (streaming accumulators raise instead).
    aggregation: str = "fedavg"
    trim_ratio: float = 0.1                  # trimmed_mean: fraction trimmed per side
    num_shards: int = 1                      # expert shards at the root server
    num_edge_aggregators: int = 0            # edge tier size (0 = flat, single tier)
    #: aggregator-tier widths, participant-facing first: ``(6, 2)`` is
    #: participants → 6 edges → 2 super-edges → root.  ``None`` derives a
    #: single tier from ``num_edge_aggregators`` (the legacy knob; if both are
    #: set they must agree on the first tier's width).
    edge_tiers: Optional[Sequence[int]] = None
    #: participant→edge assignment: "cost_aware" greedy-bin-packs on each
    #: participant's upload cost when cost models exist (falling back to
    #: round-robin without them — bit-identical to the legacy assignment);
    #: "round_robin" forces ``pid % num_edges`` unconditionally.
    edge_grouping: str = "cost_aware"
    edge_latency_s: float = 0.0              # per-frame inter-tier link latency

    # --- aggregation executor (repro.runtime.executor.AggregationPool)
    #: "process" folds expert shards and tree-node subtrees in a process
    #: pool (bit-identical to serial, test-enforced); "service" folds them
    #: through long-lived socket-backed aggregator servers
    #: (:class:`repro.service.ServiceAggregationPool` — also bit-identical,
    #: test-enforced); "serial" is the single-thread legacy fold.
    aggregation_executor: str = "serial"
    aggregation_workers: Optional[int] = None

    # --- aggregation service (aggregation_executor="service", repro.service)
    #: "tcp" spawns one aggregator server child process per shard/subtree on
    #: ephemeral localhost ports; "socketpair" runs them on in-process
    #: background-thread accept loops (same protocol, zero network setup)
    service_transport: str = "tcp"
    #: per-round connect/replay attempts before ServiceUnavailableError
    service_retry_attempts: int = 3
    service_retry_delay_s: float = 0.05      # linear backoff between attempts
    service_timeout_s: float = 30.0          # per-request socket timeout
    #: write one append-mode log file per spawned TCP server under this
    #: directory (``scripts/service_smoke.py`` uploads it on CI failure)
    service_log_dir: Optional[str] = None
    #: codec of fold payloads on the service wire: "fp64" re-encodes every
    #: update as a lossless fp64 frame (the default); "wire" forwards the
    #: round's *original* codec frames verbatim — the servers decode exactly
    #: the bytes the serial path decoded, so results stay bit-identical while
    #: compressed rounds (e.g. ``codec="topk:0.25:int4"``) ship a fraction of
    #: the fp64 bytes (each delta-codec key's fp64 reference ships once per
    #: fold job; raw in-memory partials still travel as fp64)
    service_codec: str = "fp64"
    #: OP_ADD chunks in flight per connection before the client waits for an
    #: acknowledgement (1 = the fully synchronous legacy request/response;
    #: larger windows pipeline the round's uploads, hiding per-request RTT —
    #: reconnect-and-replay-the-whole-round absorbs window loss unchanged)
    service_window: int = 8

    # --- durability (repro.runtime.checkpoint)
    checkpoint_every: int = 0                # snapshot run state every K rounds (0 = off)
    checkpoint_dir: Optional[str] = None     # where snapshots land (required if every > 0)
    checkpoint_keep_last: int = 0            # prune all but the K newest snapshots (0 = keep all)
    #: up to K consecutive sparse-delta model snapshots between full ones
    #: (0 = every snapshot full); resume is bit-identical either way
    checkpoint_delta_every: int = 0
    #: encode + write snapshots on a background thread (single outstanding
    #: write), keeping checkpoint IO off the round loop's critical path
    checkpoint_async: bool = False

    # --- observability (repro.obs)
    #: span tracing + metrics + exporters for the run; the default no-op
    #: telemetry costs nothing on the hot path (gated by
    #: ``perf_harness.py --suite telemetry``)
    telemetry: bool = False
    telemetry_dir: Optional[str] = None      # trace/metrics output dir (required if on)

    def __post_init__(self) -> None:
        if self.scheduler not in ("sync", "semisync", "async"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.sampler not in ("uniform", "resource_aware", "availability"):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.executor not in ("serial", "process"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.transport not in ("analytic", "wire"):
            raise ValueError(f"unknown transport {self.transport!r}")
        for name in ("dropout_prob", "straggler_prob",
                     "channel_loss_prob", "channel_corrupt_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        if self.channel_latency_s < 0.0:
            raise ValueError("channel_latency_s must be non-negative")
        if self.codec is not None:
            from ..comm import get_codec

            try:
                get_codec(self.codec)  # fail fast on unknown codec tags
            except KeyError as exc:
                raise ValueError(str(exc)) from exc
        from .strategies import available_strategies

        if self.aggregation not in available_strategies():
            raise ValueError(
                f"unknown aggregation strategy {self.aggregation!r} "
                f"(expected one of {', '.join(available_strategies())})")
        if self.scheduler == "async" and self.aggregation == "staleness_fedavg":
            raise ValueError(
                "scheduler='async' already discounts update weights by the "
                "FedBuff staleness factor; combining it with "
                "aggregation='staleness_fedavg' would apply the discount twice "
                "— use aggregation='fedavg' (async) or a round-based scheduler "
                "(staleness_fedavg)")
        if not 0.0 <= self.trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.num_edge_aggregators < 0:
            raise ValueError("num_edge_aggregators must be non-negative")
        if self.edge_tiers is not None:
            tiers = tuple(int(width) for width in self.edge_tiers)
            if not tiers or any(width < 1 for width in tiers):
                raise ValueError(
                    "edge_tiers must be a non-empty sequence of positive widths")
            if self.num_edge_aggregators and self.num_edge_aggregators != tiers[0]:
                raise ValueError(
                    f"edge_tiers[0]={tiers[0]} disagrees with "
                    f"num_edge_aggregators={self.num_edge_aggregators}; set one "
                    "(or make them match)")
            self.edge_tiers = tiers
        if self.edge_grouping not in ("cost_aware", "round_robin"):
            raise ValueError(f"unknown edge grouping {self.edge_grouping!r}")
        if self.edge_latency_s < 0.0:
            raise ValueError("edge_latency_s must be non-negative")
        if self.aggregation_executor not in ("serial", "process", "service"):
            raise ValueError(
                f"unknown aggregation executor {self.aggregation_executor!r}")
        if self.aggregation_workers is not None and self.aggregation_workers < 1:
            raise ValueError("aggregation_workers must be positive")
        if self.service_transport not in ("tcp", "socketpair"):
            raise ValueError(
                f"unknown service transport {self.service_transport!r}")
        if self.service_retry_attempts < 1:
            raise ValueError("service_retry_attempts must be positive")
        if self.service_retry_delay_s < 0.0:
            raise ValueError("service_retry_delay_s must be non-negative")
        if self.service_timeout_s <= 0.0:
            raise ValueError("service_timeout_s must be positive")
        if self.service_codec not in ("fp64", "wire"):
            raise ValueError(
                f"unknown service codec {self.service_codec!r} "
                "(expected 'fp64' or 'wire')")
        if self.service_window < 1:
            raise ValueError("service_window must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError("checkpoint_every > 0 requires checkpoint_dir")
        if self.checkpoint_keep_last < 0:
            raise ValueError("checkpoint_keep_last must be non-negative")
        if self.checkpoint_delta_every < 0:
            raise ValueError("checkpoint_delta_every must be non-negative")
        if self.telemetry and not self.telemetry_dir:
            raise ValueError("telemetry=True requires telemetry_dir")

    @property
    def resolved_edge_tiers(self) -> Tuple[int, ...]:
        """Aggregator-tier widths (``()`` = flat): ``edge_tiers`` or the legacy knob."""
        if self.edge_tiers is not None:
            return tuple(self.edge_tiers)
        if self.num_edge_aggregators >= 1:
            return (self.num_edge_aggregators,)
        return ()


@dataclass
class ParticipantRoundResult:
    """What one participant returns to the server at the end of a round."""

    updates: List[ExpertUpdate]
    breakdown: RoundCostBreakdown
    train_loss: float
    overlap_profiling: bool = False
    #: optional scalar report (e.g. expert utilities) consumed by the method
    report: Dict = field(default_factory=dict)


@dataclass
class RoundResult:
    """Aggregate outcome of one federated round (= one server aggregation)."""

    round_index: int
    train_loss: float
    metric_value: float
    simulated_time: float
    round_duration: float
    timeline: RoundTimeline
    #: scheduler bookkeeping (0 defaults keep legacy constructors working)
    num_selected: int = 0
    num_aggregated: int = 0
    num_dropped: int = 0
    num_stragglers: int = 0
    mean_staleness: float = 0.0
    #: measured wire traffic (all zero under the analytic transport)
    wire_bytes: float = 0.0
    wire_seconds: float = 0.0
    payloads_lost: int = 0
    payloads_corrupted: int = 0
    #: measured aggregator-tier backhaul totals (zero on a flat, single-tier
    #: run; summed over every tier of an aggregation tree)
    edge_bytes: float = 0.0
    edge_seconds: float = 0.0
    edge_payloads: int = 0
    #: per-tier breakdown of the backhaul traffic, participant-facing tier
    #: first (empty on a flat run; ``tier_bytes[k]`` sums to ``edge_bytes``)
    tier_bytes: List[float] = field(default_factory=list)
    tier_seconds: List[float] = field(default_factory=list)
    tier_payloads: List[int] = field(default_factory=list)


@dataclass
class RunResult:
    """Full outcome of a federated fine-tuning run."""

    method: str
    tracker: PerformanceTracker
    timeline: RunTimeline
    rounds: List[RoundResult]

    @property
    def total_time(self) -> float:
        return self.timeline.total_time()

    def time_to_target(self) -> Optional[float]:
        return self.tracker.time_to_target()

    def final_metric(self) -> float:
        return self.tracker.final_metric()


class FederatedFineTuner(abc.ABC):
    """Base class for federated MoE fine-tuning methods.

    The aggregation loop itself lives in :mod:`repro.runtime`; this class
    carries the federation state (server, participants, cost models, clock)
    and the method-specific hooks.
    """

    #: human-readable method name used in benchmark reports
    name: str = "base"

    def __init__(
        self,
        server: ParameterServer,
        participants: Sequence[Participant],
        test_dataset: SyntheticDataset,
        cost_models: Optional[Dict[int, CostModel]] = None,
        config: Optional[RunConfig] = None,
    ) -> None:
        if not participants:
            raise ValueError("at least one participant is required")
        self.server = server
        self.participants = list(participants)
        self.test_dataset = test_dataset
        self.cost_models = cost_models or {}
        self.config = config or RunConfig()
        self.clock = SimulatedClock()
        self._rng = np.random.default_rng(self.config.seed)
        self._participants_by_id = {p.participant_id: p for p in self.participants}
        self._legacy_scheduler = None
        self._legacy_scheduler_key = None
        self._channels: Dict[int, object] = {}
        # --- aggregation topology: strategy, expert shards, edge tier.
        # With the defaults (fedavg / 1 shard / 0 edges) every hook below is a
        # pass-through and the behaviour is bit-identical to the flat legacy
        # path.
        from ..runtime.executor import make_aggregation_pool
        from .server import ShardedParameterServer
        from .strategies import strategy_from_config
        from .topology import make_topology

        self.aggregation_strategy = strategy_from_config(self.config)
        if self.config.num_shards > 1 and server.num_shards != self.config.num_shards:
            self.server = ShardedParameterServer.from_server(
                server, self.config.num_shards)
        self.topology = make_topology(self.config,
                                      participant_costs=self._participant_upload_costs())
        self._aggregation_pool = make_aggregation_pool(self.config)
        if self._aggregation_pool is not None:
            self.server.fold_pool = self._aggregation_pool
        # --- observability: a RunTelemetry when config.telemetry is on, else
        # the shared no-op NullTelemetry; the server shares the tracer so its
        # per-shard folds appear in the same trace.
        from ..obs import make_telemetry

        self.telemetry = make_telemetry(self.config)
        self.server.tracer = self.telemetry.tracer
        if hasattr(self._aggregation_pool, "bind_telemetry"):
            # service pool: repro_service_* byte/connection counters land in
            # the run's metrics registry (no-op registry when telemetry is off)
            self._aggregation_pool.bind_telemetry(self.telemetry)

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        """Run one participant's local work for this round."""

    def before_round(self, round_index: int, selected: Sequence[Participant]) -> None:
        """Hook invoked before local work starts (e.g. Flux's role assignment)."""

    def after_aggregation(self, round_index: int,
                          results: Dict[int, ParticipantRoundResult]) -> None:
        """Hook invoked after the server aggregated this round's updates."""

    # ------------------------------------------------------- participant state
    def participant_by_id(self, participant_id: int) -> Participant:
        return self._participants_by_id[participant_id]

    def export_participant_state(self, participant_id: int) -> Dict:
        """Picklable snapshot of everything ``participant_round`` mutated.

        The process-pool executor runs ``participant_round`` on a *copy* of
        this fine-tuner; replaying the export via
        :meth:`import_participant_state` makes parallel execution
        observationally identical to serial execution.  Subclasses that keep
        extra per-client state (e.g. Flux) must extend both methods.
        """
        participant = self.participant_by_id(participant_id)
        return {"round_seed": participant._round_seed}

    def import_participant_state(self, participant_id: int, state: Dict) -> None:
        """Apply a worker-side :meth:`export_participant_state` snapshot."""
        participant = self.participant_by_id(participant_id)
        participant._round_seed = state["round_seed"]

    # ------------------------------------------------------------------- loop
    def select_participants(self, round_index: int) -> List[Participant]:
        """Choose the participants taking part in this round (uniform policy)."""
        from ..runtime import UniformSampler

        return UniformSampler().sample(self.participants, self.config.participants_per_round,
                                       round_index, self._rng)

    def cost_model_for(self, participant: Participant) -> Optional[CostModel]:
        return self.cost_models.get(participant.participant_id, participant.cost_model)

    def _participant_upload_costs(self) -> Optional[Dict[int, float]]:
        """Upload-seconds per participant — the cost-aware grouping signal.

        ``None`` when no participant has a cost model, which makes the
        default ``edge_grouping="cost_aware"`` degrade to the legacy
        round-robin assignment (bit-identical to the pre-tree behaviour).
        """
        from ..systems.cost_model import upload_costs

        models = {p.participant_id: self.cost_model_for(p) for p in self.participants}
        models = {pid: model for pid, model in models.items() if model is not None}
        return upload_costs(models) if models else None

    # ------------------------------------------------------------ wire transport
    def wire_codec_name(self) -> str:
        """Codec tag used for wire-transported updates.

        An explicit :attr:`RunConfig.codec` always wins; with the ``None``
        default, methods may override this hook to pick their natural wire
        format (the base default is the lossless :data:`DEFAULT_WIRE_CODEC`).
        """
        return self.config.codec or DEFAULT_WIRE_CODEC

    def channel_for(self, participant: Participant):
        """The participant's metered channel (built lazily, cached per client)."""
        channel = self._channels.get(participant.participant_id)
        if channel is None:
            from ..runtime.faults import ChannelFaultInjector

            channel = participant.make_channel(
                cost_model=self.cost_model_for(participant),
                faults=ChannelFaultInjector.from_config(self.config),
                latency_s=self.config.channel_latency_s,
            )
            self._channels[participant.participant_id] = channel
        return channel

    def transmit_updates(self, participant: Participant,
                         updates: Sequence[ExpertUpdate]):
        """Move one participant's updates to the server over the transport.

        Under ``transport="analytic"`` (the default) the in-memory updates
        pass straight through and nothing is metered — the legacy behaviour.
        Under ``transport="wire"`` every update is encoded with the run's
        codec into a framed byte payload, sent over the participant's
        :class:`~repro.comm.Channel` (charging measured airtime, applying
        loss/corruption faults) and decoded server-side; lost payloads and
        frames that fail their checksum never reach aggregation.

        Returns ``(delivered_updates, stats)`` where ``stats`` is a
        :class:`~repro.comm.ChannelStats` of measured traffic.
        """
        from ..comm import (
            ChannelStats,
            PayloadCorruptedError,
            decode_update,
            encode_update,
            get_codec,
        )

        stats = ChannelStats()
        if self.config.transport != "wire":
            return list(updates), stats
        codec = get_codec(self.wire_codec_name())
        channel = self.channel_for(participant)
        delivered: List[ExpertUpdate] = []
        raw_bytes = 0.0  # what the same tensors would cost as raw fp64
        with self.telemetry.tracer.span(
                "uplink", category="transfer",
                participant=participant.participant_id,
                codec=self.wire_codec_name()) as span:
            for update in updates:
                raw_bytes += 8.0 * sum(np.asarray(v).size
                                       for v in update.state.values())
                reference = None
                if codec.needs_reference:
                    # Both endpoints delta against the server's *current* expert
                    # state, fetched once and shared, so the round trip is always
                    # consistent.  Under the sync/semisync schedulers this is also
                    # the state the client downloaded; under async it may have
                    # advanced past the client's stale download, making the top-k
                    # selection delta-vs-latest rather than delta-vs-downloaded.
                    reference = self.server.expert_state(update.layer, update.expert)
                payload = encode_update(update, codec, reference=reference)
                record = channel.send(payload, direction="up")
                stats.record(record)
                if record.delivered:
                    try:
                        arrived = decode_update(record.payload, reference=reference)
                    except PayloadCorruptedError:
                        stats.decode_failures += 1
                        continue
                    # Carry the delivered bytes (corrupted-but-decodable
                    # payloads included: these bytes are what decoded) so the
                    # pooled/service fold dispatch can forward the original
                    # frame instead of re-encoding the state as fp64.
                    arrived.wire_frame = bytes(record.payload)
                    arrived.wire_codec = codec.name
                    arrived.wire_reference = reference
                    delivered.append(arrived)
            span.set(sim_duration=stats.seconds, bytes=stats.total_bytes,
                     payloads=stats.payloads, lost=stats.lost,
                     corrupted=stats.corrupted)
            if raw_bytes:
                # payload bytes as a fraction of raw fp64 — ~1.05 for fp64
                # (frame headers), well under 1 for quantized/sparse codecs
                span.set(wire_density=round(stats.bytes_up / raw_bytes, 4))
        return delivered, stats

    def aggregate_round_updates(self, updates):
        """Fold one round's delivered updates through the aggregation topology.

        Flat runs hand the update stream straight to the server; with an edge
        tier configured, updates pre-fold at their edge aggregators and only
        wire-framed partial aggregates cross the (metered) edge→root channels.
        Returns ``(contributions, edge_stats)``; ``edge_stats`` is an empty
        :class:`~repro.comm.ChannelStats` on a flat run.
        """
        from ..comm import ChannelStats

        streaming = self.config.streaming_aggregation
        tracer = self.telemetry.tracer
        with tracer.span("aggregate", category="fold",
                         streaming=streaming) as span:
            if self.topology is not None:
                contributions, edge_stats = self.topology.aggregate(
                    self.server, updates, streaming=streaming,
                    strategy=self.aggregation_strategy,
                    pool=self._aggregation_pool, tracer=tracer)
            else:
                contributions = self.server.aggregate(
                    updates, streaming=streaming,
                    strategy=self.aggregation_strategy)
                edge_stats = ChannelStats()
            span.set(num_keys=len(contributions),
                     num_updates=sum(contributions.values()))
        return contributions, edge_stats

    # ------------------------------------------------------------- run state
    def export_run_state(self) -> Dict:
        """Picklable snapshot of method-level cross-round state.

        The base orchestrator keeps all cross-round state in the pieces the
        checkpoint layer captures explicitly (server, clock, run RNG,
        participants, channels); methods with their own evolving server-side
        state (e.g. Flux's role-assignment RNG) extend this and
        :meth:`import_run_state`.
        """
        return {}

    def import_run_state(self, state: Dict) -> None:
        """Restore an :meth:`export_run_state` snapshot."""

    def export_channel_states(self) -> Dict[int, Dict]:
        """Per-participant wire-channel state (fault-stream position + stats)."""
        return {pid: channel.export_state()
                for pid, channel in self._channels.items()}

    def import_channel_states(self, states: Dict[int, Dict]) -> None:
        """Rebuild wire channels and restore their sequence/stat positions."""
        for pid, state in states.items():
            self.channel_for(self.participant_by_id(pid)).import_state(state)

    def evaluate(self) -> float:
        """Evaluate the global model on the held-out test set."""
        return evaluate_model(
            self.server.global_model,
            self.test_dataset,
            batch_size=self.config.eval_batch_size,
            max_samples=self.config.eval_max_samples,
            seed=self.config.seed,
        )

    def target_metric(self) -> float:
        """Absolute metric value corresponding to relative accuracy 1.0."""
        return self.test_dataset.spec.mini_target * self.config.target_relative_accuracy

    def run_round(self, round_index: int) -> Tuple[RoundResult, Dict[int, ParticipantRoundResult]]:
        """Execute one synchronous federated round (legacy API).

        Equivalent to one :class:`~repro.runtime.SyncScheduler` round with the
        sampler, fault injection and executor configured in :attr:`config`
        (uniform / none / serial by default) — regardless of
        ``config.scheduler``.  The scheduler is cached and rebuilt when the
        relevant config fields change; call :meth:`close` to release its
        worker pool when you drive rounds manually with ``executor="process"``.
        """
        from ..runtime import FaultInjector, SyncScheduler, make_executor, make_sampler

        key = (self.config.sampler, id(self.config.availability_trace),
               self.config.executor, self.config.executor_workers,
               self.config.dropout_prob, self.config.straggler_prob,
               self.config.straggler_slowdown, self.config.seed)
        if self._legacy_scheduler is None or self._legacy_scheduler_key != key:
            self.close()
            sampler = None if self.config.sampler == "uniform" else make_sampler(self.config)
            self._legacy_scheduler = SyncScheduler(
                sampler=sampler,
                faults=FaultInjector.from_config(self.config),
                executor=make_executor(self.config),
            )
            self._legacy_scheduler_key = key
        return self._legacy_scheduler.run_round(self, round_index)

    def close(self) -> None:
        """Release runtime resources held by the tuner (idempotent).

        Covers the legacy :meth:`run_round` scheduler's worker pool and the
        aggregation fold pool (``aggregation_executor="process"``); both are
        lazily recreated on next use, so closing between runs is always safe.
        :meth:`run` closes them itself when it finishes.
        """
        if self._legacy_scheduler is not None:
            self._legacy_scheduler.executor.close()
            self._legacy_scheduler = None
            self._legacy_scheduler_key = None
        if self._aggregation_pool is not None:
            self._aggregation_pool.close()

    def _server_aggregation_time(self, num_updates: int) -> float:
        if not self.cost_models:
            return 0.0
        any_cost_model = next(iter(self.cost_models.values()))
        return any_cost_model.aggregation_time(num_updates)

    def run(self, num_rounds: int, stop_at_target: bool = False,
            target_metric: Optional[float] = None, scheduler=None,
            resume_from: Optional[str] = None) -> RunResult:
        """Run ``num_rounds`` aggregation rounds (optionally stopping at the target).

        The loop is driven by ``scheduler`` when given, else by the policy
        :attr:`RunConfig.scheduler` selects (default: synchronous FedAvg,
        identical to the historical loop).

        With :attr:`RunConfig.checkpoint_every` set, the full run state
        (server + model, metrics tracker, RNG streams, scheduler position) is
        snapshotted into :attr:`RunConfig.checkpoint_dir` every K rounds.
        ``resume_from`` continues a killed run from such a snapshot —
        ``num_rounds`` stays the *total* round count, and the resumed run's
        :class:`RunResult` is identical to an uninterrupted one.
        """
        from ..runtime import make_scheduler
        from ..runtime.checkpoint import (
            RunCheckpointer,
            load_run_checkpoint,
            restore_run_state,
        )

        active = scheduler if scheduler is not None else make_scheduler(self.config)
        checkpointer = None
        if self.config.checkpoint_every > 0:
            checkpointer = RunCheckpointer(
                directory=self.config.checkpoint_dir,
                every=self.config.checkpoint_every,
                keep_last=self.config.checkpoint_keep_last,
                delta_every=self.config.checkpoint_delta_every,
                background=self.config.checkpoint_async)
        resume = None
        if resume_from is not None:
            resume = restore_run_state(self, active, load_run_checkpoint(resume_from))
        # Resuming prunes the re-executed rounds out of the existing trace and
        # appends; a fresh run truncates.
        self.telemetry.begin(
            resume_round=int(resume["next_round"]) if resume is not None else None)
        try:
            if checkpointer is None and resume is None:
                # Historical call shape: custom Scheduler implementations that
                # predate the durability layer keep working untouched.
                return active.run(self, num_rounds, stop_at_target=stop_at_target,
                                  target_metric=target_metric)
            return active.run(self, num_rounds, stop_at_target=stop_at_target,
                              target_metric=target_metric, checkpointer=checkpointer,
                              resume=resume)
        finally:
            self.telemetry.finish()
            if self._aggregation_pool is not None:
                self._aggregation_pool.close()
