"""Federated learning substrate: clients, servers, aggregation topology, round loop."""

from .aggregation import ExpertKey, ExpertUpdate, apply_fedavg, fedavg_states, group_updates
from .client import LocalTrainResult, Participant, ParticipantResources
from .communication import ExchangePlan, bytes_per_param_for_bits
from .privacy import GaussianMechanism, epsilon_estimate
from .orchestrator import (
    FederatedFineTuner,
    ParticipantRoundResult,
    RoundResult,
    RunConfig,
    RunResult,
)
from .server import ParameterServer, ShardedParameterServer, make_server
from .strategies import (
    AggregationStrategy,
    FedAvgStrategy,
    MedianStrategy,
    StalenessFedAvgStrategy,
    TrimmedMeanStrategy,
    available_strategies,
    get_strategy,
    picklable_strategy,
    register_strategy,
    staleness_discount,
    strategy_from_config,
)
from .topology import (
    AggregationTree,
    CallableGrouping,
    CostAwareGrouping,
    GroupingPolicy,
    HierarchicalTopology,
    RoundRobinGrouping,
    make_topology,
)

__all__ = [
    "ExpertKey",
    "ExpertUpdate",
    "fedavg_states",
    "group_updates",
    "apply_fedavg",
    "Participant",
    "ParticipantResources",
    "LocalTrainResult",
    "ExchangePlan",
    "bytes_per_param_for_bits",
    "GaussianMechanism",
    "epsilon_estimate",
    "ParameterServer",
    "ShardedParameterServer",
    "make_server",
    "AggregationStrategy",
    "FedAvgStrategy",
    "TrimmedMeanStrategy",
    "MedianStrategy",
    "StalenessFedAvgStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "picklable_strategy",
    "strategy_from_config",
    "staleness_discount",
    "AggregationTree",
    "HierarchicalTopology",
    "GroupingPolicy",
    "RoundRobinGrouping",
    "CostAwareGrouping",
    "CallableGrouping",
    "make_topology",
    "FederatedFineTuner",
    "RunConfig",
    "RunResult",
    "RoundResult",
    "ParticipantRoundResult",
]
