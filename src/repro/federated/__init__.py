"""Federated learning substrate: clients, server, aggregation, round loop."""

from .aggregation import ExpertKey, ExpertUpdate, apply_fedavg, fedavg_states, group_updates
from .client import LocalTrainResult, Participant, ParticipantResources
from .communication import ExchangePlan, bytes_per_param_for_bits
from .privacy import GaussianMechanism, epsilon_estimate
from .orchestrator import (
    FederatedFineTuner,
    ParticipantRoundResult,
    RoundResult,
    RunConfig,
    RunResult,
)
from .server import ParameterServer

__all__ = [
    "ExpertKey",
    "ExpertUpdate",
    "fedavg_states",
    "group_updates",
    "apply_fedavg",
    "Participant",
    "ParticipantResources",
    "LocalTrainResult",
    "ExchangePlan",
    "bytes_per_param_for_bits",
    "GaussianMechanism",
    "epsilon_estimate",
    "ParameterServer",
    "FederatedFineTuner",
    "RunConfig",
    "RunResult",
    "RoundResult",
    "ParticipantRoundResult",
]
