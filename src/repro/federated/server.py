"""The central parameter server of the federated system."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..comm import StreamingAggregator
from ..models import MoETransformer
from .aggregation import ExpertKey, ExpertUpdate, apply_fedavg


class ParameterServer:
    """Holds the global MoE model and aggregates expert updates.

    The server never sees raw data: participants upload expert parameter
    states (plus scalar statistics such as utilities), and download refreshed
    expert parameters at the start of the next round.  Aggregation runs either
    buffered (the legacy FedAvg path, which keeps every update alive) or
    *streaming* (``streaming=True``): each update folds into a running
    weighted sum per expert key as it arrives, so peak server memory is one
    update plus the running sums — O(1) in the number of clients — while
    producing bit-identical averages.
    """

    def __init__(self, global_model: MoETransformer) -> None:
        self.global_model = global_model
        self.round_index = 0
        #: number of contributions each expert received over the whole run
        self.contribution_counts: Dict[ExpertKey, int] = {}

    # ------------------------------------------------------------ distribution
    def global_state(self) -> Dict[str, np.ndarray]:
        """Copy of the full global state dict (model download)."""
        return self.global_model.state_dict()

    def model_snapshot(self) -> MoETransformer:
        """A fresh model instance loaded with the current global parameters."""
        snapshot = MoETransformer(self.global_model.config)
        snapshot.load_state_dict(self.global_state())
        return snapshot

    def expert_state(self, layer: int, expert: int) -> Dict[str, np.ndarray]:
        return self.global_model.expert_state(layer, expert)

    def expert_states(self, keys: Iterable[ExpertKey]) -> Dict[ExpertKey, Dict[str, np.ndarray]]:
        return {key: self.expert_state(*key) for key in keys}

    # ------------------------------------------------------------- aggregation
    def aggregate(self, updates: Iterable[ExpertUpdate],
                  streaming: bool = False) -> Dict[ExpertKey, int]:
        """FedAvg the received expert updates into the global model.

        With ``streaming=True`` the updates iterable is consumed one element
        at a time through a :class:`~repro.comm.StreamingAggregator` — pass a
        generator and no more than one update is ever buffered server-side.
        """
        if streaming:
            aggregator = StreamingAggregator()
            aggregator.add_updates(updates)
            contributions = aggregator.apply(self.global_model)
        else:
            contributions = apply_fedavg(self.global_model, updates)
        for key, count in contributions.items():
            self.contribution_counts[key] = self.contribution_counts.get(key, 0) + count
        self.round_index += 1
        return contributions

    def aggregate_payloads(self, payloads: Iterable[bytes]) -> Dict[ExpertKey, int]:
        """Streaming aggregation straight from framed wire payloads.

        Each frame is decoded (resolving delta-codec references against the
        *current* global expert state — i.e. the state clients downloaded)
        and folded immediately; the model is only mutated once every payload
        has been folded, so references stay stable throughout.
        """
        aggregator = StreamingAggregator()
        for payload in payloads:
            aggregator.add_payload(payload, reference_lookup=self.expert_state)
        contributions = aggregator.apply(self.global_model)
        for key, count in contributions.items():
            self.contribution_counts[key] = self.contribution_counts.get(key, 0) + count
        self.round_index += 1
        return contributions

    # -------------------------------------------------------------- inspection
    def experts_per_layer(self) -> List[int]:
        return self.global_model.experts_per_layer()

    def num_experts(self) -> int:
        return sum(self.experts_per_layer())

    def untouched_experts(self) -> List[ExpertKey]:
        """Experts that have never received an update (useful for exploration)."""
        touched = set(self.contribution_counts)
        return [key for key in self.global_model.iter_expert_ids() if key not in touched]
