"""The central parameter server(s) of the federated system.

Two server flavours share one interface:

:class:`ParameterServer`
    The flat server — holds the global MoE model and aggregates every expert
    key itself.

:class:`ShardedParameterServer`
    Partitions the ``ExpertKey`` space round-robin across ``num_shards``
    shards; each shard folds its own
    :class:`~repro.comm.StreamingAggregator`, so per-shard fold state (and,
    in a real deployment, fold *work*) is independent.  Per-key aggregation is
    already independent across keys, so any shard count produces bit-identical
    global parameters — sharding changes *where* state lives, not the math.

Both accept a pluggable :class:`~repro.federated.strategies.AggregationStrategy`
(default: weighted FedAvg, bit-identical to the historical hardwired path).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..comm import ScratchPool, StreamingAggregator
from ..models import MoETransformer
from .aggregation import ExpertKey, ExpertUpdate, apply_fedavg


class ParameterServer:
    """Holds the global MoE model and aggregates expert updates.

    The server never sees raw data: participants upload expert parameter
    states (plus scalar statistics such as utilities), and download refreshed
    expert parameters at the start of the next round.  Aggregation runs either
    buffered (the legacy FedAvg path, which keeps every update alive) or
    *streaming* (``streaming=True``): each update folds into a per-expert
    accumulator as it arrives, so peak server memory under FedAvg is one
    update plus the running sums — O(1) in the number of clients — while
    producing bit-identical averages.  ``strategy`` (a name or an
    :class:`~repro.federated.strategies.AggregationStrategy`) replaces the
    FedAvg reduction with e.g. a coordinate-wise trimmed mean or median.
    """

    #: flat servers own the whole key space
    num_shards: int = 1

    def __init__(self, global_model: MoETransformer, strategy=None) -> None:
        from ..obs import NULL_TRACER

        self.global_model = global_model
        self.strategy = strategy
        self.round_index = 0
        #: number of contributions each expert received over the whole run
        self.contribution_counts: Dict[ExpertKey, int] = {}
        #: optional :class:`~repro.runtime.executor.AggregationPool`: with one
        #: attached (and more than one shard) the per-shard folds run in
        #: process-pool workers instead of on the server thread
        self.fold_pool = None
        #: span tracer for per-shard fold spans; the fine-tuner shares its
        #: run telemetry tracer here, the no-op default costs nothing
        self.tracer = NULL_TRACER
        #: persistent decode/fold scratch: payload decode and the weighted
        #: folds reuse these buffers across rounds, so steady-state serial
        #: aggregation is allocation-free (ships empty through pickle)
        self.fold_scratch = ScratchPool()

    # ------------------------------------------------------------ distribution
    def global_state(self) -> Dict[str, np.ndarray]:
        """Copy of the full global state dict (model download)."""
        return self.global_model.state_dict()

    def model_snapshot(self) -> MoETransformer:
        """A fresh model instance loaded with the current global parameters."""
        snapshot = MoETransformer(self.global_model.config)
        snapshot.load_state_dict(self.global_state())
        return snapshot

    def expert_state(self, layer: int, expert: int) -> Dict[str, np.ndarray]:
        return self.global_model.expert_state(layer, expert)

    def expert_states(self, keys: Iterable[ExpertKey]) -> Dict[ExpertKey, Dict[str, np.ndarray]]:
        return {key: self.expert_state(*key) for key in keys}

    # ------------------------------------------------------------- aggregation
    def _resolve_strategy(self, strategy):
        return strategy if strategy is not None else self.strategy

    def _make_aggregators(self, strategy) -> List[StreamingAggregator]:
        """One streaming aggregator per shard (flat servers have one).

        All shards share the server's persistent scratch pool — they fold
        sequentially on the server thread, so the pool's term buffers never
        see concurrent use.
        """
        return [StreamingAggregator(strategy, scratch=self.fold_scratch)
                for _ in range(self.num_shards)]

    def shard_of(self, key: ExpertKey) -> int:
        """The shard responsible for ``key`` (always 0 on a flat server)."""
        return 0

    def _record(self, contributions: Dict[ExpertKey, int]) -> Dict[ExpertKey, int]:
        for key, count in contributions.items():
            self.contribution_counts[key] = self.contribution_counts.get(key, 0) + count
        self.round_index += 1
        return contributions

    def aggregate(self, updates: Iterable[ExpertUpdate],
                  streaming: bool = False, strategy=None) -> Dict[ExpertKey, int]:
        """Aggregate the received expert updates into the global model.

        With ``streaming=True`` the updates iterable is consumed one element
        at a time through per-shard
        :class:`~repro.comm.StreamingAggregator`'s — pass a generator and no
        more than one update is ever buffered server-side.  ``strategy``
        overrides the server's construction-time strategy for this call; the
        ``None``/FedAvg default keeps the exact legacy arithmetic (including
        the buffered path's all-zero-weight uniform fallback).
        """
        effective = self._resolve_strategy(strategy)
        if self.fold_pool is not None and self.num_shards > 1:
            return self._record(self._aggregate_pooled(updates, effective, streaming))
        if effective is None and not streaming:
            # The buffered legacy FedAvg path — shared by every shard count so
            # its all-zero-weight uniform fallback (and bit-exactness) hold on
            # sharded servers too; per-key folds are independent, so routing
            # through shard aggregators would change nothing but the fallback.
            return self._record(apply_fedavg(self.global_model, updates,
                                             scratch=self.fold_scratch))
        aggregators = self._make_aggregators(effective)
        for update in updates:
            aggregators[self.shard_of(update.key)].add(update)
        contributions: Dict[ExpertKey, int] = {}
        for shard, aggregator in enumerate(aggregators):
            with self.tracer.span("fold_shard", category="fold", shard=shard,
                                  num_updates=aggregator.num_updates):
                contributions.update(aggregator.apply(self.global_model))
        return self._record(contributions)

    def _aggregate_pooled(self, updates: Iterable[ExpertUpdate], strategy,
                          streaming: bool) -> Dict[ExpertKey, int]:
        """Fold the shards concurrently in :attr:`fold_pool` workers.

        Updates cross the process boundary as lossless fp64 wire frames
        (plus their in-memory staleness), bucketed by shard in arrival
        order; each worker mirrors the serial per-shard fold exactly — the
        legacy buffered FedAvg (uniform zero-weight fallback included) when
        ``strategy`` is ``None`` and ``streaming`` is off, the strategy's
        streaming accumulators otherwise — so pooled aggregation is
        bit-identical to serial (test-enforced).  Pooling buffers one round's
        frames parent-side, trading streaming's O(1) memory for parallel
        fold throughput.
        """
        from ..comm import decode_state_dict
        from ..runtime.executor import frame_update

        collect_refs = bool(getattr(self.fold_pool, "wire_frames", False))
        shard_frames: List[List] = [[] for _ in range(self.num_shards)]
        shard_refs: List[Dict] = [{} for _ in range(self.num_shards)]
        for update in updates:
            shard = self.shard_of(update.key)
            shard_frames[shard].append(frame_update(
                update, references=shard_refs[shard] if collect_refs else None))
        jobs = [(shard, framed, shard_refs[shard]) if shard_refs[shard]
                else (shard, framed)
                for shard, framed in enumerate(shard_frames) if framed]
        contributions: Dict[ExpertKey, int] = {}
        folded = self.fold_pool.fold_shards(strategy, streaming, jobs,
                                            timed=self.tracer.enabled)
        for record in self.fold_pool.last_span_records:
            self.tracer.ingest(record)
        for _, shard_result in folded:
            for (layer, expert), state_frame, count in shard_result:
                self.global_model.load_expert_state(
                    layer, expert, decode_state_dict(state_frame))
                contributions[(layer, expert)] = count
        return contributions

    def aggregate_payloads(self, payloads: Iterable[bytes],
                           strategy=None) -> Dict[ExpertKey, int]:
        """Streaming aggregation straight from framed wire payloads.

        Each frame is decoded (resolving delta-codec references against the
        *current* global expert state — i.e. the state clients downloaded)
        and folded immediately; the model is only mutated once every payload
        has been folded, so references stay stable throughout.  Decode and
        fold run through the server's persistent scratch pool (foldable
        strategies), so a steady-state round allocates nothing per update.
        """
        aggregators = self._make_aggregators(self._resolve_strategy(strategy))
        use_scratch = aggregators[0].uses_scratch  # one strategy => all agree
        if self.num_shards == 1:
            fold_payload = aggregators[0].fold_payload
            for payload in payloads:
                fold_payload(payload, reference_lookup=self.expert_state)
        else:
            from ..comm import decode_update

            scratch = self.fold_scratch if use_scratch else None
            for payload in payloads:
                update = decode_update(payload,
                                       reference_lookup=self.expert_state,
                                       scratch=scratch)
                aggregators[self.shard_of(update.key)].add(update)
                if scratch is not None:
                    scratch.recycle()
        contributions: Dict[ExpertKey, int] = {}
        for aggregator in aggregators:
            contributions.update(aggregator.apply(self.global_model))
        return self._record(contributions)

    # ------------------------------------------------------------- durability
    def export_state(self) -> Dict:
        """Picklable snapshot of the server's run state (model excluded).

        The model itself is persisted separately via
        :func:`repro.models.checkpoint.save_checkpoint`; this covers the
        bookkeeping a resumed run must continue from.
        """
        return {
            "round_index": self.round_index,
            "contribution_counts": dict(self.contribution_counts),
            "num_shards": self.num_shards,
        }

    def import_state(self, state: Dict) -> None:
        """Restore an :meth:`export_state` snapshot."""
        if state.get("num_shards", 1) != self.num_shards:
            raise ValueError(
                f"checkpoint was written by a {state.get('num_shards', 1)}-shard "
                f"server; this server has {self.num_shards} shards")
        self.round_index = int(state["round_index"])
        self.contribution_counts = dict(state["contribution_counts"])

    # -------------------------------------------------------------- inspection
    def experts_per_layer(self) -> List[int]:
        return self.global_model.experts_per_layer()

    def num_experts(self) -> int:
        return sum(self.experts_per_layer())

    def untouched_experts(self) -> List[ExpertKey]:
        """Experts that have never received an update (useful for exploration)."""
        touched = set(self.contribution_counts)
        return [key for key in self.global_model.iter_expert_ids() if key not in touched]


class ShardedParameterServer(ParameterServer):
    """Expert-sharded parameter server.

    Expert keys are assigned round-robin over their flattened
    ``(layer, expert)`` index, so shards stay balanced for any layer shape.
    Streaming (and non-default-strategy) aggregation routes every update to
    its key's shard aggregator; the buffered FedAvg default shares the flat
    server's legacy path, which is already per-key independent.
    :attr:`last_shard_contributions` records how many updates each shard
    received in the most recent aggregation (the per-shard load signal a
    deployment would use for re-balancing).
    """

    def __init__(self, global_model: MoETransformer, num_shards: int = 1,
                 strategy=None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        super().__init__(global_model, strategy=strategy)
        self.num_shards = int(num_shards)
        counts = global_model.experts_per_layer()
        offsets = np.concatenate([[0], np.cumsum(counts)])
        self._flat_index = {
            (layer, expert): int(offsets[layer]) + expert
            for layer in range(len(counts)) for expert in range(counts[layer])
        }
        #: updates folded per shard in the most recent aggregation
        self.last_shard_contributions: List[int] = [0] * self.num_shards

    @classmethod
    def from_server(cls, server: ParameterServer, num_shards: int,
                    strategy=None) -> "ShardedParameterServer":
        """Re-home an existing flat server's model (and counts) onto shards."""
        sharded = cls(server.global_model, num_shards=num_shards,
                      strategy=strategy if strategy is not None else server.strategy)
        sharded.round_index = server.round_index
        sharded.contribution_counts = dict(server.contribution_counts)
        return sharded

    def shard_of(self, key: ExpertKey) -> int:
        try:
            return self._flat_index[key] % self.num_shards
        except KeyError:
            raise KeyError(f"unknown expert key {key!r}") from None

    def shard_keys(self, shard: int) -> List[ExpertKey]:
        """Every expert key owned by ``shard`` (flattened-index order)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard must be in [0, {self.num_shards})")
        return sorted((key for key, flat in self._flat_index.items()
                       if flat % self.num_shards == shard),
                      key=lambda key: self._flat_index[key])

    def aggregate(self, updates: Iterable[ExpertUpdate],
                  streaming: bool = False, strategy=None) -> Dict[ExpertKey, int]:
        contributions = super().aggregate(updates, streaming=streaming,
                                          strategy=strategy)
        shard_counts = [0] * self.num_shards
        for key, count in contributions.items():
            shard_counts[self.shard_of(key)] += count
        self.last_shard_contributions = shard_counts
        return contributions


def make_server(global_model: MoETransformer, config=None,
                strategy=None) -> ParameterServer:
    """Build the server a :class:`~repro.federated.RunConfig` describes."""
    num_shards = int(getattr(config, "num_shards", 1) or 1) if config is not None else 1
    if num_shards > 1:
        return ShardedParameterServer(global_model, num_shards=num_shards,
                                      strategy=strategy)
    return ParameterServer(global_model, strategy=strategy)
