"""Parameter aggregation strategies (FedAvg over expert updates).

Following the paper, participants exchange only *expert* parameters: each
participant uploads the post-training state of the experts it tuned plus a
weight (how many tokens contributed).  The server performs weighted FedAvg per
expert and writes the result back into the global model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.aggregator import finalize_weighted_sum, fold_weighted_state
from ..models import MoETransformer

ExpertKey = Tuple[int, int]  # (layer index, expert index)


@dataclass
class ExpertUpdate:
    """One participant's update for one expert."""

    participant_id: int
    layer: int
    expert: int
    state: Dict[str, np.ndarray]
    weight: float = 1.0
    #: server versions elapsed since the contributor downloaded the model —
    #: in-memory metadata consumed by the ``staleness_fedavg`` strategy; it
    #: does not travel in wire frames (the asynchronous scheduler discounts
    #: weights before transmission, so the wire format stays stable).
    staleness: int = 0
    #: the exact wire frame this update was decoded from (``transport="wire"``
    #: deliveries only) — downstream fold dispatch forwards it verbatim instead
    #: of re-encoding the decoded state as fp64, which is bit-identical by
    #: construction (``state`` *is* the deterministic decode of these bytes).
    #: In-memory provenance, never re-serialized itself: ``repr``/``compare``
    #: exclude it so update equality and logs are unchanged.
    wire_frame: Optional[bytes] = field(default=None, repr=False, compare=False)
    #: codec name of :attr:`wire_frame` (``None`` when no frame is carried)
    wire_codec: Optional[str] = field(default=None, repr=False, compare=False)
    #: the reference state :attr:`wire_frame` was decoded against, for
    #: ``needs_reference`` codecs (top-k/sparse deltas); forwarded alongside
    #: the frame so a remote decoder reconstructs the identical state
    wire_reference: Optional[Dict[str, np.ndarray]] = field(
        default=None, repr=False, compare=False)

    @property
    def key(self) -> ExpertKey:
        return (self.layer, self.expert)


def fedavg_states(states: Sequence[Dict[str, np.ndarray]],
                  weights: Sequence[float],
                  scratch=None) -> Dict[str, np.ndarray]:
    """Weighted average of several identically shaped state dicts.

    Implemented as a sequential weighted fold over the states (the same
    :func:`~repro.comm.aggregator.fold_weighted_state` the streaming server
    path uses), so buffered and streaming aggregation are bit-identical.
    ``scratch`` (a :class:`~repro.comm.scratch.ScratchPool`) reuses the
    pool's term buffers for the per-state multiplies — same arithmetic,
    no per-fold allocation.
    """
    if not states:
        raise ValueError("cannot average an empty list of states")
    if len(states) != len(weights):
        raise ValueError("one weight per state is required")
    if any(w < 0 for w in weights):
        raise ValueError("aggregation weights must be non-negative")
    total = 0.0
    for weight in weights:
        total += float(weight)
    if total <= 0:
        # All-zero weights degrade to an unweighted mean (legacy behaviour).
        weights = [1.0] * len(states)
        total = float(len(states))
    acc: Dict[str, np.ndarray] = {}
    for state, weight in zip(states, weights):
        fold_weighted_state(acc, state, weight, scratch=scratch)
    return finalize_weighted_sum(acc, total)


def group_updates(updates: Iterable[ExpertUpdate]) -> Dict[ExpertKey, List[ExpertUpdate]]:
    """Group expert updates by (layer, expert)."""
    grouped: Dict[ExpertKey, List[ExpertUpdate]] = {}
    for update in updates:
        grouped.setdefault(update.key, []).append(update)
    return grouped


def apply_fedavg(model: MoETransformer, updates: Iterable[ExpertUpdate],
                 scratch=None) -> Dict[ExpertKey, int]:
    """FedAvg every expert that received updates and load it into ``model``.

    Returns a mapping from expert key to the number of participants that
    contributed to it (used for logging and cost accounting).  ``scratch``
    threads a :class:`~repro.comm.scratch.ScratchPool` through the per-key
    folds.
    """
    grouped = group_updates(updates)
    contributions: Dict[ExpertKey, int] = {}
    for (layer, expert), expert_updates in grouped.items():
        averaged = fedavg_states([u.state for u in expert_updates],
                                 [u.weight for u in expert_updates],
                                 scratch=scratch)
        model.load_expert_state(layer, expert, averaged)
        contributions[(layer, expert)] = len(expert_updates)
    return contributions
