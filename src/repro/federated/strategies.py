"""Pluggable aggregation strategies for expert updates.

The server-side fold is no longer hardwired to weighted FedAvg: a strategy
names *how* a set of per-expert updates becomes one aggregated expert state.
Strategies are registered by name and selected via
:attr:`~repro.federated.orchestrator.RunConfig.aggregation`, so the whole
topology — flat server, expert shards, edge aggregators — composes with any of
them:

``fedavg``
    Weighted average, implemented as the exact sequential fold the streaming
    server path has always used (:func:`~repro.comm.aggregator.fold_weighted_state`
    / :func:`~repro.comm.aggregator.finalize_weighted_sum`), so selecting it
    explicitly is bit-identical to the legacy default.

``trimmed_mean``
    Coordinate-wise trimmed mean (Yin et al.): per scalar coordinate, drop the
    ``k`` smallest and ``k`` largest contributions and average the rest —
    robust to up to ``k`` arbitrarily corrupted clients per expert.

``median``
    Coordinate-wise median, the classic robust aggregation baseline.

``staleness_fedavg``
    FedAvg with each update's weight discounted by the polynomial FedBuff
    factor ``(1 + staleness) ** -exponent``.  This is the *same* formula the
    asynchronous scheduler applies (it delegates to
    :func:`staleness_discount`), exposed as a strategy so buffered/offline
    aggregation of stale updates uses one implementation.  It discounts based
    on ``ExpertUpdate.staleness``, which the built-in round-based schedulers
    leave at 0 — the strategy is for custom schedulers and direct
    ``server.aggregate`` use; combining it with the asynchronous scheduler is
    rejected at config time (the discount would apply twice).

A strategy produces per-expert *accumulators*; foldable strategies (FedAvg
family) keep O(1) state per expert, order statistics (trimmed mean, median)
buffer their contributions until :meth:`UpdateAccumulator.finalize`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.aggregator import finalize_weighted_sum, fold_weighted_state

State = Dict[str, np.ndarray]


def staleness_discount(staleness: int, exponent: float = 0.5) -> float:
    """FedBuff's polynomial staleness discount for an update's weight."""
    if exponent < 0:
        raise ValueError("staleness exponent must be non-negative")
    return float((1.0 + max(staleness, 0)) ** -exponent)


class UpdateAccumulator(abc.ABC):
    """Collects the updates of one expert key and reduces them to one state."""

    #: optional :class:`~repro.comm.scratch.ScratchPool` attached by the
    #: owning :class:`~repro.comm.StreamingAggregator` (foldable strategies
    #: only): folds compute their ``weight * value`` terms into the pool's
    #: persistent buffers instead of allocating.  Buffering accumulators
    #: ignore it.
    scratch = None

    def __init__(self) -> None:
        self.count = 0
        self.total_weight = 0.0

    @property
    def finalizable(self) -> bool:
        """Whether :meth:`finalize` can produce a result from what was added."""
        return self.count > 0

    @abc.abstractmethod
    def add(self, state: State, weight: float, staleness: int = 0) -> None:
        """Fold (or buffer) one contribution."""

    @abc.abstractmethod
    def finalize(self) -> State:
        """The aggregated expert state (leaves the accumulator intact)."""


class AggregationStrategy(abc.ABC):
    """Factory of per-expert :class:`UpdateAccumulator` objects."""

    name: str = "base"
    #: True when accumulators keep O(1) state per expert (pure folds); order
    #: statistics buffer every contribution until finalize.
    foldable: bool = False

    @abc.abstractmethod
    def make_accumulator(self) -> UpdateAccumulator:
        """A fresh accumulator for one expert key."""

    def aggregate(self, states: Sequence[State], weights: Sequence[float],
                  stalenesses: Optional[Sequence[int]] = None) -> State:
        """Convenience one-shot aggregation of pre-collected states."""
        if len(states) != len(weights):
            raise ValueError("one weight per state is required")
        stale = stalenesses if stalenesses is not None else [0] * len(states)
        acc = self.make_accumulator()
        for state, weight, staleness in zip(states, weights, stale):
            acc.add(state, weight, staleness=staleness)
        return acc.finalize()


# -------------------------------------------------------------------- fedavg
class _FoldAccumulator(UpdateAccumulator):
    """Weighted running sum — the exact streaming-FedAvg arithmetic."""

    def __init__(self, discount: Optional[Callable[[int], float]] = None) -> None:
        super().__init__()
        self._acc: State = {}
        self._discount = discount

    @property
    def finalizable(self) -> bool:
        # A weighted mean needs positive total weight; the individual states
        # are gone, so all-zero weights cannot fall back to a uniform mean.
        return self.total_weight > 0

    def add(self, state: State, weight: float, staleness: int = 0) -> None:
        if self._discount is not None:
            weight = weight * self._discount(staleness)
        fold_weighted_state(self._acc, state, weight, scratch=self.scratch)
        self.total_weight += float(weight)
        self.count += 1

    def finalize(self) -> State:
        return finalize_weighted_sum(self._acc, self.total_weight)


class FedAvgStrategy(AggregationStrategy):
    """Weighted FedAvg: the legacy fold, bit-identical to the historical path."""

    name = "fedavg"
    foldable = True

    def make_accumulator(self) -> UpdateAccumulator:
        return _FoldAccumulator()


class StalenessFedAvgStrategy(AggregationStrategy):
    """FedAvg with per-update weights discounted by ``(1+staleness)**-exponent``."""

    name = "staleness_fedavg"
    foldable = True

    def __init__(self, exponent: float = 0.5) -> None:
        if exponent < 0:
            raise ValueError("staleness exponent must be non-negative")
        self.exponent = exponent

    def make_accumulator(self) -> UpdateAccumulator:
        return _FoldAccumulator(
            discount=lambda staleness: staleness_discount(staleness, self.exponent))


# ---------------------------------------------------------- order statistics
class _BufferingAccumulator(UpdateAccumulator):
    """Keeps every contribution; subclasses reduce the stacked coordinates."""

    def __init__(self) -> None:
        super().__init__()
        self._states: List[State] = []

    def add(self, state: State, weight: float, staleness: int = 0) -> None:
        if weight < 0:
            raise ValueError("aggregation weights must be non-negative")
        if self._states and set(state) != set(self._states[0]):
            raise ValueError("cannot aggregate states with mismatched tensor names")
        self._states.append({name: np.asarray(value, dtype=np.float64)
                             for name, value in state.items()})
        self.total_weight += float(weight)
        self.count += 1

    def _stacked(self) -> Dict[str, np.ndarray]:
        if not self._states:
            raise ValueError("cannot finalize an empty aggregation")
        return {name: np.stack([state[name] for state in self._states])
                for name in self._states[0]}

    @abc.abstractmethod
    def _reduce(self, stacked: np.ndarray) -> np.ndarray:
        """Reduce the leading (contributor) axis to one tensor."""

    def finalize(self) -> State:
        return {name: self._reduce(stacked) for name, stacked in self._stacked().items()}


class _TrimmedMeanAccumulator(_BufferingAccumulator):
    def __init__(self, trim_ratio: float) -> None:
        super().__init__()
        self.trim_ratio = trim_ratio

    def _reduce(self, stacked: np.ndarray) -> np.ndarray:
        n = stacked.shape[0]
        k = min(int(self.trim_ratio * n), (n - 1) // 2)
        if k == 0:
            return stacked.mean(axis=0)
        ordered = np.sort(stacked, axis=0)
        return ordered[k:n - k].mean(axis=0)


class TrimmedMeanStrategy(AggregationStrategy):
    """Coordinate-wise trimmed mean: robust to ``trim_ratio`` corrupted clients."""

    name = "trimmed_mean"
    foldable = False

    def __init__(self, trim_ratio: float = 0.1) -> None:
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        self.trim_ratio = trim_ratio

    def make_accumulator(self) -> UpdateAccumulator:
        return _TrimmedMeanAccumulator(self.trim_ratio)


class _MedianAccumulator(_BufferingAccumulator):
    def _reduce(self, stacked: np.ndarray) -> np.ndarray:
        return np.median(stacked, axis=0)


class MedianStrategy(AggregationStrategy):
    """Coordinate-wise median of the contributions."""

    name = "median"
    foldable = False

    def make_accumulator(self) -> UpdateAccumulator:
        return _MedianAccumulator()


# ------------------------------------------------------------------ registry
_REGISTRY: Dict[str, Callable[..., AggregationStrategy]] = {}


def register_strategy(name: str, factory: Callable[..., AggregationStrategy]) -> None:
    """Register (or replace) a strategy factory under ``name``."""
    _REGISTRY[name] = factory


def available_strategies() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_strategy(spec, **kwargs) -> AggregationStrategy:
    """Resolve ``spec`` (a name or an instance) into a strategy object."""
    if isinstance(spec, AggregationStrategy):
        return spec
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        raise KeyError(
            f"unknown aggregation strategy {spec!r} "
            f"(available: {', '.join(available_strategies())})") from None
    return factory(**kwargs)


def picklable_strategy(spec) -> Optional[AggregationStrategy]:
    """Resolve ``spec`` and verify it can cross a process boundary.

    Process-pool aggregation (:class:`~repro.runtime.executor.AggregationPool`)
    ships the *strategy object* to fold workers and rebuilds accumulators
    there, so a strategy's construction-time state (trim ratios, staleness
    exponents, …) must pickle.  All built-in strategies do; a custom strategy
    holding e.g. a lambda or an open handle fails here with a clear error
    instead of a deep ``concurrent.futures`` traceback.  ``None`` (the legacy
    FedAvg default) passes through untouched.
    """
    import pickle

    if spec is None:
        return None
    strategy = get_strategy(spec)
    try:
        pickle.loads(pickle.dumps(strategy))
    except Exception as exc:
        raise TypeError(
            f"aggregation strategy {strategy.name!r} cannot cross a process "
            f"boundary ({exc}); parallel aggregation requires a picklable "
            "strategy — keep construction-time state to plain data") from exc
    return strategy


def strategy_from_config(config) -> Optional[AggregationStrategy]:
    """The strategy a :class:`~repro.federated.RunConfig` selects.

    Returns ``None`` for the default ``"fedavg"`` so the server keeps using
    its historical (bit-identical, zero-weight-tolerant) FedAvg code paths.
    """
    name = getattr(config, "aggregation", "fedavg")
    if name == "fedavg":
        return None
    if name == "trimmed_mean":
        return TrimmedMeanStrategy(trim_ratio=getattr(config, "trim_ratio", 0.1))
    if name == "staleness_fedavg":
        return StalenessFedAvgStrategy(
            exponent=getattr(config, "staleness_exponent", 0.5))
    return get_strategy(name)


register_strategy("fedavg", FedAvgStrategy)
register_strategy("trimmed_mean", TrimmedMeanStrategy)
register_strategy("median", MedianStrategy)
register_strategy("staleness_fedavg", StalenessFedAvgStrategy)
