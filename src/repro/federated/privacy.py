"""Optional privacy mechanisms for expert updates.

The paper treats differential privacy as orthogonal to Flux but notes it "can
be incorporated ... to further enhance the privacy preservation during expert
aggregation".  This module provides that hook: clip each participant's expert
update to a bounded L2 norm and add Gaussian noise before upload (the standard
Gaussian mechanism of DP-FedAvg), so deployments can trade accuracy for a
formal privacy guarantee without touching the rest of the pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .aggregation import ExpertUpdate


@dataclass
class GaussianMechanism:
    """Clip-and-noise mechanism applied to expert parameter updates.

    Parameters
    ----------
    clip_norm:
        Maximum L2 norm of one expert update (difference from the global
        expert the participant started from, or the raw state if no reference
        is supplied).
    noise_multiplier:
        Standard deviation of the added Gaussian noise as a multiple of
        ``clip_norm``.  0 disables noise (clipping only).
    seed:
        Seed of the noise generator (per-participant seeds keep runs
        reproducible).
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ maths
    @staticmethod
    def _flatten(state: Dict[str, np.ndarray]) -> np.ndarray:
        return np.concatenate([np.asarray(v).reshape(-1) for v in state.values()])

    def _clip_factor(self, state: Dict[str, np.ndarray]) -> float:
        norm = float(np.linalg.norm(self._flatten(state)))
        if norm <= self.clip_norm or norm == 0.0:
            return 1.0
        return self.clip_norm / norm

    # -------------------------------------------------------------- interface
    def privatize_state(self, state: Dict[str, np.ndarray],
                        reference: Optional[Dict[str, np.ndarray]] = None
                        ) -> Dict[str, np.ndarray]:
        """Return a clipped + noised copy of ``state``.

        With ``reference`` given, the mechanism operates on the *delta*
        ``state - reference`` and returns ``reference + privatized_delta`` so
        the server-side FedAvg stays unchanged.
        """
        if reference is not None:
            delta = {k: np.asarray(state[k]) - np.asarray(reference[k]) for k in state}
        else:
            delta = {k: np.asarray(v).copy() for k, v in state.items()}
        factor = self._clip_factor(delta)
        sigma = self.noise_multiplier * self.clip_norm
        privatized = {}
        for key, value in delta.items():
            noised = value * factor
            if sigma > 0:
                noised = noised + self._rng.normal(0.0, sigma, size=value.shape)
            privatized[key] = noised
        if reference is not None:
            return {k: np.asarray(reference[k]) + privatized[k] for k in privatized}
        return privatized

    def privatize_updates(self, updates: Iterable[ExpertUpdate],
                          references: Optional[Dict[tuple, Dict[str, np.ndarray]]] = None
                          ) -> List[ExpertUpdate]:
        """Apply the mechanism to every expert update in a participant's upload."""
        privatized: List[ExpertUpdate] = []
        for update in updates:
            reference = references.get(update.key) if references else None
            privatized.append(ExpertUpdate(
                participant_id=update.participant_id,
                layer=update.layer,
                expert=update.expert,
                state=self.privatize_state(update.state, reference=reference),
                weight=update.weight,
            ))
        return privatized

    def noise_stddev(self) -> float:
        """Standard deviation of the noise added to each coordinate."""
        return self.noise_multiplier * self.clip_norm


def epsilon_estimate(noise_multiplier: float, num_rounds: int, sample_rate: float = 1.0,
                     delta: float = 1e-5) -> float:
    """Rough (epsilon, delta)-DP accountant for repeated Gaussian mechanisms.

    Uses the simple composition bound
    ``epsilon = sample_rate * sqrt(2 * num_rounds * ln(1/delta)) / noise_multiplier``;
    adequate for reporting the order of magnitude of the guarantee in examples
    and tests (a production deployment would use an RDP accountant).
    """
    if noise_multiplier <= 0:
        return math.inf
    if not 0 < sample_rate <= 1:
        raise ValueError("sample_rate must be in (0, 1]")
    if num_rounds < 1:
        raise ValueError("num_rounds must be positive")
    return sample_rate * math.sqrt(2.0 * num_rounds * math.log(1.0 / delta)) / noise_multiplier
