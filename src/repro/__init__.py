"""Flux: federated fine-tuning of sparsely-activated (MoE) LLMs on constrained devices.

Reproduction of the EuroSys 2026 paper.  The public API re-exports the pieces a
downstream user needs to run an end-to-end federated MoE fine-tuning
experiment: model presets, synthetic benchmark datasets with non-IID
partitioning, the device/cost simulation, the Flux fine-tuner and the three
baselines (FMD, FMQ, FMES).

Quickstart::

    from repro import (
        MoETransformer, llama_moe_mini, make_gsm8k_like, partition_dirichlet,
        Participant, ParticipantResources, ParameterServer,
        FluxFineTuner, RunConfig,
    )

    config = llama_moe_mini()
    dataset = make_gsm8k_like()
    train, test = dataset.split()
    shards = partition_dirichlet(train, num_clients=4, alpha=0.5)
    participants = [
        Participant(i, train.subset(shard),
                    resources=ParticipantResources(max_experts=16, max_tuning_experts=8))
        for i, shard in enumerate(shards)
    ]
    server = ParameterServer(MoETransformer(config))
    tuner = FluxFineTuner(server, participants, test, config=RunConfig())
    result = tuner.run(num_rounds=5)

    # Library code never prints: route run output through the repro.obs
    # structured logger (enable_console_logging() opts a script in).
    from repro.obs import enable_console_logging, get_logger

    enable_console_logging()
    log = get_logger("quickstart")
    for row in result.tracker.as_series():
        log.info("round complete", **row)

Pass ``RunConfig(telemetry=True, telemetry_dir="trace/")`` and the run also
emits a JSONL span/metrics event log, a Chrome trace (open it in Perfetto)
and a Prometheus text snapshot — see :mod:`repro.obs` and
``scripts/run_report.py``.

The ``RunConfig`` runtime block selects the :mod:`repro.runtime` execution
engine: ``scheduler`` picks the aggregation policy (``"sync"`` — the default,
the paper's synchronous loop; ``"semisync"`` — deadline-based with straggler
dropping; ``"async"`` — FedBuff-style buffered aggregation with
staleness-discounted updates), ``sampler`` the client-selection policy,
``dropout_prob``/``straggler_prob`` seeded fault injection, and
``executor="process"`` parallel local training across worker processes::

    async_config = RunConfig(scheduler="async", buffer_size=4,
                             participants_per_round=8, straggler_prob=0.2)
    result = FluxFineTuner(server, participants, test, config=async_config).run(20)
"""

from .baselines import FMDFineTuner, FMESFineTuner, FMQFineTuner
from .comm import (
    Channel,
    ChannelStats,
    StreamingAggregator,
    available_codecs,
    decode_update,
    encode_update,
    get_codec,
)
from .core import (
    EpsilonSchedule,
    FluxConfig,
    FluxFineTuner,
    QuantizedProfiler,
    StaleProfiler,
)
from .data import (
    SyntheticDataset,
    Vocabulary,
    make_dataset,
    make_dolly_like,
    make_gsm8k_like,
    make_mmlu_like,
    make_piqa_like,
    partition_dirichlet,
    partition_iid,
)
from .federated import (
    FederatedFineTuner,
    HierarchicalTopology,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    RunResult,
    ShardedParameterServer,
    available_strategies,
    get_strategy,
)
from .metrics import PerformanceTracker, evaluate_model
from .obs import (
    MetricsRegistry,
    NullTracer,
    RunTelemetry,
    Span,
    Tracer,
    enable_console_logging,
    get_logger,
)
from .runtime import (
    AsyncScheduler,
    AvailabilityTraceSampler,
    EventQueue,
    FaultInjector,
    ProcessPoolParticipantExecutor,
    ResourceAwareSampler,
    Scheduler,
    SemiSyncScheduler,
    SerialExecutor,
    SyncScheduler,
    UniformSampler,
    make_scheduler,
)
from .models import (
    MoEModelConfig,
    MoETransformer,
    customized_moe,
    deepseek_moe_mini,
    llama_moe_mini,
    load_model,
    save_checkpoint,
    tiny_moe,
)
from .service import (
    AggregatorServer,
    ServiceAggregationPool,
    ServiceClient,
    spawn_server,
)
from .systems import CONSUMER_GPU, L20_SERVER, SMALL_GPU, CostModel, DeviceProfile, MemoryModel

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # models
    "MoEModelConfig",
    "MoETransformer",
    "llama_moe_mini",
    "deepseek_moe_mini",
    "tiny_moe",
    "customized_moe",
    "save_checkpoint",
    "load_model",
    # data
    "Vocabulary",
    "SyntheticDataset",
    "make_dataset",
    "make_dolly_like",
    "make_gsm8k_like",
    "make_mmlu_like",
    "make_piqa_like",
    "partition_dirichlet",
    "partition_iid",
    # federated substrate
    "Participant",
    "ParticipantResources",
    "ParameterServer",
    "ShardedParameterServer",
    "HierarchicalTopology",
    "get_strategy",
    "available_strategies",
    "FederatedFineTuner",
    "RunConfig",
    "RunResult",
    # comm (wire-level transport)
    "Channel",
    "ChannelStats",
    "StreamingAggregator",
    "get_codec",
    "available_codecs",
    "encode_update",
    "decode_update",
    # systems
    "DeviceProfile",
    "CONSUMER_GPU",
    "SMALL_GPU",
    "L20_SERVER",
    "MemoryModel",
    "CostModel",
    # metrics
    "evaluate_model",
    "PerformanceTracker",
    # obs (tracing, metrics registry, structured logging)
    "Span",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "RunTelemetry",
    "get_logger",
    "enable_console_logging",
    # runtime (event-driven execution engine)
    "EventQueue",
    "Scheduler",
    "SyncScheduler",
    "SemiSyncScheduler",
    "AsyncScheduler",
    "make_scheduler",
    "UniformSampler",
    "ResourceAwareSampler",
    "AvailabilityTraceSampler",
    "FaultInjector",
    "SerialExecutor",
    "ProcessPoolParticipantExecutor",
    # service (persistent socket-backed aggregation servers)
    "AggregatorServer",
    "spawn_server",
    "ServiceClient",
    "ServiceAggregationPool",
    # Flux + baselines
    "FluxConfig",
    "EpsilonSchedule",
    "QuantizedProfiler",
    "StaleProfiler",
    "FluxFineTuner",
    "FMDFineTuner",
    "FMQFineTuner",
    "FMESFineTuner",
]
