"""FMES baseline: federated MoE fine-tuning with expert selection (FedMoE-style).

Each participant selects its most frequently activated experts (up to its
tuning budget) and *discards* all other experts: tokens routed to a dropped
expert simply skip the expert computation in that layer (their FFN contribution
is zero).  Selection uses activation frequency measured with a quantized
profiling pass — the criterion the paper argues is insufficient — and no
merged replacement preserves the dropped experts' information, which is what
limits FMES's final accuracy relative to Flux.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from ..analysis import ActivationProfile
from ..core.profiling import QuantizedProfiler
from ..federated import ExpertUpdate, Participant, ParticipantRoundResult
from ..models import ExpertFFN, ExpertRemap, MoETransformer
from ..systems import RoundCostBreakdown
from .base import FederatedFineTuner, communication_seconds

ExpertKey = Tuple[int, int]


def select_top_activated(profile: ActivationProfile, budget: int) -> List[ExpertKey]:
    """Globally rank experts by activation frequency and keep the top ``budget``."""
    scored: List[Tuple[float, ExpertKey]] = []
    for layer, frequencies in enumerate(profile.frequencies):
        for expert, frequency in enumerate(frequencies):
            scored.append((float(frequency), (layer, expert)))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [key for _, key in scored[:budget]]


def build_selected_model(global_model: MoETransformer, selected: List[ExpertKey]
                         ) -> Tuple[MoETransformer, Dict[ExpertKey, ExpertKey]]:
    """Compact model keeping only the selected experts; dropped experts are skipped.

    Each layer gets one frozen zero-output expert as its last slot; every
    non-selected original expert id is remapped onto it, which implements the
    "skip the expert computation" behaviour the paper describes for discarded
    experts.
    """
    compact = MoETransformer(global_model.config)
    compact.load_state_dict(global_model.state_dict())
    selected_by_layer: Dict[int, List[int]] = {}
    for layer, expert in selected:
        selected_by_layer.setdefault(layer, []).append(expert)

    slot_map: Dict[ExpertKey, ExpertKey] = {}
    for layer in range(global_model.num_layers):
        keep = sorted(selected_by_layer.get(layer, []))
        local_experts: List[ExpertFFN] = []
        mapping: Dict[int, int] = {}
        for slot, original in enumerate(keep):
            expert = ExpertFFN(global_model.config.d_model,
                               global_model.get_expert(layer, original).d_ff,
                               activation=global_model.config.activation)
            expert.load_state(global_model.get_expert(layer, original).state())
            local_experts.append(expert)
            mapping[original] = slot
            slot_map[(layer, slot)] = (layer, original)
        # Zero-output skip expert for every dropped id.
        skip = ExpertFFN(global_model.config.d_model,
                         global_model.config.d_ff,
                         activation=global_model.config.activation)
        for param in skip.parameters():
            param.data[...] = 0.0
        skip.freeze()
        skip_slot = len(local_experts)
        local_experts.append(skip)
        num_original = global_model.experts_per_layer()[layer]
        for original in range(num_original):
            if original not in mapping:
                mapping[original] = skip_slot
        remap = ExpertRemap(num_original, mapping)
        compact.blocks[layer].moe.set_compact_experts(local_experts, remap)
    return compact, slot_map


class FMESFineTuner(FederatedFineTuner):
    """Activation-frequency expert selection with discarded non-tuning experts."""

    name = "fmes"

    def __init__(self, *args, profiling_bits: int = 4, profiling_max_batches: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.profiler = QuantizedProfiler(bits=profiling_bits, max_batches=profiling_max_batches)

    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        global_model = self.server.global_model
        cost_model = self.cost_model_for(participant)
        max_seq_len = global_model.config.max_seq_len

        profiling_batches = participant.local_batches(
            self.config.batch_size, max_batches=self.profiler.max_batches, max_seq_len=max_seq_len)
        outcome = self.profiler.profile(global_model, profiling_batches, cost_model=cost_model)
        selected = select_top_activated(outcome.profile, participant.resources.max_tuning_experts)

        compact, slot_map = build_selected_model(global_model, selected)
        batches = participant.local_batches(
            self.config.batch_size, max_batches=self.config.max_local_batches,
            max_seq_len=max_seq_len)
        result = participant.local_finetune(
            compact, batches,
            learning_rate=self.config.learning_rate,
            trainable_experts=set(slot_map.keys()),
            iterations=self.config.local_iterations,
        )

        updates: List[ExpertUpdate] = []
        for (layer, slot), (_, original) in slot_map.items():
            weight = result.expert_token_counts.get((layer, original), result.num_samples)
            updates.append(ExpertUpdate(
                participant_id=participant.participant_id,
                layer=layer,
                expert=original,
                state=compact.expert_state(layer, slot),
                weight=float(max(weight, 1)),
            ))

        breakdown = RoundCostBreakdown()
        if cost_model is not None:
            breakdown.profiling = outcome.profiling_seconds
            breakdown.quantization = outcome.quantization_seconds
            breakdown.training = cost_model.training_time(
                cost_model.scaled_tokens(result.num_samples),
                tuning_experts=len(selected), frozen_experts=0)
            breakdown.communication = communication_seconds(
                participant, cost_model,
                download_experts=len(selected), upload_experts=len(selected))
        return ParticipantRoundResult(
            updates=updates,
            breakdown=breakdown,
            train_loss=result.mean_loss,
            report={"selected_experts": len(selected)},
        )
