"""Shared helpers for the baseline federated MoE fine-tuners.

All baselines reuse the round loop of
:class:`~repro.federated.orchestrator.FederatedFineTuner`; this module adds the
small pieces they share — turning a locally trained model's experts into
federated :class:`~repro.federated.aggregation.ExpertUpdate` objects and
building the participant communication plan.

Because the baselines only implement ``participant_round``, they inherit the
whole server-side aggregation topology for free: their updates aggregate
under whatever :class:`~repro.federated.strategies.AggregationStrategy`,
shard count and edge tier :class:`~repro.federated.RunConfig` selects, and
their runs checkpoint/resume through :mod:`repro.runtime.checkpoint` with no
method-specific state to capture (all baseline cross-round state lives in
the participants' batch seeds, which the checkpoint layer already snapshots).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple


from ..federated import ExpertUpdate, FederatedFineTuner, Participant
from ..federated.client import LocalTrainResult
from ..federated.communication import ExchangePlan
from ..models import MoETransformer
from ..systems import CostModel

ExpertKey = Tuple[int, int]


def expert_updates_from_model(
    participant_id: int,
    model: MoETransformer,
    result: LocalTrainResult,
    expert_keys: Optional[Iterable[ExpertKey]] = None,
    quantize_bits: Optional[int] = None,
) -> List[ExpertUpdate]:
    """Package (a subset of) a locally trained model's experts as updates.

    ``expert_keys`` are in the model's local coordinates, which for the
    full-model baselines coincide with the original expert ids.  With
    ``quantize_bits`` set, each expert state is round-tripped through low-bit
    quantization before upload (FMQ's accumulated precision error).
    """
    from ..quantization import quantize_array

    if expert_keys is None:
        expert_keys = list(model.iter_expert_ids())
    updates: List[ExpertUpdate] = []
    for layer, expert in expert_keys:
        state = model.expert_state(layer, expert)
        if quantize_bits is not None:
            state = {name: quantize_array(value, quantize_bits).dequantize()
                     for name, value in state.items()}
        weight = result.expert_token_counts.get((layer, expert), result.num_samples)
        updates.append(ExpertUpdate(
            participant_id=participant_id,
            layer=layer,
            expert=expert,
            state=state,
            weight=float(max(weight, 1)),
        ))
    return updates


def communication_seconds(participant: Participant, cost_model: Optional[CostModel],
                          download_experts: int, upload_experts: int,
                          bytes_per_param: float = 2.0) -> float:
    """Transfer time for a participant's round, or 0 without a cost model."""
    if cost_model is None:
        return 0.0
    exchange = ExchangePlan(download_experts=download_experts, upload_experts=upload_experts,
                            bytes_per_param=bytes_per_param)
    return exchange.communication_seconds(cost_model)


__all__ = [
    "FederatedFineTuner",
    "ExpertKey",
    "expert_updates_from_model",
    "communication_seconds",
]
