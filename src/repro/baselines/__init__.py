"""Baseline federated MoE fine-tuners compared against Flux in the paper."""

from .base import communication_seconds, expert_updates_from_model
from .fmd import FMDFineTuner
from .fmes import FMESFineTuner, build_selected_model, select_top_activated
from .fmq import FMQFineTuner

__all__ = [
    "FMDFineTuner",
    "FMQFineTuner",
    "FMESFineTuner",
    "select_top_activated",
    "build_selected_model",
    "expert_updates_from_model",
    "communication_seconds",
]
