"""FMD baseline: federated MoE fine-tuning with dynamic expert offloading.

Every participant fine-tunes the *full* expert set.  Experts that do not fit in
GPU memory (beyond the participant's :math:`B_i` budget) live in host RAM and
are swapped over PCIe whenever the gate routes tokens to them — the standard
offloading recipe of memory-constrained MoE serving, applied to fine-tuning.
FMD therefore converges like full fine-tuning but pays a large per-round
offloading cost, which is exactly how the paper characterises it.
"""

from __future__ import annotations

from ..federated import Participant, ParticipantRoundResult
from ..systems import RoundCostBreakdown
from .base import FederatedFineTuner, communication_seconds, expert_updates_from_model


class FMDFineTuner(FederatedFineTuner):
    """Full-model fine-tuning with CPU<->GPU expert offloading."""

    name = "fmd"

    #: every resident-set miss swaps an expert in and the evicted one out
    OFFLOAD_ROUND_TRIPS = 2

    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        local_model = self.server.model_snapshot()
        batches = participant.local_batches(
            self.config.batch_size,
            max_batches=self.config.max_local_batches,
            max_seq_len=local_model.config.max_seq_len,
        )
        result = participant.local_finetune(
            local_model, batches,
            learning_rate=self.config.learning_rate,
            trainable_experts=None,
            iterations=self.config.local_iterations,
        )
        updates = expert_updates_from_model(participant.participant_id, local_model, result)

        cost_model = self.cost_model_for(participant)
        breakdown = RoundCostBreakdown()
        if cost_model is not None:
            total_experts = sum(local_model.experts_per_layer())
            resident = min(participant.resources.max_experts, total_experts)
            overflow = max(total_experts - resident, 0)
            swaps_per_batch = overflow * self.OFFLOAD_ROUND_TRIPS
            breakdown.training = cost_model.training_time(
                cost_model.scaled_tokens(result.num_samples),
                tuning_experts=total_experts, frozen_experts=0)
            breakdown.offloading = cost_model.offload_time(swaps_per_batch * result.num_batches)
            breakdown.communication = communication_seconds(
                participant, cost_model,
                download_experts=total_experts, upload_experts=total_experts)
        return ParticipantRoundResult(
            updates=updates,
            breakdown=breakdown,
            train_loss=result.mean_loss,
            report={"offloaded_experts": max(sum(local_model.experts_per_layer())
                                             - participant.resources.max_experts, 0)},
        )
