"""FMQ baseline: federated MoE fine-tuning on a quantized model.

All expert parameters are quantized to INT4 so the whole model fits into the
participant's GPU; fine-tuning runs on the dequantized (lossy) weights and the
trained experts are re-quantized before upload.  The round-trip every round is
what makes FMQ cheap per round but unstable: precision errors accumulate in the
aggregated global model, which is the behaviour the paper reports (unstable
convergence, lowest final accuracy).
"""

from __future__ import annotations

from ..federated import Participant, ParticipantRoundResult
from ..federated.communication import bytes_per_param_for_bits
from ..quantization import quantize_model
from ..systems import RoundCostBreakdown
from .base import FederatedFineTuner, communication_seconds, expert_updates_from_model


class FMQFineTuner(FederatedFineTuner):
    """Quantized full-model fine-tuning (INT4 by default)."""

    name = "fmq"

    def __init__(self, *args, bits: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if bits not in (2, 3, 4, 8):
            raise ValueError("bits must be one of 2, 3, 4, 8")
        self.bits = bits

    def wire_codec_name(self) -> str:
        """FMQ ships quantized payloads, so wire transport defaults to the
        matching ``int{bits}`` codec; an explicit ``RunConfig.codec`` choice
        (even ``"fp64"``) wins, and 3-bit models — which have no byte-packable
        wire codec — fall back to the base default."""
        if self.config.codec is None and self.bits in (2, 4, 8):
            return f"int{self.bits}"
        return super().wire_codec_name()

    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        local_model = quantize_model(self.server.model_snapshot(), self.bits)
        batches = participant.local_batches(
            self.config.batch_size,
            max_batches=self.config.max_local_batches,
            max_seq_len=local_model.config.max_seq_len,
        )
        result = participant.local_finetune(
            local_model, batches,
            learning_rate=self.config.learning_rate,
            trainable_experts=None,
            iterations=self.config.local_iterations,
        )
        # Uploaded expert states are re-quantized: the source of FMQ's
        # accumulated precision error across rounds.
        updates = expert_updates_from_model(
            participant.participant_id, local_model, result, quantize_bits=self.bits)

        cost_model = self.cost_model_for(participant)
        breakdown = RoundCostBreakdown()
        if cost_model is not None:
            total_experts = sum(local_model.experts_per_layer())
            breakdown.quantization = cost_model.quantization_time(total_experts)
            breakdown.training = cost_model.training_time(
                cost_model.scaled_tokens(result.num_samples),
                tuning_experts=total_experts, frozen_experts=0, quantized=True)
            # Both directions travel at the quantized wire precision.
            breakdown.communication = communication_seconds(
                participant, cost_model,
                download_experts=total_experts, upload_experts=total_experts,
                bytes_per_param=bytes_per_param_for_bits(self.bits))
        return ParticipantRoundResult(
            updates=updates,
            breakdown=breakdown,
            train_loss=result.mean_loss,
            report={"bits": self.bits},
        )
