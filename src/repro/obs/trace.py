"""Nested span tracing for federated runs.

A :class:`Span` is one timed unit of run structure — ``run > round >
select/train/transmit/fold/checkpoint`` — carrying *both* clocks:

* **real time**: a ``time.time()`` wall-clock start (comparable across
  processes on one host, which is what lets process-pool workers contribute
  spans) plus a ``time.perf_counter()``-measured duration;
* **simulated time**: the event-clock seconds the run charges for the same
  work (``sim_time`` / ``sim_duration``), set wherever the simulation knows
  them — round durations, participant cost breakdowns, channel airtime.

:class:`Tracer` maintains the open-span stack: ``span(...)`` is a context
manager, children record their parent's id, and the ``round`` attribute is
inherited from the nearest enclosing span so every span of a round can be
attributed (and, on resume, pruned) by round index.  Finished spans are
handed to a ``sink`` callable — :class:`repro.obs.run.RunTelemetry` appends
them to the JSONL event log.

Worker processes cannot share the parent's tracer; they measure their work as
plain dicts (:func:`span_record`) that travel back through the pool alongside
the result frames and are re-parented into the live trace via
:meth:`Tracer.ingest`.

:class:`NullTracer` is the default when telemetry is off: ``span()`` returns
a pre-built no-op context manager, so instrumentation sites cost one
attribute lookup and one method call — nothing is allocated and nothing is
recorded (overhead is gated by ``perf_harness.py --suite telemetry``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Span:
    """One timed unit of run structure (see module docstring for the clocks)."""

    name: str
    category: str
    span_id: int
    parent_id: Optional[int] = None
    round: Optional[int] = None
    wall_start: float = 0.0
    duration_s: float = 0.0
    sim_time: Optional[float] = None
    sim_duration: Optional[float] = None
    attributes: Dict = field(default_factory=dict)
    _perf_start: float = field(default=0.0, repr=False, compare=False)

    def set(self, sim_time: Optional[float] = None,
            sim_duration: Optional[float] = None, **attributes) -> "Span":
        """Attach simulated-clock values and extra attributes mid-span."""
        if sim_time is not None:
            self.sim_time = float(sim_time)
        if sim_duration is not None:
            self.sim_duration = float(sim_duration)
        self.attributes.update(attributes)
        return self

    def as_event(self) -> Dict:
        """The span as a JSONL event dict (plain JSON-safe types only)."""
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "round": self.round,
            "wall_start": self.wall_start,
            "duration_s": self.duration_s,
            "sim_time": self.sim_time,
            "sim_duration": self.sim_duration,
            "attrs": dict(self.attributes),
        }


class _SpanContext:
    """Context manager closing one span and handing it to the tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self._span)
        return False


class _NullSpan(Span):
    """Shared inert span: ``set`` discards everything."""

    def set(self, sim_time=None, sim_duration=None, **attributes) -> "Span":  # noqa: ARG002
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan(name="", category="", span_id=0)
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The telemetry-off tracer: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, category: str = "run", **kwargs):  # noqa: ARG002
        return _NULL_CONTEXT

    def ingest(self, record: Dict, **kwargs) -> None:  # noqa: ARG002
        """Discard a worker-produced span record."""

    def current_round(self) -> Optional[int]:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans and streams finished ones to ``sink``.

    The tracer is single-threaded by design: the run loop, aggregation plane
    and exporters all live on the coordinator thread, and worker processes
    contribute via :meth:`ingest` rather than sharing the stack.
    """

    enabled = True

    def __init__(self, sink: Optional[Callable[[Span], None]] = None) -> None:
        self.sink = sink
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------ spans
    def span(self, name: str, category: str = "run",
             round: Optional[int] = None,
             sim_time: Optional[float] = None,
             sim_duration: Optional[float] = None,
             **attributes) -> _SpanContext:
        """Open a nested span (a context manager yielding the :class:`Span`).

        ``round`` is inherited from the nearest enclosing span when not given,
        so e.g. a ``train`` span opened inside a ``round`` span is
        automatically attributed to that round.
        """
        parent = self._stack[-1] if self._stack else None
        if round is None and parent is not None:
            round = parent.round
        span = Span(
            name=name,
            category=category,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            round=round,
            wall_start=time.time(),
            sim_time=sim_time,
            sim_duration=sim_duration,
            attributes=dict(attributes),
            _perf_start=time.perf_counter(),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span._perf_start
        # Exceptions may unwind several spans at once; pop everything the
        # finished span still covers so the stack cannot grow stale entries.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.sink is not None:
            self.sink(span)

    def ingest(self, record: Dict, round: Optional[int] = None) -> None:
        """Adopt a worker-produced :func:`span_record` into the live trace.

        The record becomes a child of the currently open span (worker spans
        are measured while their dispatching round/fold span is open), keeps
        its worker-measured wall start and duration, and inherits the
        enclosing round unless the record or caller pins one.
        """
        parent = self._stack[-1] if self._stack else None
        if round is None:
            round = record.get("round")
        if round is None and parent is not None:
            round = parent.round
        span = Span(
            name=record.get("name", "span"),
            category=record.get("cat", "work"),
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            round=round,
            wall_start=float(record.get("wall_start", time.time())),
            duration_s=float(record.get("duration_s", 0.0)),
            sim_time=record.get("sim_time"),
            sim_duration=record.get("sim_duration"),
            attributes=dict(record.get("attrs", {})),
        )
        self._next_id += 1
        if self.sink is not None:
            self.sink(span)

    def current_round(self) -> Optional[int]:
        """The round index of the innermost open span (or ``None``)."""
        for span in reversed(self._stack):
            if span.round is not None:
                return span.round
        return None


def span_record(name: str, category: str, wall_start: float, duration_s: float,
                sim_duration: Optional[float] = None, **attrs) -> Dict:
    """A picklable span measurement for work done outside the tracer's process.

    Process-pool workers cannot reach the coordinator's tracer; they time
    their job with ``time.time()`` / ``time.perf_counter()`` and ship one of
    these dicts back alongside their result frames, which the parent adopts
    via :meth:`Tracer.ingest`.
    """
    record = {"name": name, "cat": category, "wall_start": float(wall_start),
              "duration_s": float(duration_s), "attrs": dict(attrs)}
    if sim_duration is not None:
        record["sim_duration"] = float(sim_duration)
    return record
