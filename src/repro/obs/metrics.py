"""Run-wide metrics registry: counters, gauges and histograms.

The registry is the numeric companion of the span tracer: spans say *where
time went*, metrics say *how much of everything happened* — bytes by codec
and tier, payloads lost/corrupted, straggler/dropout counts, fold-latency
histograms, checkpoint sizes and durations.

Instruments are created on first use and keyed by ``(name, labels)``, in the
Prometheus style::

    registry.counter("repro_tier_bytes_total", tier="tier0").inc(4096)
    registry.histogram("repro_fold_seconds").observe(0.012)

Everything is plain Python floats/ints, snapshot-able to JSON
(:meth:`MetricsRegistry.snapshot`) and restorable
(:meth:`MetricsRegistry.restore`), which is how a resumed run's registry
continues exactly where the interrupted run's counters stood (the
:class:`~repro.obs.run.RunTelemetry` layer replays the last surviving
per-round snapshot from the JSONL event log).  The Prometheus text rendering
lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets: latencies from 100µs to ~2 minutes (seconds)
DEFAULT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 15.0, 60.0, 120.0)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for deltas")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``counts[i]`` counts observations ``<= bounds[i]``; the implicit last
    bucket is ``+Inf``.  ``sum``/``count`` support mean queries.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bucket bounds must be sorted and unique")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, float(value))] += 1
        self.sum += float(value)
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (``+Inf`` last)."""
        out, total = [], 0
        for c in self.counts:
            total += c
            out.append(total)
        return out


class MetricsRegistry:
    """Lazily-created instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str, **labels) -> Counter:
        return self._counters.setdefault(name, {}).setdefault(
            _label_key(labels), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauges.setdefault(name, {}).setdefault(
            _label_key(labels), Gauge())

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram(buckets)
        return hist

    def counter_value(self, name: str, **labels) -> float:
        """Current total of a counter (0.0 if it was never incremented)."""
        series = self._counters.get(name, {})
        entry = series.get(_label_key(labels))
        return entry.value if entry is not None else 0.0

    # -------------------------------------------------------------- durability
    def snapshot(self) -> Dict:
        """The whole registry as a JSON-safe dict (labels as sorted pairs)."""
        return {
            "counters": [
                {"name": name, "labels": list(key), "value": counter.value}
                for name, series in sorted(self._counters.items())
                for key, counter in sorted(series.items())
            ],
            "gauges": [
                {"name": name, "labels": list(key), "value": gauge.value}
                for name, series in sorted(self._gauges.items())
                for key, gauge in sorted(series.items())
            ],
            "histograms": [
                {"name": name, "labels": list(key), "bounds": list(hist.bounds),
                 "counts": list(hist.counts), "sum": hist.sum, "count": hist.count}
                for name, series in sorted(self._histograms.items())
                for key, hist in sorted(series.items())
            ],
        }

    def restore(self, snapshot: Optional[Dict]) -> None:
        """Replace the registry contents with a :meth:`snapshot` (resume path)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        if not snapshot:
            return
        for entry in snapshot.get("counters", []):
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.counter(entry["name"], **labels).value = float(entry["value"])
        for entry in snapshot.get("gauges", []):
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.gauge(entry["name"], **labels).value = float(entry["value"])
        for entry in snapshot.get("histograms", []):
            labels = dict(tuple(pair) for pair in entry["labels"])
            hist = self.histogram(entry["name"], buckets=entry["bounds"], **labels)
            hist.counts = [int(c) for c in entry["counts"]]
            hist.sum = float(entry["sum"])
            hist.count = int(entry["count"])

    # -------------------------------------------------------------- iteration
    def iter_counters(self):
        for name, series in sorted(self._counters.items()):
            for key, counter in sorted(series.items()):
                yield name, dict(key), counter

    def iter_gauges(self):
        for name, series in sorted(self._gauges.items()):
            for key, gauge in sorted(series.items()):
                yield name, dict(key), gauge

    def iter_histograms(self):
        for name, series in sorted(self._histograms.items()):
            for key, hist in sorted(series.items()):
                yield name, dict(key), hist
