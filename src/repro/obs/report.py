"""Breakdown tables computed from a JSONL trace — backing ``scripts/run_report.py``.

Pure functions from an event list (see :func:`repro.obs.export.load_events`)
to ``(headers, rows)`` tables, plus a plain-text renderer.  Everything is
derived from the trace alone so reports can be produced long after a run —
or for a run that was killed and resumed — without any live objects.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from .export import last_metrics_snapshot

Table = Tuple[List[str], List[List[str]]]


def _spans(events: Iterable[Dict]) -> List[Dict]:
    return [event for event in events if event.get("type") == "span"]


def _fmt_seconds(value: float) -> str:
    return f"{value:.4f}"


def _fmt_bytes(value: float) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.2f} KiB"
    return f"{value:.0f} B"


def round_table(events: Iterable[Dict]) -> Table:
    """Per-round wall/simulated time and phase breakdown.

    The phase columns sum the wall durations of each round's ``train``,
    ``fold`` and ``transfer`` spans (including worker-ingested ones), which
    is the trace-level analogue of the paper's overhead-breakdown figure.
    """
    per_round: Dict[int, Dict[str, float]] = defaultdict(
        lambda: defaultdict(float))
    participants: Dict[int, int] = defaultdict(int)
    for span in _spans(events):
        round_index = span.get("round")
        if round_index is None:
            continue
        round_index = int(round_index)
        cat = span.get("cat", "run")
        if cat == "round":
            per_round[round_index]["wall"] += float(span.get("duration_s", 0.0))
            if span.get("sim_duration") is not None:
                per_round[round_index]["sim"] += float(span["sim_duration"])
        elif cat in ("train", "fold", "transfer", "select", "checkpoint"):
            per_round[round_index][cat] += float(span.get("duration_s", 0.0))
            if cat == "train":
                participants[round_index] += 1
    headers = ["round", "wall_s", "sim_s", "select_s", "train_s",
               "transfer_s", "fold_s", "checkpoint_s", "train_spans"]
    rows = []
    for round_index in sorted(per_round):
        data = per_round[round_index]
        rows.append([
            str(round_index),
            _fmt_seconds(data["wall"]),
            _fmt_seconds(data["sim"]),
            _fmt_seconds(data["select"]),
            _fmt_seconds(data["train"]),
            _fmt_seconds(data["transfer"]),
            _fmt_seconds(data["fold"]),
            _fmt_seconds(data["checkpoint"]),
            str(participants[round_index]),
        ])
    return headers, rows


def tier_table(events: Iterable[Dict]) -> Table:
    """Per-tier backhaul bytes/payloads from the final metrics snapshot."""
    snapshot = last_metrics_snapshot(events)
    tiers: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    if snapshot:
        for entry in snapshot.get("counters", []):
            labels = dict(tuple(pair) for pair in entry["labels"])
            tier = labels.get("tier")
            if tier is None:
                continue
            if entry["name"] == "repro_tier_bytes_total":
                tiers[tier]["bytes"] += entry["value"]
            elif entry["name"] == "repro_tier_payloads_total":
                tiers[tier]["payloads"] += entry["value"]
    headers = ["tier", "bytes", "payloads"]
    rows = [[tier, _fmt_bytes(data["bytes"]), f"{data['payloads']:.0f}"]
            for tier, data in sorted(tiers.items())]
    return headers, rows


def service_table(events: Iterable[Dict]) -> Table:
    """Aggregation-service fold-plane counters from the final snapshot.

    Surfaces every ``repro_service_*`` counter: per-tier fold counts
    (``repro_service_tier_folds_total{tier=...}`` — inner-tier routing made
    visible), per-codec wire payload bytes
    (``repro_service_frame_bytes_total{codec=...}`` — what the compressed
    service wire saves), reference-shipping overhead and the per-server
    transport totals.
    """
    snapshot = last_metrics_snapshot(events)
    headers = ["metric", "value"]
    rows: List[List[str]] = []
    if snapshot:
        for entry in snapshot.get("counters", []):
            if not entry["name"].startswith("repro_service_"):
                continue
            labels = dict(tuple(pair) for pair in entry["labels"])
            suffix = "".join(f"{{{k}={v}}}" for k, v in sorted(labels.items()))
            value = entry["value"]
            rendered = (_fmt_bytes(value) if "bytes" in entry["name"]
                        else f"{value:g}")
            rows.append([entry["name"] + suffix, rendered])
    rows.sort()
    return headers, rows


def totals_table(events: Iterable[Dict]) -> Table:
    """Run-wide counter/gauge totals from the final metrics snapshot."""
    snapshot = last_metrics_snapshot(events)
    headers = ["metric", "value"]
    rows: List[List[str]] = []
    if snapshot:
        for entry in snapshot.get("counters", []) + snapshot.get("gauges", []):
            labels = dict(tuple(pair) for pair in entry["labels"])
            if entry["name"].startswith("repro_service_"):
                continue  # covered by service_table
            if "tier" in labels:
                continue  # covered by tier_table
            suffix = "".join(f"{{{k}={v}}}" for k, v in sorted(labels.items()))
            value = entry["value"]
            rendered = (_fmt_bytes(value) if entry["name"].endswith("_bytes_total")
                        or entry["name"].endswith("_bytes") else f"{value:g}")
            rows.append([entry["name"] + suffix, rendered])
    return headers, rows


def category_table(events: Iterable[Dict]) -> Table:
    """Total wall seconds and span counts per span category."""
    totals: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
    for span in _spans(events):
        entry = totals[span.get("cat", "run")]
        entry[0] += float(span.get("duration_s", 0.0))
        entry[1] += 1
    headers = ["category", "wall_s", "spans"]
    rows = [[cat, _fmt_seconds(total), str(count)]
            for cat, (total, count) in sorted(totals.items())]
    return headers, rows


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a table as aligned plain text."""
    if not rows:
        return "(no data)"
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(row) for row in rows])
