"""Run-level telemetry: one object tying tracer, registry and exporters together.

:class:`RunTelemetry` is what the orchestrator instantiates when
``RunConfig(telemetry=True)``:

* every finished :class:`~repro.obs.trace.Span` is appended to the JSONL
  event log (and fold/train/transfer/checkpoint spans feed latency
  histograms);
* :meth:`end_round` folds one :class:`RoundResult`'s wire accounting into the
  counters — per-tier byte counters are incremented *from the round result
  itself*, so they match ``RoundResult.tier_bytes`` exactly rather than
  re-deriving traffic from instrumentation — and writes a cumulative
  registry snapshot event for that round;
* :meth:`begin` makes resume safe: given the resumed run's start round it
  prunes the event log of every round about to be re-executed and restores
  the registry from the last surviving snapshot, so the continuation appends
  to the same trace without duplicating rounds;
* :meth:`finish` renders the Chrome trace JSON and Prometheus text from the
  final event log and registry.

:class:`NullTelemetry` is the telemetry-off twin: a :class:`NullTracer` and
no-op lifecycle methods, so instrumentation sites never branch on a flag.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from .export import (
    CHROME_TRACE_FILE,
    JSONL_FILE,
    PROMETHEUS_FILE,
    append_event,
    last_metrics_snapshot,
    load_events,
    prune_events_for_resume,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import MetricsRegistry
from .trace import NULL_TRACER, Span, Tracer

#: span categories whose durations feed a ``repro_<cat>_seconds`` histogram
_TIMED_CATEGORIES = frozenset({"train", "fold", "transfer", "checkpoint"})


class NullTelemetry:
    """Telemetry-off: a null tracer and no-op lifecycle (the default)."""

    enabled = False
    tracer = NULL_TRACER
    registry: Optional[MetricsRegistry] = None
    directory: Optional[str] = None

    def begin(self, resume_round: Optional[int] = None) -> None:  # noqa: ARG002
        pass

    def end_round(self, round_result, codec: Optional[str] = None) -> None:  # noqa: ARG002
        pass

    def record_checkpoint(self, path: str, duration_s: float,
                          mode: str = "full",
                          write: str = "foreground") -> None:  # noqa: ARG002
        pass

    def finish(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()


def _tree_size(path: str) -> int:
    """Total bytes under ``path`` (a snapshot directory) or of a plain file."""
    try:
        if not os.path.isdir(path):
            return os.path.getsize(path)
        total = 0
        for root, _, files in os.walk(path):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(root, name))
                except OSError:
                    pass
        return total
    except OSError:
        return 0


class RunTelemetry:
    """Live telemetry for one run directory (see module docstring)."""

    enabled = True

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.registry = MetricsRegistry()
        self.tracer = Tracer(sink=self._on_span)
        self._handle = None
        self._pid = os.getpid()

    # ------------------------------------------------------------- lifecycle
    @property
    def jsonl_path(self) -> str:
        return os.path.join(self.directory, JSONL_FILE)

    @property
    def chrome_trace_path(self) -> str:
        return os.path.join(self.directory, CHROME_TRACE_FILE)

    @property
    def prometheus_path(self) -> str:
        return os.path.join(self.directory, PROMETHEUS_FILE)

    def begin(self, resume_round: Optional[int] = None) -> None:
        """Open the event log — truncating for a fresh run, pruning + appending
        for a resumed one (``resume_round`` = first round to be re-executed)."""
        os.makedirs(self.directory, exist_ok=True)
        if resume_round is not None and os.path.exists(self.jsonl_path):
            prune_events_for_resume(self.jsonl_path, resume_round)
            self.registry.restore(
                last_metrics_snapshot(load_events(self.jsonl_path),
                                      before_round=resume_round))
            mode = "a"
        else:
            self.registry.restore(None)
            mode = "w"
        self._handle = open(self.jsonl_path, mode, encoding="utf-8")
        self._pid = os.getpid()

    def finish(self) -> None:
        """Close the event log and render the derived exports."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if os.path.exists(self.jsonl_path):
            write_chrome_trace(self.chrome_trace_path, load_events(self.jsonl_path))
        write_prometheus(self.prometheus_path, self.registry)

    # ----------------------------------------------------------------- sinks
    def _writable(self) -> bool:
        return self._handle is not None and os.getpid() == self._pid

    def _on_span(self, span: Span) -> None:
        if span.category in _TIMED_CATEGORIES:
            self.registry.histogram(
                f"repro_{span.category}_seconds").observe(span.duration_s)
        if self._writable():
            append_event(self._handle, span.as_event())

    def end_round(self, round_result, codec: Optional[str] = None) -> None:
        """Fold one round's accounting into the registry and snapshot it.

        Counters are incremented straight from the :class:`RoundResult`
        fields — the same numbers the tracker and examples report — so the
        per-tier byte counters match ``tier_bytes`` exactly by construction.
        """
        reg = self.registry
        reg.counter("repro_rounds_total").inc()
        reg.gauge("repro_simulated_time_seconds").set(round_result.simulated_time)
        reg.histogram("repro_round_sim_seconds").observe(round_result.round_duration)
        if round_result.wire_bytes:
            reg.counter("repro_wire_bytes_total",
                        codec=codec or "analytic").inc(round_result.wire_bytes)
        if round_result.wire_seconds:
            reg.counter("repro_wire_seconds_total").inc(round_result.wire_seconds)
        for tier, tier_bytes in enumerate(round_result.tier_bytes):
            reg.counter("repro_tier_bytes_total", tier=f"tier{tier}").inc(tier_bytes)
        for tier, tier_payloads in enumerate(round_result.tier_payloads):
            reg.counter("repro_tier_payloads_total",
                        tier=f"tier{tier}").inc(tier_payloads)
        if round_result.edge_bytes:
            reg.counter("repro_edge_bytes_total").inc(round_result.edge_bytes)
        reg.counter("repro_payloads_lost_total").inc(round_result.payloads_lost)
        reg.counter("repro_payloads_corrupted_total").inc(
            round_result.payloads_corrupted)
        reg.counter("repro_stragglers_total").inc(round_result.num_stragglers)
        reg.counter("repro_dropouts_total").inc(round_result.num_dropped)
        reg.counter("repro_participants_aggregated_total").inc(
            round_result.num_aggregated)
        if self._writable():
            append_event(self._handle, {
                "type": "metrics",
                "round": round_result.round_index,
                "registry": reg.snapshot(),
            })

    def record_checkpoint(self, path: str, duration_s: float,
                          mode: str = "full", write: str = "foreground") -> None:
        """Account one snapshot write.

        ``mode`` ("full" | "delta") and ``write`` ("foreground" |
        "background") label the byte/latency series so reports can show how
        much the delta encoding saved and what still blocked the round loop.
        """
        size = _tree_size(path)
        self.registry.counter("repro_checkpoint_bytes_total", mode=mode).inc(size)
        self.registry.gauge("repro_checkpoint_last_bytes").set(size)
        self.registry.counter("repro_checkpoints_total",
                              mode=mode, write=write).inc()
        self.registry.histogram("repro_checkpoint_seconds").observe(duration_s)

    # ----------------------------------------------------------- pickling
    # The tuner (which holds this object) is pickled into pool workers; the
    # open file handle stays behind and workers, with a different pid, never
    # write even if they unpickle a copy.
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["_handle"] = None
        return state


def make_telemetry(config) -> "RunTelemetry | NullTelemetry":
    """Build the telemetry object a :class:`RunConfig` asks for."""
    if not getattr(config, "telemetry", False):
        return NULL_TELEMETRY
    directory = getattr(config, "telemetry_dir", None) or "telemetry"
    return RunTelemetry(directory)
