"""Observability for the aggregation plane: tracing, metrics, exporters.

The run loop, topology tree, process pools, wire channels and checkpointer
all emit into one substrate:

* :mod:`repro.obs.trace` — nested spans (``run > round >
  select/train/transmit/fold/checkpoint``) with simulated *and* real clocks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed by labels;
* :mod:`repro.obs.export` — JSONL event log, Chrome trace-event JSON
  (Perfetto-loadable), Prometheus text, all resume-safe;
* :mod:`repro.obs.run` — :class:`RunTelemetry` wiring the three together
  behind ``RunConfig(telemetry=True, telemetry_dir=...)``;
* :mod:`repro.obs.report` — per-round/per-tier breakdown tables
  (``scripts/run_report.py``);
* :mod:`repro.obs.log` — structured ``key=value`` logging for library code.

Telemetry is off by default: the :class:`NullTracer`/:class:`NullTelemetry`
pair makes every instrumentation site a constant-time no-op (gated by
``benchmarks/perf_harness.py --suite telemetry``).
"""

from .export import (
    CHROME_TRACE_FILE,
    JSONL_FILE,
    PROMETHEUS_FILE,
    chrome_trace,
    last_metrics_snapshot,
    load_events,
    prometheus_text,
    prune_events_for_resume,
    write_chrome_trace,
    write_prometheus,
)
from .log import StructuredLogger, enable_console_logging, get_logger
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    category_table,
    format_table,
    round_table,
    service_table,
    tier_table,
    totals_table,
)
from .run import NULL_TELEMETRY, NullTelemetry, RunTelemetry, make_telemetry
from .trace import NULL_TRACER, NullTracer, Span, Tracer, span_record

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_record",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "JSONL_FILE",
    "CHROME_TRACE_FILE",
    "PROMETHEUS_FILE",
    "load_events",
    "prune_events_for_resume",
    "last_metrics_snapshot",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "RunTelemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "make_telemetry",
    "round_table",
    "tier_table",
    "service_table",
    "totals_table",
    "category_table",
    "format_table",
    "get_logger",
    "enable_console_logging",
    "StructuredLogger",
]
