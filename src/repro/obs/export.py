"""Trace and metrics exporters: JSONL event log, Chrome trace JSON, Prometheus text.

Three formats, one source of truth:

* **JSONL event log** (``trace.jsonl``) — the live, append-only record.  One
  JSON object per line: ``span`` events (from :class:`~repro.obs.trace.Span`)
  and per-round ``metrics`` events (cumulative
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`'s).  Each line is
  flushed as written, so a hard-killed run loses at most the event being
  written — which is what makes resume-safe appending possible.
* **Chrome trace-event JSON** (``trace_chrome.json``) — rendered *from* the
  JSONL at the end of a run, loadable in ``chrome://tracing`` and Perfetto.
  Because it is always regenerated from the full (pruned + appended) event
  log, a resumed run's Chrome trace covers the whole logical run with no
  duplicate rounds.
* **Prometheus text snapshot** (``metrics.prom``) — the registry rendered in
  the exposition format at the end of a run.

Resume safety: :func:`prune_events_for_resume` rewrites the JSONL dropping
every event of rounds the resumed run will re-execute (the interrupted
process may have traced a round whose checkpoint never landed), and
:func:`last_metrics_snapshot` recovers the registry state the continuation
should resume counting from.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from .metrics import MetricsRegistry

JSONL_FILE = "trace.jsonl"
CHROME_TRACE_FILE = "trace_chrome.json"
PROMETHEUS_FILE = "metrics.prom"


# --------------------------------------------------------------------- JSONL
def append_event(handle, event: Dict) -> None:
    """Write one event line and flush it (hard kills lose at most one line)."""
    handle.write(json.dumps(event, separators=(",", ":")) + "\n")
    handle.flush()


def load_events(path: str) -> List[Dict]:
    """Read a JSONL event log; a torn final line (crash mid-write) is skipped."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail of a killed run
    return events


def prune_events_for_resume(path: str, start_round: int) -> int:
    """Drop events of rounds ``>= start_round`` from a JSONL log, in place.

    The resumed run re-executes those rounds and will re-emit their spans and
    metrics; keeping the killed run's copies would duplicate them.  Events
    with no ``round`` (run-level spans of the *finished* prefix, if any) are
    kept.  Returns the number of events dropped.
    """
    if not os.path.exists(path):
        return 0
    events = load_events(path)
    kept = [event for event in events
            if event.get("round") is None or int(event["round"]) < start_round]
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for event in kept:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
    os.replace(tmp_path, path)
    return len(events) - len(kept)


def last_metrics_snapshot(events: Iterable[Dict],
                          before_round: Optional[int] = None) -> Optional[Dict]:
    """The newest cumulative metrics snapshot (optionally of rounds ``< before_round``)."""
    best: Optional[Dict] = None
    best_round = -1
    for event in events:
        if event.get("type") != "metrics" or event.get("round") is None:
            continue
        round_index = int(event["round"])
        if before_round is not None and round_index >= before_round:
            continue
        if round_index > best_round:
            best_round = round_index
            best = event.get("registry")
    return best


# -------------------------------------------------------------- Chrome trace
def _chrome_tid(event: Dict) -> int:
    """A Chrome/Perfetto thread id keeping concurrent spans on separate rows.

    Complete (``ph: "X"``) events on one tid must nest strictly by time, so
    spans that can overlap — per-participant training, per-shard and per-node
    pooled folds — are fanned out to their own rows; the sequential run
    structure (run/round/select/fold/transfer/checkpoint) stays on row 0.
    """
    attrs = event.get("attrs", {})
    if "participant" in attrs:
        return 1 + int(attrs["participant"])
    if "shard" in attrs:
        return 2000 + int(attrs["shard"])
    if "node" in attrs:
        return 3000 + 100 * int(attrs.get("tier", 0)) + int(attrs["node"])
    return 0


def chrome_trace(events: Iterable[Dict]) -> Dict:
    """Render span events as a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest span's wall start,
    so traces stitched across a kill+resume (two processes, one host clock)
    stay on one coherent timeline.  Span/parent ids, round indices and the
    simulated-clock values ride along in ``args``.
    """
    spans = [event for event in events if event.get("type") == "span"]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(float(span["wall_start"]) for span in spans)
    trace_events = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "repro federated run"}},
    ]
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span.get("span_id")
        args["parent_id"] = span.get("parent_id")
        if span.get("round") is not None:
            args["round"] = span["round"]
        if span.get("sim_time") is not None:
            args["sim_time_s"] = span["sim_time"]
        if span.get("sim_duration") is not None:
            args["sim_duration_s"] = span["sim_duration"]
        trace_events.append({
            "name": span.get("name", "span"),
            "cat": span.get("cat", "run"),
            "ph": "X",
            "pid": 1,
            "tid": _chrome_tid(span),
            "ts": (float(span["wall_start"]) - origin) * 1e6,
            "dur": max(float(span.get("duration_s", 0.0)), 0.0) * 1e6,
            "args": args,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[Dict]) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle, indent=1)
        handle.write("\n")
    return path


# ---------------------------------------------------------------- Prometheus
def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus exposition format (counters, gauges,
    cumulative-bucket histograms with ``_sum``/``_count``)."""
    lines: List[str] = []
    seen_types = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for name, labels, counter in registry.iter_counters():
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {counter.value:g}")
    for name, labels, gauge in registry.iter_gauges():
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {gauge.value:g}")
    for name, labels, hist in registry.iter_histograms():
        header(name, "histogram")
        cumulative = hist.cumulative_counts()
        for bound, count in zip(hist.bounds, cumulative):
            bucket_labels = dict(labels, le=f"{bound:g}")
            lines.append(f"{name}_bucket{_prom_labels(bucket_labels)} {count}")
        lines.append(
            f"{name}_bucket{_prom_labels(dict(labels, le='+Inf'))} {cumulative[-1]}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {hist.sum:g}")
        lines.append(f"{name}_count{_prom_labels(labels)} {hist.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
    return path
