"""Structured logging for library and demo code.

Library code never prints: it asks for a logger via :func:`get_logger` and
emits key=value structured lines.  By default the ``repro`` logger tree has a
:class:`logging.NullHandler` — silent unless the application opts in — and
:func:`enable_console_logging` is the one-call opt-in used by the examples
and the quickstart demo.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def _format_fields(fields: dict) -> str:
    return " ".join(f"{key}={_render(value)}" for key, value in fields.items())


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


class StructuredLogger(logging.LoggerAdapter):
    """A LoggerAdapter rendering keyword fields as ``key=value`` pairs.

    >>> log = get_logger("demo")
    >>> log.info("round complete", round=3, loss=0.125)   # doctest: +SKIP
    ... # -> "round complete round=3 loss=0.125"
    """

    def process(self, msg, kwargs):
        fields = {key: kwargs.pop(key) for key in list(kwargs)
                  if key not in ("exc_info", "stack_info", "stacklevel", "extra")}
        if fields:
            msg = f"{msg} {_format_fields(fields)}"
        return msg, kwargs


def get_logger(name: Optional[str] = None) -> StructuredLogger:
    """A structured logger under the ``repro`` tree (``repro.<name>``)."""
    base = logging.getLogger(_ROOT_NAME)
    if not base.handlers:
        base.addHandler(logging.NullHandler())
    logger = base if not name else logging.getLogger(f"{_ROOT_NAME}.{name}")
    return StructuredLogger(logger, {})


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` tree (for demos/scripts)."""
    base = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.StreamHandler)
               and not isinstance(h, logging.NullHandler) for h in base.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        base.addHandler(handler)
    base.setLevel(level)
