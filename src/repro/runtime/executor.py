"""Local-training executors: serial loop or process pool.

Within one round (or one asynchronous wave) participants are independent: each
trains against the global model as of the round start and mutates only its own
state.  :class:`ProcessPoolParticipantExecutor` exploits that to run
``FederatedFineTuner.participant_round`` for many clients in parallel worker
processes, which is what makes 100+-client rounds tractable on multi-core
hosts.  :class:`SerialExecutor` is the always-available fallback and the
default.

Parallel execution must be *observationally identical* to serial execution:
workers receive a pickled snapshot of the fine-tuner, run one participant's
round, and ship back both the round result and the participant's mutated
per-client state (batch-shuffling seed, Flux profiling cache and utilities),
which the parent re-imports via
:meth:`~repro.federated.orchestrator.FederatedFineTuner.import_participant_state`.
Because no participant reads another participant's state, replaying the
exports yields exactly the serial outcome.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import decode_update, encode_state_dict, encode_update, get_codec
from ..federated.client import Participant
from ..obs import NULL_TELEMETRY, span_record

#: codec used to frame updates crossing the process boundary — lossless for
#: every float dtype, so parallel execution stays bit-identical to serial
_IPC_CODEC = "fp64"


def _frame_result(result) -> Tuple[object, List[bytes]]:
    """Split one round result into (update-less result, framed update payloads).

    The worker→parent hop is the wire serializer's first real consumer: expert
    updates travel as framed byte payloads rather than pickled numpy state
    dicts, exactly the representation a remote deployment would ship.
    """
    codec = get_codec(_IPC_CODEC)
    frames = [encode_update(update, codec) for update in result.updates]
    return replace(result, updates=[]), frames


def _unframe_result(result, frames: Sequence[bytes]):
    return replace(result, updates=[decode_update(frame) for frame in frames])


def _run_participant_chunk(payload: bytes, participant_ids: Sequence[int],
                           round_index: int
                           ) -> List[Tuple[int, object, List[bytes], dict, Optional[dict]]]:
    """Worker-side: run a chunk of participants' rounds on one tuner snapshot.

    Chunking means the (potentially large) tuner payload crosses the process
    boundary once per worker rather than once per participant.  Participants
    within a chunk run sequentially against the same snapshot, which is
    exactly what the serial executor does — they are independent.

    With telemetry on (the pickled tuner carries the flag) each entry also
    ships a :func:`~repro.obs.span_record` of the participant's training,
    measured with the worker's own clocks; the parent adopts it into the live
    trace.  Telemetry off ships ``None``.
    """
    tuner = pickle.loads(payload)
    timed = getattr(tuner, "telemetry", NULL_TELEMETRY).enabled
    out = []
    for participant_id in participant_ids:
        participant = tuner.participant_by_id(participant_id)
        wall_start = time.time()
        perf_start = time.perf_counter()
        result = tuner.participant_round(participant, round_index)
        record = None
        if timed:
            record = span_record(
                "participant_round", "train", wall_start,
                time.perf_counter() - perf_start,
                sim_duration=result.breakdown.total(
                    overlap_profiling=result.overlap_profiling),
                participant=participant_id, worker_pid=os.getpid())
        stripped, frames = _frame_result(result)
        out.append((participant_id, stripped, frames,
                    tuner.export_participant_state(participant_id), record))
    return out


# ----------------------------------------------------------- aggregation fold
def frame_update(update, codec=None, references: Optional[Dict] = None
                 ) -> Tuple[bytes, int]:
    """One update as the ``(wire frame, staleness)`` pair fold jobs consume.

    Staleness rides alongside the frame because it is in-memory metadata that
    deliberately does not travel in wire frames (the schedulers discount
    weights before transmission); fold workers still need it so the
    ``staleness_fedavg`` strategy discounts exactly as a serial fold would.
    Every producer of pooled fold payloads must pair through here so the
    convention has exactly one home; :func:`_decode_framed_updates` is the
    worker-side inverse.

    An update that arrived over the wire transport carries its original frame
    (``update.wire_frame``); with no explicit ``codec`` requested that frame
    is forwarded *verbatim* instead of re-encoding the decoded state as fp64
    — bit-identical by construction (the state is the deterministic decode of
    exactly these bytes), and free of the old double-encode.  Self-contained
    codecs forward unconditionally; ``needs_reference`` codecs (top-k/sparse
    deltas) forward only when the caller passes a ``references`` dict to
    collect each key's fp64-framed reference state for the remote decoder
    (``references[key]`` is recorded once per key), and fall back to the
    lossless fp64 re-encode otherwise.
    """
    if codec is None:
        frame = getattr(update, "wire_frame", None)
        if frame is not None:
            wire_codec = get_codec(update.wire_codec)
            if not wire_codec.needs_reference:
                return frame, getattr(update, "staleness", 0)
            if references is not None and update.wire_reference is not None:
                if update.key not in references:
                    references[update.key] = encode_state_dict(
                        update.wire_reference, get_codec(_IPC_CODEC))
                return frame, getattr(update, "staleness", 0)
        codec = get_codec(_IPC_CODEC)
    return encode_update(update, codec), getattr(update, "staleness", 0)


def _reference_lookup_from(references: Optional[Dict]):
    """Worker-side decoder for a :func:`frame_update` ``references`` dict.

    Returns a ``reference_lookup(layer, expert)`` that lazily decodes the
    fp64 state-dict reference frames (cached per key), or ``None`` when no
    references travelled with the job — self-contained frames never look one
    up, so the lazy decode costs nothing unless a delta frame needs it.
    """
    if not references:
        return None
    from ..comm import decode_state_dict

    cache: Dict[Tuple[int, int], Dict] = {}

    def lookup(layer: int, expert: int):
        key = (layer, expert)
        state = cache.get(key)
        if state is None:
            frame = references.get(key)
            if frame is None:
                return None
            state = decode_state_dict(frame)
            cache[key] = state
        return state

    return lookup


def _decode_framed_updates(framed: Sequence[Tuple[bytes, int]],
                           reference_lookup=None) -> List:
    """Rebuild updates from :func:`frame_update` pairs in arrival order."""
    updates = []
    for frame, staleness in framed:
        update = decode_update(frame, reference_lookup=reference_lookup)
        update.staleness = int(staleness)
        updates.append(update)
    return updates


def _fold_legacy_frames(framed: Sequence[Tuple[bytes, int]],
                        reference_lookup, scratch
                        ) -> List[Tuple[Tuple[int, int], bytes, int]]:
    """The ``None``-strategy buffered FedAvg, restructured as a scratch fold.

    Bit-identical to the historical group-then-``fedavg_states`` fold: each
    frame decodes (into scratch) and folds immediately, in arrival order,
    with the identical multiply/add sequence — zero-weight contributions
    included, whose ``-0.0 + 0.0`` signs depend on fold order.  The only
    buffered state is the all-zero-weight fallback: while a key's running
    weight is zero, exact copies of its decoded states are kept so a key
    whose weights *stay* zero can degrade to the legacy uniform mean; the
    copies are dropped the moment a positive weight arrives.
    """
    from ..comm import finalize_weighted_sum, fold_weighted_state
    from ..federated.aggregation import fedavg_states

    codec = get_codec(_IPC_CODEC)
    accs: Dict[Tuple[int, int], Dict] = {}
    totals: Dict[Tuple[int, int], float] = {}
    counts: Dict[Tuple[int, int], int] = {}
    pending: Dict[Tuple[int, int], List[Dict]] = {}
    for frame, _ in framed:
        update = decode_update(frame, reference_lookup=reference_lookup,
                               scratch=scratch)
        key = update.key
        acc = accs.get(key)
        if acc is None:
            acc = accs[key] = {}
        fold_weighted_state(acc, update.state, update.weight, scratch=scratch)
        totals[key] = totals.get(key, 0.0) + float(update.weight)
        counts[key] = counts.get(key, 0) + 1
        if totals[key] <= 0:
            pending.setdefault(key, []).append(
                {name: np.array(value, dtype=np.float64)
                 for name, value in update.state.items()})
        else:
            pending.pop(key, None)
        scratch.recycle()
    out = []
    for key, acc in accs.items():
        if totals[key] > 0:
            state = finalize_weighted_sum(acc, totals[key])
        else:
            # the legacy uniform-mean fallback, replayed over the exact copies
            state = fedavg_states(pending[key], [0.0] * counts[key],
                                  scratch=scratch)
        out.append((key, encode_state_dict(state, codec), counts[key]))
    return out


def _fold_shard_frames(strategy, streaming: bool,
                       framed: Sequence[Tuple[bytes, int]],
                       references: Optional[Dict] = None,
                       scratch=None
                       ) -> List[Tuple[Tuple[int, int], bytes, int]]:
    """Worker-side: fold one shard's framed updates to per-key aggregates.

    Mirrors the serial server paths exactly: the ``None``-strategy buffered
    fold is the legacy per-key FedAvg (all-zero-weight uniform fallback
    included), anything else goes through the strategy's streaming
    accumulators (whose finalize raises on unfinalizable keys, as serial
    ``StreamingAggregator.apply`` does).  Returns ``(key, framed aggregated
    state, contribution count)`` triples; the state travels back as a
    lossless fp64 state-dict frame, so pooled == serial bit-for-bit.

    Frames decode into ``scratch`` (default: the calling thread's ambient
    pool, which in a process-pool worker or a service server persists across
    every round it folds) and are folded frame-by-frame, so the per-update
    cost is one decode-into-scratch plus one fused fold — no per-update
    allocations and no buffered update list.
    """
    from ..comm import StreamingAggregator
    from ..comm.scratch import thread_scratch

    if scratch is None:
        scratch = thread_scratch()
    lookup = _reference_lookup_from(references)
    if strategy is None and not streaming:
        return _fold_legacy_frames(framed, lookup, scratch)
    codec = get_codec(_IPC_CODEC)
    aggregator = StreamingAggregator(strategy, scratch=scratch)
    fold_payload = aggregator.fold_payload
    for frame, staleness in framed:
        fold_payload(frame, reference_lookup=lookup, staleness=int(staleness))
    counts = aggregator.contributions()
    return [(key, encode_state_dict(state, codec), counts[key])
            for key, state in aggregator.finalize().items()]


def _prefold_node_frames(strategy, pseudo_id: int,
                         framed: Sequence[Tuple[bytes, int]],
                         references: Optional[Dict] = None,
                         scratch=None) -> List[bytes]:
    """Worker-side: pre-fold one aggregation-tree node's framed updates.

    The node's partials come back as framed updates carrying the group's
    accumulated weight and the node's pseudo participant id — byte-for-byte
    what the serial tier fold would have encoded for the upward hop.
    Decode-and-fold runs through ``scratch`` exactly as
    :func:`_fold_shard_frames` does.
    """
    from ..comm import StreamingAggregator
    from ..comm.scratch import thread_scratch

    if scratch is None:
        scratch = thread_scratch()
    lookup = _reference_lookup_from(references)
    aggregator = StreamingAggregator(strategy, scratch=scratch)
    fold_payload = aggregator.fold_payload
    for frame, staleness in framed:
        fold_payload(frame, reference_lookup=lookup, staleness=int(staleness))
    codec = get_codec(_IPC_CODEC)
    return [encode_update(partial, codec) for partial in aggregator.partials(pseudo_id)]


def _tier_of_pseudo_id(pseudo_id: int) -> int:
    """The aggregation-tree tier a prefold job's pseudo participant id names."""
    from ..federated.topology import tier_of_pseudo_id

    return tier_of_pseudo_id(pseudo_id)


def _timed_fold_shard(strategy, streaming: bool, framed, shard: int,
                      references: Optional[Dict] = None):
    """Worker-side: :func:`_fold_shard_frames` plus a fold span record."""
    wall_start = time.time()
    perf_start = time.perf_counter()
    result = _fold_shard_frames(strategy, streaming, framed, references)
    record = span_record("fold_shard", "fold", wall_start,
                         time.perf_counter() - perf_start,
                         shard=shard, num_updates=len(framed),
                         worker_pid=os.getpid())
    return result, record


def _timed_prefold_node(strategy, pseudo_id: int, framed, node: int,
                        references: Optional[Dict] = None):
    """Worker-side: :func:`_prefold_node_frames` plus a fold span record."""
    wall_start = time.time()
    perf_start = time.perf_counter()
    result = _prefold_node_frames(strategy, pseudo_id, framed, references)
    record = span_record("prefold_node", "fold", wall_start,
                         time.perf_counter() - perf_start,
                         node=node, tier=_tier_of_pseudo_id(pseudo_id),
                         num_updates=len(framed), worker_pid=os.getpid())
    return result, record


class AggregationPool:
    """Process pool for server-side fold work (expert shards, tree nodes).

    The parallel twin of :class:`ProcessPoolParticipantExecutor`, but for the
    *aggregation* plane: :class:`~repro.federated.ShardedParameterServer`
    folds its shards concurrently and
    :class:`~repro.federated.topology.AggregationTree` tier-0 nodes pre-fold
    their subtrees in workers.  All payloads cross the process boundary as
    lossless fp64 wire frames (exactly the representation a distributed
    deployment would ship), so pooled aggregation is bit-identical to serial
    — test-enforced.  The underlying pool is created lazily and survives
    across rounds; like the participant executor it pickles pool-less, so a
    fine-tuner holding one can itself be shipped to training workers.
    """

    name = "process"

    #: whether fold dispatch should collect ``needs_reference`` wire frames'
    #: reference states into the jobs (the service pool's compressed wire
    #: opts in; process-pool workers share the parent host, so shipping the
    #: compact frame vs the fp64 re-encode only moves pickle bytes)
    wire_frames = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        #: worker-measured fold span records of the most recent ``timed=True``
        #: call (cleared per call), for the caller's tracer to ingest
        self.last_span_records: List[dict] = []

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def _worker_strategy(self, strategy):
        from ..federated.strategies import picklable_strategy

        return picklable_strategy(strategy)

    def fold_shards(self, strategy, streaming: bool,
                    jobs: Sequence[Tuple],
                    timed: bool = False
                    ) -> List[Tuple[int, List[Tuple[Tuple[int, int], bytes, int]]]]:
        """Fold every shard's framed updates concurrently; results in job order.

        Jobs are ``(shard, framed)`` or ``(shard, framed, references)`` — the
        optional trailing dict carries fp64-framed reference states for
        ``needs_reference`` wire frames (see :func:`frame_update`).
        ``timed=True`` additionally measures each shard's fold in its worker
        and leaves the span records in :attr:`last_span_records`.
        """
        strategy = self._worker_strategy(strategy)
        pool = self._ensure_pool()
        self.last_span_records = []
        if timed:
            futures = [(job[0], pool.submit(_timed_fold_shard, strategy, streaming,
                                            job[1], job[0],
                                            job[2] if len(job) > 2 else None))
                       for job in jobs]
            out = []
            for shard, future in futures:
                result, record = future.result()
                self.last_span_records.append(record)
                out.append((shard, result))
            return out
        futures = [(job[0], pool.submit(_fold_shard_frames, strategy, streaming,
                                        job[1], job[2] if len(job) > 2 else None))
                   for job in jobs]
        return [(shard, future.result()) for shard, future in futures]

    def prefold_nodes(self, strategy,
                      jobs: Sequence[Tuple],
                      timed: bool = False) -> List[Tuple[int, List[bytes]]]:
        """Pre-fold every tree node's framed updates concurrently (job order).

        Jobs are ``(node, pseudo_id, framed)`` or ``(node, pseudo_id, framed,
        references)``.  ``timed=True`` measures each node's fold worker-side
        into :attr:`last_span_records`, as :meth:`fold_shards` does.
        """
        strategy = self._worker_strategy(strategy)
        pool = self._ensure_pool()
        self.last_span_records = []
        if timed:
            futures = [(job[0], pool.submit(_timed_prefold_node, strategy, job[1],
                                            job[2], job[0],
                                            job[3] if len(job) > 3 else None))
                       for job in jobs]
            out = []
            for node, future in futures:
                result, record = future.result()
                self.last_span_records.append(record)
                out.append((node, result))
            return out
        futures = [(job[0], pool.submit(_prefold_node_frames, strategy, job[1],
                                        job[2], job[3] if len(job) > 3 else None))
                   for job in jobs]
        return [(node, future.result()) for node, future in futures]

    def close(self) -> None:
        """Release the worker pool (idempotent; lazily recreated on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_aggregation_pool(config) -> Optional[AggregationPool]:
    """The fold pool a :class:`~repro.federated.RunConfig` selects (or ``None``)."""
    name = getattr(config, "aggregation_executor", "serial")
    if name == "serial":
        return None
    if name == "process":
        return AggregationPool(max_workers=getattr(config, "aggregation_workers", None))
    if name == "service":
        from ..service import ServiceAggregationPool  # local: service pulls in asyncio

        return ServiceAggregationPool(
            getattr(config, "aggregation_workers", None),
            transport=getattr(config, "service_transport", "tcp"),
            retry_attempts=getattr(config, "service_retry_attempts", 3),
            retry_delay_s=getattr(config, "service_retry_delay_s", 0.05),
            timeout_s=getattr(config, "service_timeout_s", 30.0),
            log_dir=getattr(config, "service_log_dir", None),
            wire_frames=getattr(config, "service_codec", "fp64") == "wire",
            window=getattr(config, "service_window", 8))
    raise ValueError(f"unknown aggregation executor {name!r}")


class ParticipantExecutor(abc.ABC):
    """Runs the local work of a set of independent participants."""

    name: str = "base"

    @abc.abstractmethod
    def run_participants(self, tuner, participants: Sequence[Participant],
                         round_index: int) -> Dict[int, object]:
        """Run ``participant_round`` for every participant; results keyed by id.

        The returned dict preserves the order of ``participants``.
        """

    def close(self) -> None:
        """Release any worker resources (idempotent)."""


class SerialExecutor(ParticipantExecutor):
    """In-process sequential execution (the legacy behaviour)."""

    name = "serial"

    def run_participants(self, tuner, participants: Sequence[Participant],
                         round_index: int) -> Dict[int, object]:
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        if not tracer.enabled:
            return {participant.participant_id:
                    tuner.participant_round(participant, round_index)
                    for participant in participants}
        results: Dict[int, object] = {}
        for participant in participants:
            with tracer.span("participant_round", category="train",
                             participant=participant.participant_id) as span:
                result = tuner.participant_round(participant, round_index)
                span.set(sim_duration=result.breakdown.total(
                    overlap_profiling=result.overlap_profiling))
            results[participant.participant_id] = result
        return results


class ProcessPoolParticipantExecutor(ParticipantExecutor):
    """Fan participants out over a ``concurrent.futures`` process pool.

    The fine-tuner is pickled once per call and shipped once per *worker*
    (participants are split into one contiguous chunk per worker); workers
    return ``(participant_id, result, state_export)`` triples and the parent
    imports the state back so subsequent rounds match serial execution
    exactly.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def __getstate__(self):
        # A live pool holds thread locks and cannot cross a pickle boundary.
        # This executor may sit on the fine-tuner (legacy run_round API) when
        # the tuner itself is pickled for the workers; ship it pool-less and
        # let any process that actually executes recreate its own pool.
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def run_participants(self, tuner, participants: Sequence[Participant],
                         round_index: int) -> Dict[int, object]:
        if not participants:
            return {}
        pool = self._ensure_pool()
        payload = pickle.dumps(tuner, protocol=pickle.HIGHEST_PROTOCOL)
        workers = self.max_workers or os.cpu_count() or 1
        ids = [p.participant_id for p in participants]
        chunks = [chunk.tolist() for chunk in
                  np.array_split(np.asarray(ids), min(workers, len(ids)))]
        futures = [pool.submit(_run_participant_chunk, payload, chunk, round_index)
                   for chunk in chunks if chunk]
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        collected: Dict[int, object] = {}
        for future in futures:
            for participant_id, result, frames, state, record in future.result():
                tuner.import_participant_state(participant_id, state)
                if record is not None:
                    tracer.ingest(record)
                collected[participant_id] = _unframe_result(result, frames)
        return {pid: collected[pid] for pid in ids}  # preserve participants order

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(config) -> ParticipantExecutor:
    """Build the executor selected by a :class:`~repro.federated.RunConfig`."""
    name = getattr(config, "executor", "serial")
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessPoolParticipantExecutor(
            max_workers=getattr(config, "executor_workers", None))
    raise ValueError(f"unknown executor {name!r}")
