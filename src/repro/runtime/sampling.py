"""Client samplers: which participants take part in a round.

The legacy round loop sampled ``participants_per_round`` clients uniformly with
the orchestrator's run RNG.  :class:`UniformSampler` reproduces that draw
bit-for-bit; :class:`ResourceAwareSampler` biases selection towards faster
devices (a common straggler-mitigation policy), and
:class:`AvailabilityTraceSampler` restricts each round to the clients an
availability trace marks online, modelling diurnal device availability.

All samplers draw exclusively from the generator handed in by the caller
(derived from :attr:`RunConfig.seed`), never from module-level ``np.random``,
so identical configs yield identical selections.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..federated.client import Participant

#: an availability trace: round index -> participant ids online that round,
#: or a predicate ``(round_index, participant_id) -> bool``
AvailabilityTrace = Union[Mapping[int, Sequence[int]], Callable[[int, int], bool]]


class ClientSampler(abc.ABC):
    """Strategy choosing the participants of one round."""

    name: str = "base"

    @abc.abstractmethod
    def sample(self, participants: Sequence[Participant], num: Optional[int],
               round_index: int, rng: np.random.Generator) -> List[Participant]:
        """Pick the participants for ``round_index``.

        ``num=None`` means "everyone".  Implementations must draw only from
        ``rng`` so runs stay seed-deterministic.
        """


class UniformSampler(ClientSampler):
    """Uniform sampling without replacement (the legacy inline policy)."""

    name = "uniform"

    def sample(self, participants: Sequence[Participant], num: Optional[int],
               round_index: int, rng: np.random.Generator) -> List[Participant]:
        if num is None or num >= len(participants):
            return list(participants)
        picked = rng.choice(len(participants), size=num, replace=False)
        return [participants[int(i)] for i in picked]


class ResourceAwareSampler(ClientSampler):
    """Sampling biased towards well-provisioned devices.

    Selection probability is proportional to each device's effective training
    throughput raised to ``power`` (``power=0`` recovers uniform sampling).
    """

    name = "resource_aware"

    def __init__(self, power: float = 1.0) -> None:
        if power < 0:
            raise ValueError("power must be non-negative")
        self.power = power

    def sample(self, participants: Sequence[Participant], num: Optional[int],
               round_index: int, rng: np.random.Generator) -> List[Participant]:
        if num is None or num >= len(participants):
            return list(participants)
        weights = np.array([p.device.effective_flops for p in participants], dtype=float)
        weights = np.power(np.maximum(weights, 1e-12), self.power)
        probabilities = weights / weights.sum()
        picked = rng.choice(len(participants), size=num, replace=False, p=probabilities)
        return [participants[int(i)] for i in picked]


class AvailabilityTraceSampler(ClientSampler):
    """Uniform sampling restricted to the clients an availability trace allows.

    ``trace`` is either a mapping from round index to the participant ids that
    are online that round (rounds missing from the mapping mean "everyone is
    online"), or a predicate ``(round_index, participant_id) -> bool``.  When
    fewer clients are online than requested, every online client is selected.
    """

    name = "availability"

    def __init__(self, trace: AvailabilityTrace) -> None:
        self.trace = trace

    def available(self, participants: Sequence[Participant],
                  round_index: int) -> List[Participant]:
        if callable(self.trace):
            return [p for p in participants if self.trace(round_index, p.participant_id)]
        online = self.trace.get(round_index)
        if online is None:
            return list(participants)
        online_ids = {int(i) for i in online}
        return [p for p in participants if p.participant_id in online_ids]

    def sample(self, participants: Sequence[Participant], num: Optional[int],
               round_index: int, rng: np.random.Generator) -> List[Participant]:
        online = self.available(participants, round_index)
        if num is None or num >= len(online):
            return online
        picked = rng.choice(len(online), size=num, replace=False)
        return [online[int(i)] for i in picked]


def make_sampler(config) -> ClientSampler:
    """Build the sampler selected by a :class:`~repro.federated.RunConfig`."""
    name = getattr(config, "sampler", "uniform")
    if name == "uniform":
        return UniformSampler()
    if name == "resource_aware":
        return ResourceAwareSampler()
    if name == "availability":
        trace = getattr(config, "availability_trace", None)
        if trace is None:
            raise ValueError("sampler='availability' requires config.availability_trace")
        return AvailabilityTraceSampler(trace)
    raise ValueError(f"unknown sampler {name!r}")
