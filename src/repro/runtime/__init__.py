"""Event-driven federated execution engine.

This package owns *when* and *on what* participant work runs — client
sampling, fault injection, the simulated event clock, sync/semi-sync/async
aggregation policies and (optionally) a process pool for parallel local
training — while the *work itself* stays behind
:meth:`~repro.federated.orchestrator.FederatedFineTuner.participant_round`.
Select a policy via :attr:`RunConfig.scheduler` (``"sync"`` | ``"semisync"`` |
``"async"``) or pass a :class:`Scheduler` instance to
:meth:`FederatedFineTuner.run` directly.
"""

from .checkpoint import (
    CheckpointRecord,
    RunCheckpointer,
    capture_run_checkpoint,
    latest_checkpoint,
    load_run_checkpoint,
    prune_checkpoints,
    restore_run_state,
    save_run_checkpoint,
    write_run_checkpoint,
)
from .events import Event, EventQueue
from .executor import (
    AggregationPool,
    ParticipantExecutor,
    ProcessPoolParticipantExecutor,
    SerialExecutor,
    make_aggregation_pool,
    make_executor,
)
from .faults import (
    ChannelFaultInjector,
    ChannelFaultOutcome,
    FaultInjector,
    FaultOutcome,
    scale_breakdown,
)
from .sampling import (
    AvailabilityTraceSampler,
    ClientSampler,
    ResourceAwareSampler,
    UniformSampler,
    make_sampler,
)
from .scheduler import (
    SCHEDULERS,
    AsyncScheduler,
    Scheduler,
    SemiSyncScheduler,
    SyncScheduler,
    make_scheduler,
)

__all__ = [
    "CheckpointRecord",
    "RunCheckpointer",
    "capture_run_checkpoint",
    "latest_checkpoint",
    "load_run_checkpoint",
    "prune_checkpoints",
    "restore_run_state",
    "save_run_checkpoint",
    "write_run_checkpoint",
    "Event",
    "EventQueue",
    "ClientSampler",
    "UniformSampler",
    "ResourceAwareSampler",
    "AvailabilityTraceSampler",
    "make_sampler",
    "FaultInjector",
    "FaultOutcome",
    "ChannelFaultInjector",
    "ChannelFaultOutcome",
    "scale_breakdown",
    "ParticipantExecutor",
    "SerialExecutor",
    "ProcessPoolParticipantExecutor",
    "AggregationPool",
    "make_executor",
    "make_aggregation_pool",
    "Scheduler",
    "SyncScheduler",
    "SemiSyncScheduler",
    "AsyncScheduler",
    "SCHEDULERS",
    "make_scheduler",
]
