"""Aggregation schedulers: when the server aggregates and on whose updates.

The scheduler owns the *control plane* of a federated run — participant
selection, simulated-time bookkeeping, fault handling and the aggregation
trigger — while the *work* of one participant round stays behind
:meth:`FederatedFineTuner.participant_round`.  Three policies are provided:

:class:`SyncScheduler`
    The paper's synchronous FedAvg loop: everyone selected trains, the round
    ends when the slowest participant finishes, the server aggregates.  With
    the default sampler/executor and no fault injection this reproduces the
    legacy ``FederatedFineTuner`` loop bit-for-bit.

:class:`SemiSyncScheduler`
    Deadline-based aggregation: the round ends at a fixed deadline (or a
    quantile of this round's predicted durations); whoever finished by then is
    aggregated, stragglers are dropped.  Bounds round time under heterogeneity
    at the price of wasted straggler work.

:class:`AsyncScheduler`
    FedBuff-style buffered asynchrony: clients train continuously; each
    finished update enters a server buffer with the staleness it accumulated
    (server versions elapsed since the client downloaded the model) and is
    weight-discounted by ``(1 + staleness) ** -staleness_exponent``.  The
    server aggregates whenever the buffer holds ``buffer_size`` updates; every
    aggregation is reported as one "round".

All schedulers drive the shared :class:`~repro.runtime.events.EventQueue` and
draw randomness only from the fine-tuner's seeded run RNG plus the
per-(round, participant) fault RNGs, so identical configs replay identical
:class:`~repro.systems.timeline.RunTimeline`'s.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field as dataclasses_field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..comm import ChannelStats
from ..federated.client import Participant
from ..federated.orchestrator import (
    FederatedFineTuner,
    ParticipantRoundResult,
    RoundResult,
    RunResult,
)
from ..metrics import PerformanceTracker
from ..obs import NULL_TELEMETRY
from ..systems import RoundTimeline, RunTimeline
from .events import EventQueue
from .executor import ParticipantExecutor, SerialExecutor, make_executor
from .faults import FaultInjector, FaultOutcome, scale_breakdown
from .sampling import ClientSampler, UniformSampler, make_sampler


class Scheduler(abc.ABC):
    """Base class: the run loop shared by every aggregation policy."""

    name: str = "base"

    def __init__(
        self,
        sampler: Optional[ClientSampler] = None,
        faults: Optional[FaultInjector] = None,
        executor: Optional[ParticipantExecutor] = None,
    ) -> None:
        #: ``None`` delegates full-round selection to the fine-tuner's
        #: (overridable) ``select_participants`` — the uniform legacy policy.
        self.sampler = sampler
        self.faults = faults or FaultInjector()
        self.executor = executor or SerialExecutor()

    # ------------------------------------------------------------------- loop
    def run(self, tuner: FederatedFineTuner, num_rounds: int,
            stop_at_target: bool = False,
            target_metric: Optional[float] = None,
            checkpointer=None, resume: Optional[Dict] = None) -> RunResult:
        """Run ``num_rounds`` aggregation rounds of ``tuner`` under this policy.

        ``checkpointer`` (a :class:`~repro.runtime.checkpoint.RunCheckpointer`)
        snapshots the full run state every K completed rounds; ``resume`` is
        the bundle :func:`~repro.runtime.checkpoint.restore_run_state`
        produced, pre-seeding the tracker/timeline/rounds so the loop
        continues exactly where the interrupted run stopped.  ``num_rounds``
        is always the *total* round count.
        """
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        goal = target_metric if target_metric is not None else tuner.target_metric()
        if resume is not None:
            tracker: PerformanceTracker = resume["tracker"]
            run_timeline: RunTimeline = resume["run_timeline"]
            rounds: List[RoundResult] = list(resume["rounds"])
            start_round = int(resume["next_round"])
        else:
            tracker = PerformanceTracker(target=goal)
            run_timeline = RunTimeline()
            rounds = []
            start_round = 0
        telemetry = getattr(tuner, "telemetry", NULL_TELEMETRY)
        tracer = telemetry.tracer
        wire_codec = (tuner.wire_codec_name()
                      if getattr(tuner.config, "transport", "analytic") == "wire"
                      else None)
        try:
            if start_round < num_rounds:
                # start_round is only passed when actually resuming, so custom
                # Scheduler subclasses written against the historical
                # two-argument round_results signature keep working for every
                # non-durable run (checkpoint/resume requires the
                # start_round-aware signature).
                if start_round:
                    results_iter = self.round_results(tuner, num_rounds,
                                                      start_round=start_round)
                else:
                    results_iter = self.round_results(tuner, num_rounds)
                with tracer.span("run", category="run", scheduler=self.name,
                                 method=tuner.name, start_round=start_round,
                                 num_rounds=num_rounds):
                    for round_result in results_iter:
                        rounds.append(round_result)
                        run_timeline.add(round_result.timeline)
                        tracker.record(
                            round_index=round_result.round_index,
                            simulated_time=round_result.simulated_time,
                            metric_value=round_result.metric_value,
                            train_loss=round_result.train_loss,
                            comm_bytes=round_result.wire_bytes,
                            wire_seconds=round_result.wire_seconds,
                            payloads_lost=round_result.payloads_lost,
                            payloads_corrupted=round_result.payloads_corrupted,
                            edge_bytes=round_result.edge_bytes,
                        )
                        telemetry.end_round(round_result, codec=wire_codec)
                        if checkpointer is not None and checkpointer.due(len(rounds)):
                            # In background mode save() only captures; the
                            # write lands off the round loop and its record
                            # (mode/duration) is drained on a later round or
                            # at finish() below.
                            with tracer.span("checkpoint", category="checkpoint",
                                             round=round_result.round_index,
                                             rounds_completed=len(rounds)):
                                checkpointer.save(tuner, self, tracker,
                                                  run_timeline, rounds)
                            for record in checkpointer.drain_records():
                                telemetry.record_checkpoint(
                                    record.path, record.duration_s,
                                    mode=record.mode, write=record.write)
                        if stop_at_target and round_result.metric_value >= goal:
                            break
        finally:
            try:
                if checkpointer is not None:
                    checkpointer.finish()
                    for record in checkpointer.drain_records():
                        telemetry.record_checkpoint(
                            record.path, record.duration_s,
                            mode=record.mode, write=record.write)
            finally:
                self.executor.close()
        return RunResult(method=tuner.name, tracker=tracker, timeline=run_timeline,
                         rounds=rounds)

    @abc.abstractmethod
    def round_results(self, tuner: FederatedFineTuner, num_rounds: int,
                      start_round: int = 0) -> Iterator[RoundResult]:
        """Yield one :class:`RoundResult` per aggregation round.

        ``start_round`` resumes the loop mid-run: rounds ``[start_round,
        num_rounds)`` are produced, with any cross-round scheduler state
        expected to have been restored via :meth:`restore_state` first.
        """

    # ------------------------------------------------------------- durability
    def export_state(self) -> Dict:
        """Picklable cross-round scheduler state (empty for stateless policies).

        The synchronous and semi-synchronous schedulers carry no state
        between rounds (faults are keyed by ``(round, participant)``, sampling
        draws from the tuner's run RNG), so resuming them only needs
        ``start_round``.  The asynchronous scheduler overrides this to
        capture its in-flight event queue and buffer.
        """
        return {}

    def restore_state(self, state: Dict, tuner: FederatedFineTuner) -> None:
        """Restore an :meth:`export_state` snapshot (no-op for stateless policies)."""

    # ---------------------------------------------------------------- helpers
    def select(self, tuner: FederatedFineTuner, round_index: int) -> List[Participant]:
        if self.sampler is None:
            return tuner.select_participants(round_index)
        return self.sampler.sample(tuner.participants, tuner.config.participants_per_round,
                                   round_index, tuner._rng)

    def _sample(self, tuner: FederatedFineTuner, participants: Sequence[Participant],
                num: Optional[int], round_index: int) -> List[Participant]:
        sampler = self.sampler or UniformSampler()
        return sampler.sample(participants, num, round_index, tuner._rng)

    def _execute_round_work(self, tuner: FederatedFineTuner, round_index: int
                            ) -> Tuple[List[Participant], int,
                                       List[Tuple[Participant, ParticipantRoundResult,
                                                  float, FaultOutcome]]]:
        """Sample clients, run hooks and local work, apply fault outcomes.

        Clients the injector drops are filtered *before* they train: their
        work would be discarded anyway and never gates the round, so skipping
        it is observationally identical and avoids wasted compute.  Returns
        ``(selected, num_dropped, entries)`` where each entry is
        ``(participant, result, duration, fault)`` with straggler-scaled
        breakdowns.
        """
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        with tracer.span("select", category="select", round=round_index) as span:
            selected = self.select(tuner, round_index)
            tuner.before_round(round_index, selected)
            outcomes = {p.participant_id: self.faults.outcome(round_index, p.participant_id)
                        for p in selected}
            survivors = [p for p in selected if not outcomes[p.participant_id].dropped]
            span.set(selected=len(selected), survivors=len(survivors))
        raw_results = self.executor.run_participants(tuner, survivors, round_index)
        entries = []
        for participant in survivors:
            result = raw_results[participant.participant_id]
            fault = outcomes[participant.participant_id]
            if fault.is_straggler:
                result = replace(result,
                                 breakdown=scale_breakdown(result.breakdown, fault.slowdown))
            entries.append((participant, result, self._result_duration(result), fault))
        return selected, len(selected) - len(survivors), entries

    def _aggregate_round(self, tuner: FederatedFineTuner, round_index: int,
                         timeline: RoundTimeline,
                         contributors: Sequence[Tuple[Participant, ParticipantRoundResult]]
                         ) -> Tuple[Dict[int, ParticipantRoundResult], List[float],
                                    ChannelStats, ChannelStats, List[ChannelStats]]:
        """Aggregate the contributors into the global model and fill ``timeline``.

        Updates flow through :meth:`FederatedFineTuner.transmit_updates` — a
        pass-through under the analytic transport, framed/metered/faultable
        byte payloads under ``transport="wire"`` — and reach the aggregation
        topology as a generator, so with ``streaming_aggregation=True`` no
        more than one client's decoded updates are ever buffered server-side.
        :meth:`FederatedFineTuner.aggregate_round_updates` routes the stream
        either straight into the (possibly sharded) server or through the
        aggregation tree; the second returned :class:`~repro.comm.ChannelStats`
        totals the inter-tier backhaul and the final list breaks it down per
        aggregator tier (empty on a flat run).
        """
        results: Dict[int, ParticipantRoundResult] = {}
        losses: List[float] = []
        stats = ChannelStats()

        def delivered_updates():
            for participant, result in contributors:
                results[participant.participant_id] = result
                timeline.record_participant(participant.participant_id, result.breakdown,
                                            overlap_profiling=result.overlap_profiling)
                losses.append(result.train_loss)
                updates, transfer_stats = tuner.transmit_updates(participant, result.updates)
                stats.merge(transfer_stats)
                yield from updates

        contributions, edge_stats = tuner.aggregate_round_updates(delivered_updates())
        topology = getattr(tuner, "topology", None)
        tier_stats = list(getattr(topology, "last_tier_stats", []))
        num_updates = sum(contributions.values())
        timeline.server_time = tuner._server_aggregation_time(num_updates)
        tuner.after_aggregation(round_index, results)
        return results, losses, stats, edge_stats, tier_stats

    @staticmethod
    def _result_duration(result: ParticipantRoundResult) -> float:
        return result.breakdown.total(overlap_profiling=result.overlap_profiling)


class SyncScheduler(Scheduler):
    """The synchronous FedAvg round loop (legacy behaviour)."""

    name = "sync"

    def round_results(self, tuner: FederatedFineTuner, num_rounds: int,
                      start_round: int = 0) -> Iterator[RoundResult]:
        for round_index in range(start_round, num_rounds):
            round_result, _ = self.run_round(tuner, round_index)
            yield round_result

    def run_round(self, tuner: FederatedFineTuner, round_index: int
                  ) -> Tuple[RoundResult, Dict[int, ParticipantRoundResult]]:
        """Execute one synchronous federated round."""
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        with tracer.span("round", category="round", round=round_index) as span:
            selected, num_dropped, entries = self._execute_round_work(tuner, round_index)
            timeline = RoundTimeline(round_index=round_index)
            results, losses, wire, edge, tiers = self._aggregate_round(
                tuner, round_index, timeline,
                [(participant, result) for participant, result, _, _ in entries])

            duration = timeline.round_duration()
            simulated_time = tuner.clock.advance(duration)
            span.set(sim_time=simulated_time, sim_duration=duration,
                     aggregated=len(results))
        round_result = RoundResult(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            metric_value=tuner.evaluate(),
            simulated_time=simulated_time,
            round_duration=duration,
            timeline=timeline,
            num_selected=len(selected),
            num_aggregated=len(results),
            num_dropped=num_dropped,
            num_stragglers=sum(1 for _, _, _, fault in entries if fault.is_straggler),
            wire_bytes=wire.total_bytes,
            wire_seconds=wire.seconds,
            payloads_lost=wire.lost,
            payloads_corrupted=wire.corrupted,
            edge_bytes=edge.total_bytes,
            edge_seconds=edge.seconds,
            edge_payloads=edge.payloads,
            tier_bytes=[s.total_bytes for s in tiers],
            tier_seconds=[s.seconds for s in tiers],
            tier_payloads=[s.payloads for s in tiers],
        )
        return round_result, results


class SemiSyncScheduler(Scheduler):
    """Deadline-based aggregation: take whoever finished, drop stragglers."""

    name = "semisync"

    def __init__(self, *args, deadline_seconds: Optional[float] = None,
                 deadline_quantile: float = 0.8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if not 0.0 < deadline_quantile <= 1.0:
            raise ValueError("deadline_quantile must be in (0, 1]")
        self.deadline_seconds = deadline_seconds
        self.deadline_quantile = deadline_quantile

    def round_results(self, tuner: FederatedFineTuner, num_rounds: int,
                      start_round: int = 0) -> Iterator[RoundResult]:
        for round_index in range(start_round, num_rounds):
            yield self._run_round(tuner, round_index)

    def _round_deadline(self, durations: Sequence[float]) -> float:
        if self.deadline_seconds is not None:
            deadline = self.deadline_seconds
        else:
            deadline = float(np.quantile(np.asarray(durations), self.deadline_quantile))
        # Never aggregate an empty round while someone is still working.
        return max(deadline, min(durations))

    def _run_round(self, tuner: FederatedFineTuner, round_index: int) -> RoundResult:
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        with tracer.span("round", category="round", round=round_index) as span:
            selected, num_dropped, entries = self._execute_round_work(tuner, round_index)

            queue = EventQueue()
            durations: List[float] = []
            for participant, result, duration, _ in entries:
                durations.append(duration)
                queue.push(duration, "finish", participant=participant, result=result)

            deadline = self._round_deadline(durations) if durations else 0.0
            arrivals = [(event.payload["participant"], event.payload["result"])
                        for event in queue.pop_until(deadline)]
            num_stragglers = len(queue)

            timeline = RoundTimeline(round_index=round_index)
            results, losses, wire, edge, tiers = self._aggregate_round(
                tuner, round_index, timeline, arrivals)

            duration = deadline + timeline.server_time
            timeline.duration_override = duration
            simulated_time = tuner.clock.advance(duration)
            span.set(sim_time=simulated_time, sim_duration=duration,
                     deadline=deadline, aggregated=len(results))
        return RoundResult(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            metric_value=tuner.evaluate(),
            simulated_time=simulated_time,
            round_duration=duration,
            timeline=timeline,
            num_selected=len(selected),
            num_aggregated=len(results),
            num_dropped=num_dropped,
            num_stragglers=num_stragglers,
            wire_bytes=wire.total_bytes,
            wire_seconds=wire.seconds,
            payloads_lost=wire.lost,
            payloads_corrupted=wire.corrupted,
            edge_bytes=edge.total_bytes,
            edge_seconds=edge.seconds,
            edge_payloads=edge.payloads,
            tier_bytes=[s.total_bytes for s in tiers],
            tier_seconds=[s.seconds for s in tiers],
            tier_payloads=[s.payloads for s in tiers],
        )


@dataclass
class _AsyncLoopState:
    """Cross-round state of one asynchronous run (checkpointable).

    Everything the FedBuff loop used to keep in generator locals lives here
    so :meth:`AsyncScheduler.export_state` can snapshot it between rounds and
    :meth:`AsyncScheduler.restore_state` can put a resumed run back exactly
    where the interrupted one stopped — in-flight trained-but-unaggregated
    results included.
    """

    version: int = 0
    task_counter: int = 0
    active: set = dataclasses_field(default_factory=set)
    buffer: List[dict] = dataclasses_field(default_factory=list)
    dropped_since_aggregation: int = 0
    last_aggregation_time: float = 0.0
    events_this_round: int = 0
    queue: EventQueue = dataclasses_field(default_factory=EventQueue)
    #: simulated time of the last processed finish event; with
    #: ``pending_refill`` it lets a resumed run replay the post-aggregation
    #: slot refill the interrupted run had not performed yet
    last_event_time: float = 0.0
    pending_refill: bool = False


class AsyncScheduler(Scheduler):
    """FedBuff-style buffered asynchronous aggregation.

    Clients train continuously (at most ``concurrency`` at a time): a client
    downloads the current global model, trains, and its update lands in the
    server buffer when it finishes; a new client is started in its place
    immediately.  Once the buffer holds ``buffer_size`` updates the server
    aggregates them with staleness-discounted weights and bumps the model
    version.  Local training is executed serially because each client must
    observe the global model exactly as of its simulated start time.
    """

    name = "async"

    #: hard cap on processed finish-events per aggregation round (guards
    #: against configs where dropout starves the buffer forever)
    MAX_EVENTS_PER_ROUND = 10_000

    def __init__(self, *args, buffer_size: int = 4, staleness_exponent: float = 0.5,
                 concurrency: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        if staleness_exponent < 0:
            raise ValueError("staleness_exponent must be non-negative")
        if concurrency is not None and concurrency < 1:
            raise ValueError("concurrency must be positive")
        self.buffer_size = buffer_size
        self.staleness_exponent = staleness_exponent
        self.concurrency = concurrency
        #: in-flight loop state — populated while :meth:`round_results` runs so
        #: a checkpoint taken between rounds can capture and later restore it
        self._st: Optional[_AsyncLoopState] = None

    def staleness_discount(self, staleness: int) -> float:
        """FedBuff's polynomial staleness discount for an update's weight.

        Delegates to the canonical implementation in
        :mod:`repro.federated.strategies`, which also backs the
        ``staleness_fedavg`` aggregation strategy.
        """
        from ..federated.strategies import staleness_discount

        return staleness_discount(staleness, self.staleness_exponent)

    # ------------------------------------------------------------- durability
    def export_state(self) -> Dict:
        """The in-flight queue, buffer and counters, with picklable handles.

        Participants are referenced by id (re-bound on restore); the pending
        :class:`~repro.federated.orchestrator.ParticipantRoundResult` objects
        travel whole — they hold the already-trained updates whose work must
        not be redone (and could not be replayed bit-identically, since the
        interrupted run consumed RNG draws producing them).
        """
        st = self._st
        if st is None:
            return {}
        return {
            "version": st.version,
            "task_counter": st.task_counter,
            "active": sorted(st.active),
            "events_this_round": st.events_this_round,
            "dropped_since_aggregation": st.dropped_since_aggregation,
            "last_aggregation_time": st.last_aggregation_time,
            "last_event_time": st.last_event_time,
            "pending_refill": st.pending_refill,
            "buffer": [
                {
                    "participant_id": entry["participant"].participant_id,
                    "result": entry["result"],
                    "start_version": entry["start_version"],
                    "finish_time": entry["finish_time"],
                }
                for entry in st.buffer
            ],
            "pending": [
                {
                    "time": event.time,
                    "participant_id": event.payload["participant"].participant_id,
                    "result": event.payload["result"],
                    "start_version": event.payload["start_version"],
                    "dropped": event.payload["dropped"],
                }
                for event in st.queue.snapshot()
            ],
        }

    def restore_state(self, state: Dict, tuner: FederatedFineTuner) -> None:
        if not state:
            return
        st = _AsyncLoopState()
        st.version = int(state["version"])
        st.task_counter = int(state["task_counter"])
        st.active = set(state["active"])
        st.events_this_round = int(state["events_this_round"])
        st.dropped_since_aggregation = int(state["dropped_since_aggregation"])
        st.last_aggregation_time = float(state["last_aggregation_time"])
        st.last_event_time = float(state["last_event_time"])
        st.pending_refill = bool(state["pending_refill"])
        st.buffer = [
            {
                "participant": tuner.participant_by_id(entry["participant_id"]),
                "result": entry["result"],
                "start_version": entry["start_version"],
                "finish_time": entry["finish_time"],
            }
            for entry in state["buffer"]
        ]
        # Events re-push in firing order, so the rebuilt heap pops (time, seq)
        # ties exactly as the interrupted run would have.
        for pending in state["pending"]:
            st.queue.push(pending["time"], "finish",
                          participant=tuner.participant_by_id(pending["participant_id"]),
                          result=pending["result"],
                          start_version=pending["start_version"],
                          dropped=pending["dropped"])
        self._st = st

    # ------------------------------------------------------------------- loop
    def round_results(self, tuner: FederatedFineTuner, num_rounds: int,
                      start_round: int = 0) -> Iterator[RoundResult]:
        config = tuner.config
        concurrency = self.concurrency or config.participants_per_round or len(tuner.participants)
        concurrency = min(concurrency, len(tuner.participants))
        if start_round > 0:
            if self._st is None or self._st.version != start_round:
                raise ValueError(
                    "resuming the async scheduler mid-run requires its restored "
                    "loop state (see runtime.checkpoint.restore_run_state)")
            st = self._st
        else:
            st = self._st = _AsyncLoopState()

        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer

        def start_client(now: float) -> bool:
            idle = [p for p in tuner.participants if p.participant_id not in st.active]
            picked = self._sample(tuner, idle, 1, st.version) if idle else []
            if not picked:
                # Nobody idle (or the availability trace left nobody online).
                return False
            participant = picked[0]
            st.active.add(participant.participant_id)
            tuner.before_round(st.version, [participant])
            with tracer.span("participant_round", category="train",
                             round=st.version,
                             participant=participant.participant_id) as span:
                result = tuner.participant_round(participant, st.version)
                fault = self.faults.outcome(st.task_counter, participant.participant_id)
                st.task_counter += 1
                if fault.is_straggler:
                    result = replace(result,
                                     breakdown=scale_breakdown(result.breakdown,
                                                               fault.slowdown))
                duration = self._result_duration(result)
                span.set(sim_duration=duration)
            st.queue.push(now + duration, "finish", participant=participant, result=result,
                          start_version=st.version, dropped=fault.dropped)
            return True

        def refill_slots(now: float) -> None:
            """Start clients until every concurrency slot is busy (or nobody
            can start) — slots lost to an empty sample earlier are recovered."""
            while len(st.active) < concurrency:
                if not start_client(now):
                    break

        if start_round == 0:
            # If nobody can start at all (e.g. an availability trace with no
            # one online at version 0), the queue stays empty and the run ends
            # early with the rounds produced so far.
            refill_slots(0.0)
        elif st.pending_refill:
            # The interrupted run was checkpointed at a yield point, *before*
            # its post-aggregation refill ran.  Replaying the refill here —
            # with the restored RNG and the restored event time — reproduces
            # exactly the client starts the uninterrupted run performed when
            # its caller pulled the next round.
            st.pending_refill = False
            refill_slots(st.last_event_time)

        while st.version < num_rounds and st.queue:
            event = st.queue.pop()
            now = event.time
            st.last_event_time = now
            participant = event.payload["participant"]
            st.active.discard(participant.participant_id)
            st.events_this_round += 1
            if st.events_this_round > self.MAX_EVENTS_PER_ROUND:
                raise RuntimeError(
                    "async federation starved: no aggregation within "
                    f"{self.MAX_EVENTS_PER_ROUND} client finishes (check dropout_prob)")
            if event.payload["dropped"]:
                st.dropped_since_aggregation += 1
            else:
                st.buffer.append({
                    "participant": participant,
                    "result": event.payload["result"],
                    "start_version": event.payload["start_version"],
                    "finish_time": now,
                })
            if len(st.buffer) >= self.buffer_size:
                round_result = self._aggregate(tuner, st.version, st.buffer,
                                               st.dropped_since_aggregation, now,
                                               st.last_aggregation_time)
                st.last_aggregation_time = now + round_result.timeline.server_time
                st.buffer = []
                st.dropped_since_aggregation = 0
                st.version += 1
                st.events_this_round = 0
                # The post-aggregation refill runs only if the caller keeps
                # consuming rounds: a run that stops here (num_rounds reached,
                # stop_at_target) never trains clients it would then discard.
                # A checkpoint taken at this yield records the refill as
                # pending and replays it on resume (see above).
                st.pending_refill = True
                yield round_result
                st.pending_refill = False
                # Freed (and any previously unfillable) slots restart on the
                # post-aggregation model.
                refill_slots(now)
            else:
                refill_slots(now)

    def _aggregate(self, tuner: FederatedFineTuner, version: int, buffer: List[dict],
                   num_dropped: int, now: float,
                   last_aggregation_time: float) -> RoundResult:
        tracer = getattr(tuner, "telemetry", NULL_TELEMETRY).tracer
        with tracer.span("round", category="round", round=version,
                         buffered=len(buffer)) as span:
            contributors: List[Tuple[Participant, ParticipantRoundResult]] = []
            stalenesses: List[int] = []
            for entry in buffer:
                staleness = version - entry["start_version"]
                stalenesses.append(staleness)
                discount = self.staleness_discount(staleness)
                result = entry["result"]
                discounted = replace(result, updates=[
                    replace(update, weight=update.weight * discount, staleness=staleness)
                    for update in result.updates])
                contributors.append((entry["participant"], discounted))

            timeline = RoundTimeline(round_index=version)
            _, losses, wire, edge, tiers = self._aggregate_round(
                tuner, version, timeline, contributors)

            duration = max(now + timeline.server_time - last_aggregation_time, 0.0)
            timeline.duration_override = duration
            simulated_time = tuner.clock.advance(duration)
            span.set(sim_time=simulated_time, sim_duration=duration)
        return RoundResult(
            round_index=version,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            metric_value=tuner.evaluate(),
            simulated_time=simulated_time,
            round_duration=duration,
            timeline=timeline,
            num_selected=len(buffer) + num_dropped,
            num_aggregated=len(buffer),
            num_dropped=num_dropped,
            mean_staleness=float(np.mean(stalenesses)) if stalenesses else 0.0,
            wire_bytes=wire.total_bytes,
            wire_seconds=wire.seconds,
            payloads_lost=wire.lost,
            payloads_corrupted=wire.corrupted,
            edge_bytes=edge.total_bytes,
            edge_seconds=edge.seconds,
            edge_payloads=edge.payloads,
            tier_bytes=[s.total_bytes for s in tiers],
            tier_seconds=[s.seconds for s in tiers],
            tier_payloads=[s.payloads for s in tiers],
        )


SCHEDULERS = ("sync", "semisync", "async")


def make_scheduler(config) -> Scheduler:
    """Build the scheduler stack a :class:`~repro.federated.RunConfig` selects."""
    name = getattr(config, "scheduler", "sync")
    # The default uniform policy stays with the fine-tuner's (overridable)
    # ``select_participants``; an explicit sampler choice takes precedence.
    sampler = None if getattr(config, "sampler", "uniform") == "uniform" \
        else make_sampler(config)
    faults = FaultInjector.from_config(config)
    if name == "async" and getattr(config, "executor", "serial") != "serial":
        raise ValueError(
            "scheduler='async' executes clients serially at their simulated start "
            "times and cannot use executor="
            f"{config.executor!r}; use executor='serial'")
    executor = make_executor(config)
    if name == "sync":
        return SyncScheduler(sampler, faults, executor)
    if name == "semisync":
        return SemiSyncScheduler(
            sampler, faults, executor,
            deadline_seconds=getattr(config, "deadline_seconds", None),
            deadline_quantile=getattr(config, "deadline_quantile", 0.8),
        )
    if name == "async":
        return AsyncScheduler(
            sampler, faults, executor,
            buffer_size=getattr(config, "buffer_size", 4),
            staleness_exponent=getattr(config, "staleness_exponent", 0.5),
            concurrency=getattr(config, "async_concurrency", None),
        )
    raise ValueError(f"unknown scheduler {name!r} (expected one of {SCHEDULERS})")
