"""Seeded fault injection: stragglers and dropouts.

Real federated fleets lose clients mid-round (network churn, battery, user
interaction) and see order-of-magnitude slowdowns from background load.  The
:class:`FaultInjector` layers both on top of the analytical
:class:`~repro.systems.cost_model.CostModel` durations: a straggler's round
time is multiplied by ``straggler_slowdown``, a dropped client contributes
nothing.

Every draw comes from a generator derived from ``(seed, round, participant)``
rather than from call order or module-level ``np.random``, so fault outcomes
are reproducible run-to-run *and* independent of execution order — the serial
and process-pool executors see identical faults.  The same keying makes the
injectors *stateless between rounds*: a resumed run
(:mod:`repro.runtime.checkpoint`) replays exactly the faults the interrupted
run would have seen without the checkpoint having to capture any injector
state.  (The :class:`ChannelFaultInjector` stream is keyed on each channel's
payload sequence number, which *is* checkpointed — by the channel itself via
:meth:`repro.comm.Channel.export_state`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..systems import RoundCostBreakdown


@dataclass(frozen=True)
class FaultOutcome:
    """What the injector decided for one (round, participant) pair."""

    slowdown: float = 1.0
    dropped: bool = False

    @property
    def is_straggler(self) -> bool:
        return self.slowdown > 1.0


def scale_breakdown(breakdown: RoundCostBreakdown, factor: float) -> RoundCostBreakdown:
    """A copy of ``breakdown`` with every phase scaled by ``factor``.

    ``RoundCostBreakdown.total`` is linear in its phases (including under
    profiling overlap), so scaling the phases scales the total identically.
    """
    if factor == 1.0:
        return breakdown
    return RoundCostBreakdown(**{phase: value * factor
                                 for phase, value in breakdown.as_dict().items()})


@dataclass
class FaultInjector:
    """Seeded straggler and dropout injection for one run."""

    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("dropout_prob", "straggler_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")

    @property
    def active(self) -> bool:
        return self.dropout_prob > 0.0 or self.straggler_prob > 0.0

    def outcome(self, round_index: int, participant_id: int) -> FaultOutcome:
        """The (deterministic) fault outcome for one participant this round."""
        if not self.active:
            return FaultOutcome()
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, 0x7A17,
                                    int(round_index), int(participant_id)]))
        # Fixed draw order keeps the stream stable as probabilities change.
        drop_draw, straggle_draw = rng.random(2)
        if drop_draw < self.dropout_prob:
            return FaultOutcome(dropped=True)
        if straggle_draw < self.straggler_prob:
            return FaultOutcome(slowdown=self.straggler_slowdown)
        return FaultOutcome()

    def outcomes(self, round_index: int, participant_ids) -> Dict[int, FaultOutcome]:
        return {pid: self.outcome(round_index, pid) for pid in participant_ids}

    @classmethod
    def from_config(cls, config) -> "FaultInjector":
        """Build the injector a :class:`~repro.federated.RunConfig` describes."""
        return cls(
            dropout_prob=getattr(config, "dropout_prob", 0.0),
            straggler_prob=getattr(config, "straggler_prob", 0.0),
            straggler_slowdown=getattr(config, "straggler_slowdown", 4.0),
            seed=getattr(config, "seed", 0),
        )


@dataclass(frozen=True)
class ChannelFaultOutcome:
    """What the channel injector decided for one payload."""

    lost: bool = False
    corrupted: bool = False


@dataclass
class ChannelFaultInjector:
    """Seeded per-payload loss and corruption for wire transport.

    The same determinism contract as :class:`FaultInjector`: every draw comes
    from ``(seed, participant, payload sequence number)``, so wire faults
    replay identically run-to-run and independently of execution order.  A
    lost payload never reaches the server; a corrupted one arrives with
    flipped bytes and is caught by the frame checksum
    (:class:`~repro.comm.serialization.PayloadCorruptedError`).
    """

    loss_prob: float = 0.0
    corrupt_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss_prob", "corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def active(self) -> bool:
        return self.loss_prob > 0.0 or self.corrupt_prob > 0.0

    def _rng(self, salt: int, sequence: int, participant_id: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, salt,
                                    int(sequence), int(participant_id)]))

    def outcome(self, sequence: int, participant_id: int) -> ChannelFaultOutcome:
        """The (deterministic) fate of one payload on one participant's link."""
        if not self.active:
            return ChannelFaultOutcome()
        loss_draw, corrupt_draw = self._rng(0xC4A7, sequence, participant_id).random(2)
        if loss_draw < self.loss_prob:
            return ChannelFaultOutcome(lost=True)
        if corrupt_draw < self.corrupt_prob:
            return ChannelFaultOutcome(corrupted=True)
        return ChannelFaultOutcome()

    def corrupt(self, payload: bytes, sequence: int, participant_id: int) -> bytes:
        """Flip a few bytes of ``payload`` (deterministically per sequence)."""
        if not payload:
            return payload
        rng = self._rng(0xBADD, sequence, participant_id)
        data = bytearray(payload)
        flips = max(1, len(data) // 4096)
        # Distinct positions: XOR flips at a repeated position would cancel
        # out and deliver the payload byte-identical despite being counted
        # as corrupted.
        for position in rng.choice(len(data), size=min(flips, len(data)), replace=False):
            data[int(position)] ^= 0xFF
        return bytes(data)

    @classmethod
    def from_config(cls, config) -> "ChannelFaultInjector":
        return cls(
            loss_prob=getattr(config, "channel_loss_prob", 0.0),
            corrupt_prob=getattr(config, "channel_corrupt_prob", 0.0),
            seed=getattr(config, "seed", 0),
        )
