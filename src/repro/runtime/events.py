"""Discrete-event machinery for the federated runtime.

The runtime models a federated deployment as a stream of timestamped events on
a simulated clock (the same simulated seconds produced by
:class:`~repro.systems.cost_model.CostModel` and accumulated by
:class:`~repro.systems.timeline.SimulatedClock`).  An :class:`EventQueue` is a
plain binary heap keyed on ``(time, sequence)``: events fire in simulated-time
order, and events that share a timestamp fire in insertion order, which keeps
every scheduler deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence in the simulated federation."""

    time: float
    seq: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Ordering is ``(time, seq)``: strictly increasing sequence numbers break
    timestamp ties in FIFO order, so two runs that push the same events in the
    same order pop them in the same order.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule ``kind`` at simulated second ``time``."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=float(time), seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Event:
        """The earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][2]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def snapshot(self) -> List[Event]:
        """Every queued event in firing order, without consuming the queue.

        Re-pushing a snapshot into a fresh queue (in order) reproduces the
        original pop order exactly — sequence numbers are reassigned densely
        but preserve the relative tie-breaking — which is what makes the
        asynchronous scheduler's in-flight state checkpointable.
        """
        return [item[2] for item in sorted(self._heap, key=lambda item: item[:2])]

    def pop_until(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time`` in firing order."""
        fired: List[Event] = []
        while self._heap and self._heap[0][0] <= time:
            fired.append(self.pop())
        return fired

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
