"""Durable run-state checkpointing for federated fine-tuning runs.

A production federation of millions of participants cannot afford to restart
from round zero when the coordinator dies.  This layer extends the model
checkpointing in :mod:`repro.models.checkpoint` to the *whole run*: every K
rounds it snapshots

* the parameter server — global model parameters (as a standard ``.npz``
  model checkpoint) plus round index and contribution counts;
* the :class:`~repro.metrics.PerformanceTracker` history, the
  :class:`~repro.systems.RunTimeline` and the completed
  :class:`~repro.federated.RoundResult` list;
* every RNG stream a continuing round will draw from — the tuner's run RNG
  (bit-generator state), each participant's batch-shuffling seed, and each
  wire channel's payload sequence position (the fault injectors themselves
  are stateless: their draws are keyed on ``(seed, round, participant)``);
* the simulated clock, method-level extras
  (:meth:`~repro.federated.FederatedFineTuner.export_run_state` — e.g.
  Flux's role-assignment RNG), and the scheduler's cross-round position
  (for the asynchronous scheduler: the in-flight event queue and buffer).

``FederatedFineTuner.run(num_rounds, resume_from=<checkpoint dir>)`` restores
all of it and continues, producing a :class:`~repro.federated.RunResult`
identical to an uninterrupted run — test-enforced for every scheduler.

On-disk layout: one directory per snapshot (``round_00004/``) holding
``model.npz`` and ``run_state.pkl``.  The pickle is written last and moved
into place atomically, so a snapshot directory containing ``run_state.pkl``
is always complete; :func:`latest_checkpoint` ignores anything else.

Two cost levers keep frequent snapshots off the round loop's critical path:

* **Delta snapshots** (``delta_every=K``): instead of a full ``model.npz``,
  a snapshot may hold ``model.delta`` — an exact ``sparse-delta`` codec frame
  against the *previous* snapshot's model, named by a ``delta_base`` file.
  Every K-th snapshot (and the first of every process) is full, bounding the
  resume chain; loading walks the chain back to the full base and replays the
  deltas forward, bit-identically.
* **Background writes** (``background=True``): :meth:`RunCheckpointer.save`
  captures the run state synchronously (cheap copies + one pickle), then
  encodes and writes on a single-outstanding writer thread, joining before
  the next save.  Marker-last semantics are preserved, so a crash mid-write
  still leaves only torn (ignorable) directories.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from ..models.checkpoint import (
    load_checkpoint_state,
    load_state_delta,
    save_state_checkpoint,
    save_state_delta,
)

#: v2: the flat ``edge_channels`` list became a ``topology`` snapshot (tree
#: shape + grouping + per-tier channel positions)
CHECKPOINT_VERSION = 2
MODEL_FILE = "model.npz"
MODEL_DELTA_FILE = "model.delta"
DELTA_BASE_FILE = "delta_base"
STATE_FILE = "run_state.pkl"
_ROUND_DIR = re.compile(r"^round_(\d+)$")

#: config fields a resumed run may legitimately change — everything else must
#: match the snapshot exactly, or the continuation would silently diverge
#: from the uninterrupted run.  All of these are purely operational:
#: snapshot cadence/location/retention, snapshot encoding (full vs delta,
#: foreground vs background), telemetry output, and the aggregation fold
#: backend (serial / process pool / socket service are bit-identical,
#: test-enforced — so a run checkpointed under one may resume under another)
#: cannot affect run results.
_RESUMABLE_CONFIG_FIELDS = frozenset(
    {"checkpoint_every", "checkpoint_dir", "checkpoint_keep_last",
     "checkpoint_delta_every", "checkpoint_async",
     "telemetry", "telemetry_dir",
     "aggregation_executor", "aggregation_workers",
     "service_transport", "service_retry_attempts",
     "service_retry_delay_s", "service_timeout_s", "service_log_dir",
     "service_codec", "service_window"})


def _config_snapshot(config) -> Dict:
    """The run-affecting slice of a ``RunConfig`` as a comparable dict.

    Applied to the *current* config at capture time and re-applied to the
    *saved* snapshot at resume time, so checkpoints written before a field
    joined ``_RESUMABLE_CONFIG_FIELDS`` stay loadable (the stale key is
    filtered out of both sides of the comparison).
    """
    items = config.items() if isinstance(config, dict) else asdict(config).items()
    return {key: value for key, value in items
            if key not in _RESUMABLE_CONFIG_FIELDS}


def _config_mismatches(saved: Dict, current: Dict) -> List[str]:
    mismatched = []
    for key in sorted(set(saved) | set(current)):
        saved_value, current_value = saved.get(key), current.get(key)
        try:
            same = bool(saved_value == current_value)
        except (ValueError, TypeError):  # e.g. array-valued traces
            same = repr(saved_value) == repr(current_value)
        if not same:
            mismatched.append(key)
    return mismatched


@dataclass
class RunCheckpointCapture:
    """A snapshot's full content, captured synchronously on the round loop.

    The run state is pickled at capture time (the tracker, timeline and round
    list keep mutating as the run continues) and the model parameters are
    copied, so encoding and file IO can happen later — possibly on a
    background thread — without racing the live run.
    """

    state_bytes: bytes
    model_state: Dict[str, np.ndarray]
    model_config: object


def capture_run_checkpoint(tuner, scheduler, tracker, run_timeline,
                           rounds: List) -> RunCheckpointCapture:
    """Capture everything :func:`write_run_checkpoint` needs, copy-safely."""
    state = {
        "version": CHECKPOINT_VERSION,
        "method": tuner.name,
        "scheduler": scheduler.name,
        "next_round": len(rounds),
        "server": tuner.server.export_state(),
        "tracker": tracker,
        "run_timeline": run_timeline,
        "rounds": list(rounds),
        "rng_state": tuner._rng.bit_generator.state,
        "clock": tuner.clock.now(),
        "participants": {
            participant.participant_id:
                tuner.export_participant_state(participant.participant_id)
            for participant in tuner.participants
        },
        "channels": tuner.export_channel_states(),
        # Tree shape, grouping policy and every tier's channel positions; the
        # tree itself holds no cross-round fold state (partials are per-round
        # and checkpoints land between rounds), so this plus the RunConfig
        # snapshot is the whole topology.
        "topology": (
            tuner.topology.export_state()
            if getattr(tuner, "topology", None) is not None else None),
        "run_config": _config_snapshot(tuner.config),
        "tuner_extra": tuner.export_run_state(),
        "scheduler_state": scheduler.export_state(),
    }
    model = tuner.server.global_model
    model_state = {key: np.array(value, copy=True)
                   for key, value in model.state_dict().items()}
    return RunCheckpointCapture(pickle.dumps(state), model_state, model.config)


def write_run_checkpoint(directory: str, capture: RunCheckpointCapture, *,
                         delta_base: Optional[str] = None,
                         delta_reference: Optional[Dict[str, np.ndarray]] = None
                         ) -> str:
    """Persist a captured snapshot into ``directory`` and return it.

    With ``delta_base``/``delta_reference`` set, the model is written as a
    ``model.delta`` sparse-delta frame against ``delta_reference`` (the model
    state of the sibling snapshot named by ``delta_base``) instead of a full
    ``model.npz``.
    """
    if (delta_base is None) != (delta_reference is None):
        raise ValueError(
            "delta snapshots need both the base directory name and the base "
            "model state")
    os.makedirs(directory, exist_ok=True)
    # Re-saving into an existing snapshot (a resumed-from-older-round run
    # reaching this round again) must not leave a half-rewritten model beside
    # a stale-but-complete state file: drop the completeness marker first,
    # then clear whichever model flavour (full or delta) the directory held
    # before — it may differ from the one about to be written and would
    # shadow it — then write through temp files + atomic renames.
    state_path = os.path.join(directory, STATE_FILE)
    if os.path.exists(state_path):
        os.remove(state_path)
    for stale in (MODEL_FILE, MODEL_DELTA_FILE, DELTA_BASE_FILE):
        stale_path = os.path.join(directory, stale)
        if os.path.exists(stale_path):
            os.remove(stale_path)
    if delta_reference is not None:
        save_state_delta(capture.model_state, delta_reference,
                         os.path.join(directory, MODEL_DELTA_FILE))
        base_tmp = os.path.join(directory, DELTA_BASE_FILE + ".tmp")
        with open(base_tmp, "w", encoding="ascii") as handle:
            handle.write(delta_base)
        os.replace(base_tmp, os.path.join(directory, DELTA_BASE_FILE))
    else:
        model_tmp = save_state_checkpoint(
            capture.model_state, capture.model_config,
            os.path.join(directory, "model.tmp.npz"))
        os.replace(model_tmp, os.path.join(directory, MODEL_FILE))
    # Write-then-rename: the state file names a complete snapshot, so a crash
    # mid-save leaves a directory that loaders and `latest_checkpoint` reject
    # rather than a torn checkpoint.
    tmp_path = state_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(capture.state_bytes)
    os.replace(tmp_path, state_path)
    return directory


def save_run_checkpoint(directory: str, tuner, scheduler, tracker,
                        run_timeline, rounds: List) -> str:
    """Write one complete (full-model) run snapshot into ``directory``."""
    return write_run_checkpoint(
        directory,
        capture_run_checkpoint(tuner, scheduler, tracker, run_timeline, rounds))


def _delta_base_of(path: str) -> Optional[str]:
    """The sibling snapshot directory ``path``'s delta references, if any."""
    base_file = os.path.join(path, DELTA_BASE_FILE)
    if not os.path.exists(base_file):
        return None
    with open(base_file, "r", encoding="ascii") as handle:
        name = handle.read().strip()
    if not name or os.path.sep in name:
        raise ValueError(f"corrupt delta-base reference in {base_file!r}")
    return os.path.join(os.path.dirname(path), name)


def _load_model_state(path: str) -> Dict[str, np.ndarray]:
    """Model state of the snapshot at ``path``, resolving delta chains.

    Walks ``delta_base`` links back to the nearest full ``model.npz`` and
    replays the sparse deltas forward — bit-identical to the state the full
    snapshot would have held.
    """
    chain: List[str] = []
    seen = set()
    current = path
    while True:
        model_path = os.path.join(current, MODEL_FILE)
        if os.path.exists(model_path):
            _, state = load_checkpoint_state(model_path)
            break
        delta_path = os.path.join(current, MODEL_DELTA_FILE)
        base = _delta_base_of(current)
        if base is None or not os.path.exists(delta_path):
            raise FileNotFoundError(
                f"snapshot at {current!r} has neither {MODEL_FILE} nor a "
                f"{MODEL_DELTA_FILE}/{DELTA_BASE_FILE} pair")
        if current in seen:
            raise ValueError(
                f"delta-checkpoint chain starting at {path!r} contains a cycle")
        seen.add(current)
        if not os.path.exists(os.path.join(base, STATE_FILE)):
            raise FileNotFoundError(
                f"delta snapshot {current!r} references base {base!r}, which "
                "is missing or torn")
        chain.append(delta_path)
        current = base
    for delta_path in reversed(chain):
        state = load_state_delta(delta_path, reference=state)
    return state


def load_run_checkpoint(path: str) -> Dict:
    """Read a snapshot directory back into memory (no tuner mutation yet)."""
    state_path = os.path.join(path, STATE_FILE)
    if not os.path.exists(state_path):
        raise FileNotFoundError(
            f"no complete run checkpoint at {path!r} (missing {STATE_FILE})")
    with open(state_path, "rb") as handle:
        state = pickle.load(handle)
    if state.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported run-checkpoint version {state.get('version')!r} "
            f"(expected {CHECKPOINT_VERSION})")
    state["model_state"] = _load_model_state(path)
    return state


def restore_run_state(tuner, scheduler, checkpoint: Dict) -> Dict:
    """Mutate ``tuner``/``scheduler`` back to the snapshot and return the
    resume bundle :meth:`~repro.runtime.scheduler.Scheduler.run` consumes."""
    if checkpoint["method"] != tuner.name:
        raise ValueError(
            f"checkpoint was written by method {checkpoint['method']!r}; "
            f"cannot resume a {tuner.name!r} run from it")
    if checkpoint["scheduler"] != scheduler.name:
        raise ValueError(
            f"checkpoint was written under the {checkpoint['scheduler']!r} "
            f"scheduler; this run uses {scheduler.name!r}")
    mismatched = _config_mismatches(_config_snapshot(checkpoint["run_config"]),
                                    _config_snapshot(tuner.config))
    if mismatched:
        raise ValueError(
            "checkpoint was written under a different RunConfig; resuming "
            "would silently diverge from the uninterrupted run (differing "
            f"fields: {', '.join(mismatched)})")
    tuner.server.global_model.load_state_dict(checkpoint["model_state"])
    tuner.server.import_state(checkpoint["server"])
    tuner._rng = np.random.default_rng()
    tuner._rng.bit_generator.state = checkpoint["rng_state"]
    tuner.clock._now = float(checkpoint["clock"])
    for participant_id, participant_state in checkpoint["participants"].items():
        tuner.import_participant_state(participant_id, participant_state)
    tuner.import_channel_states(checkpoint["channels"])
    topology_state = checkpoint["topology"]
    if topology_state is not None:
        topology = getattr(tuner, "topology", None)
        if topology is None:
            raise ValueError(
                "checkpoint carries an aggregation-topology snapshot "
                f"(tiers {tuple(topology_state['tiers'])}) but the resuming "
                "tuner has a flat topology")
        topology.import_state(topology_state)
    tuner.import_run_state(checkpoint["tuner_extra"])
    scheduler.restore_state(checkpoint["scheduler_state"], tuner)
    pool = getattr(tuner, "_aggregation_pool", None)
    if hasattr(pool, "on_resume"):
        # service backend: rebuild server-side accumulators to the snapshot
        # (empty — snapshots land between rounds), dropping any half-round
        # state a surviving server still holds from the killed run
        pool.on_resume(checkpoint)
    return {
        "tracker": checkpoint["tracker"],
        "run_timeline": checkpoint["run_timeline"],
        "rounds": checkpoint["rounds"],
        "next_round": checkpoint["next_round"],
    }


def prune_checkpoints(directory: str, keep_last: int) -> List[str]:
    """Remove all but the ``keep_last`` newest complete snapshots; return removals.

    Retention counts *complete* snapshots (those with a ``run_state.pkl``
    completeness marker), newest round number first.  Marker-less torn
    directories — the residue of a crash mid-save — are always pruned: they
    can never be resumed from and would otherwise accumulate forever.  Call
    only after a successful marker-last save, so the snapshot just written is
    itself complete and therefore always survives.

    A retained *delta* snapshot is only resumable while its base chain is on
    disk, so the ``delta_base`` links of every retained snapshot are followed
    and the (transitive) bases survive too, even beyond ``keep_last``.
    Snapshots without delta links — the historical layout — rotate exactly as
    before.
    """
    if keep_last < 1 or not os.path.isdir(directory):
        return []
    complete: List[tuple] = []
    torn: List[str] = []
    for name in os.listdir(directory):
        match = _ROUND_DIR.match(name)
        if match is None:
            continue
        path = os.path.join(directory, name)
        if os.path.exists(os.path.join(path, STATE_FILE)):
            complete.append((int(match.group(1)), path))
        else:
            torn.append(path)
    complete.sort(reverse=True)
    keep = {path for _, path in complete[:keep_last]}
    frontier = list(keep)
    while frontier:
        try:
            base = _delta_base_of(frontier.pop())
        except ValueError:
            continue  # corrupt link: nothing resolvable to protect
        if (base is not None and base not in keep
                and os.path.exists(os.path.join(base, STATE_FILE))):
            keep.add(base)
            frontier.append(base)
    removed = torn + [path for _, path in complete if path not in keep]
    for path in removed:
        shutil.rmtree(path)
    return sorted(removed)


def latest_checkpoint(directory: str) -> Optional[str]:
    """The most recent complete snapshot under ``directory`` (or ``None``)."""
    if not os.path.isdir(directory):
        return None
    best: Optional[str] = None
    best_round = -1
    for name in os.listdir(directory):
        match = _ROUND_DIR.match(name)
        if match is None:
            continue
        candidate = os.path.join(directory, name)
        if not os.path.exists(os.path.join(candidate, STATE_FILE)):
            continue  # torn snapshot from a crash mid-save
        if int(match.group(1)) > best_round:
            best_round = int(match.group(1))
            best = candidate
    return best


@dataclass
class CheckpointRecord:
    """One completed snapshot write, for telemetry."""

    path: str
    duration_s: float
    mode: str  # "full" | "delta"
    write: str  # "foreground" | "background"


@dataclass
class RunCheckpointer:
    """Policy object: snapshot the run every ``every`` completed rounds.

    ``keep_last=K`` rotates old snapshots: after each successful (marker-last)
    save, everything but the K newest complete ``round_*`` directories is
    pruned — torn marker-less directories included, delta-chain bases of
    retained snapshots excepted.  ``0`` keeps every snapshot (the historical
    behaviour).

    ``delta_every=K`` writes up to K consecutive delta snapshots (each against
    the previous one) between full snapshots; the first save of every process
    is always full, so resume chains never cross a restart.  ``0`` writes only
    full snapshots.

    ``background=True`` moves encoding and file IO to a writer thread with a
    single outstanding write: :meth:`save` captures the run state and returns;
    the write lands before the next save (or :meth:`finish`).  Writer errors
    re-raise on the round loop at the next :meth:`save`/:meth:`finish`.
    """

    directory: str
    every: int
    keep_last: int = 0
    delta_every: int = 0
    background: bool = False

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint interval must be positive")
        if not self.directory:
            raise ValueError("a checkpoint directory is required")
        if self.keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        if self.delta_every < 0:
            raise ValueError("delta_every must be non-negative")
        self._since_full = 0
        self._last_path: Optional[str] = None
        self._last_model_state: Optional[Dict[str, np.ndarray]] = None
        self._thread: Optional[threading.Thread] = None
        self._errors: List[BaseException] = []
        self._records: List[CheckpointRecord] = []
        self._lock = threading.Lock()

    def due(self, rounds_completed: int) -> bool:
        return rounds_completed > 0 and rounds_completed % self.every == 0

    def path_for(self, rounds_completed: int) -> str:
        return os.path.join(self.directory, f"round_{rounds_completed:05d}")

    def save(self, tuner, scheduler, tracker, run_timeline, rounds: List) -> str:
        self.finish()  # single outstanding write; also surfaces writer errors
        path = self.path_for(len(rounds))
        make_delta = (self.delta_every > 0
                      and self._last_model_state is not None
                      and self._since_full < self.delta_every)
        capture = capture_run_checkpoint(tuner, scheduler, tracker,
                                         run_timeline, rounds)
        reference = self._last_model_state if make_delta else None
        base_name = (os.path.basename(self._last_path) if make_delta else None)
        mode = "delta" if make_delta else "full"
        # This snapshot's captured model becomes the next delta's reference.
        self._last_model_state = capture.model_state
        self._last_path = path
        self._since_full = self._since_full + 1 if make_delta else 0
        start = time.perf_counter()

        def write() -> None:
            write_run_checkpoint(path, capture, delta_base=base_name,
                                 delta_reference=reference)
            if self.keep_last:
                prune_checkpoints(self.directory, self.keep_last)
            with self._lock:
                self._records.append(CheckpointRecord(
                    path, time.perf_counter() - start, mode,
                    "background" if self.background else "foreground"))

        if self.background:
            def job() -> None:
                try:
                    write()
                except BaseException as error:  # surfaced by finish()
                    with self._lock:
                        self._errors.append(error)

            self._thread = threading.Thread(
                target=job, name="checkpoint-writer", daemon=True)
            self._thread.start()
        else:
            write()
        return path

    def finish(self) -> None:
        """Block until any in-flight background write has landed.

        Re-raises (once) an error the writer thread hit, so a failed save
        surfaces on the round loop instead of vanishing with the thread.
        """
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        with self._lock:
            errors, self._errors = list(self._errors), []
        if errors:
            raise errors[0]

    def drain_records(self) -> List[CheckpointRecord]:
        """Completed-write records since the last drain (telemetry feed)."""
        with self._lock:
            records, self._records = list(self._records), []
        return records
