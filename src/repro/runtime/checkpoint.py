"""Durable run-state checkpointing for federated fine-tuning runs.

A production federation of millions of participants cannot afford to restart
from round zero when the coordinator dies.  This layer extends the model
checkpointing in :mod:`repro.models.checkpoint` to the *whole run*: every K
rounds it snapshots

* the parameter server — global model parameters (as a standard ``.npz``
  model checkpoint) plus round index and contribution counts;
* the :class:`~repro.metrics.PerformanceTracker` history, the
  :class:`~repro.systems.RunTimeline` and the completed
  :class:`~repro.federated.RoundResult` list;
* every RNG stream a continuing round will draw from — the tuner's run RNG
  (bit-generator state), each participant's batch-shuffling seed, and each
  wire channel's payload sequence position (the fault injectors themselves
  are stateless: their draws are keyed on ``(seed, round, participant)``);
* the simulated clock, method-level extras
  (:meth:`~repro.federated.FederatedFineTuner.export_run_state` — e.g.
  Flux's role-assignment RNG), and the scheduler's cross-round position
  (for the asynchronous scheduler: the in-flight event queue and buffer).

``FederatedFineTuner.run(num_rounds, resume_from=<checkpoint dir>)`` restores
all of it and continues, producing a :class:`~repro.federated.RunResult`
identical to an uninterrupted run — test-enforced for every scheduler.

On-disk layout: one directory per snapshot (``round_00004/``) holding
``model.npz`` and ``run_state.pkl``.  The pickle is written last and moved
into place atomically, so a snapshot directory containing ``run_state.pkl``
is always complete; :func:`latest_checkpoint` ignores anything else.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from ..models.checkpoint import load_checkpoint_state, save_checkpoint

#: v2: the flat ``edge_channels`` list became a ``topology`` snapshot (tree
#: shape + grouping + per-tier channel positions)
CHECKPOINT_VERSION = 2
MODEL_FILE = "model.npz"
STATE_FILE = "run_state.pkl"
_ROUND_DIR = re.compile(r"^round_(\d+)$")

#: config fields a resumed run may legitimately change — everything else must
#: match the snapshot exactly, or the continuation would silently diverge
#: from the uninterrupted run.  All of these are purely operational:
#: snapshot cadence/location/retention and telemetry output cannot affect
#: run results.
_RESUMABLE_CONFIG_FIELDS = frozenset(
    {"checkpoint_every", "checkpoint_dir", "checkpoint_keep_last",
     "telemetry", "telemetry_dir"})


def _config_snapshot(config) -> Dict:
    """The run-affecting slice of a ``RunConfig`` as a comparable dict."""
    return {key: value for key, value in asdict(config).items()
            if key not in _RESUMABLE_CONFIG_FIELDS}


def _config_mismatches(saved: Dict, current: Dict) -> List[str]:
    mismatched = []
    for key in sorted(set(saved) | set(current)):
        saved_value, current_value = saved.get(key), current.get(key)
        try:
            same = bool(saved_value == current_value)
        except (ValueError, TypeError):  # e.g. array-valued traces
            same = repr(saved_value) == repr(current_value)
        if not same:
            mismatched.append(key)
    return mismatched


def save_run_checkpoint(directory: str, tuner, scheduler, tracker,
                        run_timeline, rounds: List) -> str:
    """Write one complete run snapshot into ``directory`` and return it."""
    os.makedirs(directory, exist_ok=True)
    # Re-saving into an existing snapshot (a resumed-from-older-round run
    # reaching this round again) must not leave a half-rewritten model.npz
    # beside a stale-but-complete state file: drop the completeness marker
    # first, then write the model through a temp file + atomic rename.
    state_path = os.path.join(directory, STATE_FILE)
    if os.path.exists(state_path):
        os.remove(state_path)
    model_tmp = save_checkpoint(tuner.server.global_model,
                                os.path.join(directory, "model.tmp.npz"))
    os.replace(model_tmp, os.path.join(directory, MODEL_FILE))
    state = {
        "version": CHECKPOINT_VERSION,
        "method": tuner.name,
        "scheduler": scheduler.name,
        "next_round": len(rounds),
        "server": tuner.server.export_state(),
        "tracker": tracker,
        "run_timeline": run_timeline,
        "rounds": list(rounds),
        "rng_state": tuner._rng.bit_generator.state,
        "clock": tuner.clock.now(),
        "participants": {
            participant.participant_id:
                tuner.export_participant_state(participant.participant_id)
            for participant in tuner.participants
        },
        "channels": tuner.export_channel_states(),
        # Tree shape, grouping policy and every tier's channel positions; the
        # tree itself holds no cross-round fold state (partials are per-round
        # and checkpoints land between rounds), so this plus the RunConfig
        # snapshot is the whole topology.
        "topology": (
            tuner.topology.export_state()
            if getattr(tuner, "topology", None) is not None else None),
        "run_config": _config_snapshot(tuner.config),
        "tuner_extra": tuner.export_run_state(),
        "scheduler_state": scheduler.export_state(),
    }
    # Write-then-rename: the state file names a complete snapshot, so a crash
    # mid-save leaves a directory that loaders and `latest_checkpoint` reject
    # rather than a torn checkpoint.
    tmp_path = state_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        pickle.dump(state, handle)
    os.replace(tmp_path, state_path)
    return directory


def load_run_checkpoint(path: str) -> Dict:
    """Read a snapshot directory back into memory (no tuner mutation yet)."""
    state_path = os.path.join(path, STATE_FILE)
    if not os.path.exists(state_path):
        raise FileNotFoundError(
            f"no complete run checkpoint at {path!r} (missing {STATE_FILE})")
    with open(state_path, "rb") as handle:
        state = pickle.load(handle)
    if state.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported run-checkpoint version {state.get('version')!r} "
            f"(expected {CHECKPOINT_VERSION})")
    _, model_state = load_checkpoint_state(os.path.join(path, MODEL_FILE))
    state["model_state"] = model_state
    return state


def restore_run_state(tuner, scheduler, checkpoint: Dict) -> Dict:
    """Mutate ``tuner``/``scheduler`` back to the snapshot and return the
    resume bundle :meth:`~repro.runtime.scheduler.Scheduler.run` consumes."""
    if checkpoint["method"] != tuner.name:
        raise ValueError(
            f"checkpoint was written by method {checkpoint['method']!r}; "
            f"cannot resume a {tuner.name!r} run from it")
    if checkpoint["scheduler"] != scheduler.name:
        raise ValueError(
            f"checkpoint was written under the {checkpoint['scheduler']!r} "
            f"scheduler; this run uses {scheduler.name!r}")
    mismatched = _config_mismatches(checkpoint["run_config"],
                                    _config_snapshot(tuner.config))
    if mismatched:
        raise ValueError(
            "checkpoint was written under a different RunConfig; resuming "
            "would silently diverge from the uninterrupted run (differing "
            f"fields: {', '.join(mismatched)})")
    tuner.server.global_model.load_state_dict(checkpoint["model_state"])
    tuner.server.import_state(checkpoint["server"])
    tuner._rng = np.random.default_rng()
    tuner._rng.bit_generator.state = checkpoint["rng_state"]
    tuner.clock._now = float(checkpoint["clock"])
    for participant_id, participant_state in checkpoint["participants"].items():
        tuner.import_participant_state(participant_id, participant_state)
    tuner.import_channel_states(checkpoint["channels"])
    topology_state = checkpoint["topology"]
    if topology_state is not None:
        topology = getattr(tuner, "topology", None)
        if topology is None:
            raise ValueError(
                "checkpoint carries an aggregation-topology snapshot "
                f"(tiers {tuple(topology_state['tiers'])}) but the resuming "
                "tuner has a flat topology")
        topology.import_state(topology_state)
    tuner.import_run_state(checkpoint["tuner_extra"])
    scheduler.restore_state(checkpoint["scheduler_state"], tuner)
    return {
        "tracker": checkpoint["tracker"],
        "run_timeline": checkpoint["run_timeline"],
        "rounds": checkpoint["rounds"],
        "next_round": checkpoint["next_round"],
    }


def prune_checkpoints(directory: str, keep_last: int) -> List[str]:
    """Remove all but the ``keep_last`` newest complete snapshots; return removals.

    Retention counts *complete* snapshots (those with a ``run_state.pkl``
    completeness marker), newest round number first.  Marker-less torn
    directories — the residue of a crash mid-save — are always pruned: they
    can never be resumed from and would otherwise accumulate forever.  Call
    only after a successful marker-last save, so the snapshot just written is
    itself complete and therefore always survives.
    """
    if keep_last < 1 or not os.path.isdir(directory):
        return []
    complete: List[tuple] = []
    torn: List[str] = []
    for name in os.listdir(directory):
        match = _ROUND_DIR.match(name)
        if match is None:
            continue
        path = os.path.join(directory, name)
        if os.path.exists(os.path.join(path, STATE_FILE)):
            complete.append((int(match.group(1)), path))
        else:
            torn.append(path)
    complete.sort(reverse=True)
    removed = torn + [path for _, path in complete[keep_last:]]
    for path in removed:
        shutil.rmtree(path)
    return sorted(removed)


def latest_checkpoint(directory: str) -> Optional[str]:
    """The most recent complete snapshot under ``directory`` (or ``None``)."""
    if not os.path.isdir(directory):
        return None
    best: Optional[str] = None
    best_round = -1
    for name in os.listdir(directory):
        match = _ROUND_DIR.match(name)
        if match is None:
            continue
        candidate = os.path.join(directory, name)
        if not os.path.exists(os.path.join(candidate, STATE_FILE)):
            continue  # torn snapshot from a crash mid-save
        if int(match.group(1)) > best_round:
            best_round = int(match.group(1))
            best = candidate
    return best


@dataclass
class RunCheckpointer:
    """Policy object: snapshot the run every ``every`` completed rounds.

    ``keep_last=K`` rotates old snapshots: after each successful (marker-last)
    save, everything but the K newest complete ``round_*`` directories is
    pruned — torn marker-less directories included.  ``0`` keeps every
    snapshot (the historical behaviour).
    """

    directory: str
    every: int
    keep_last: int = 0

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint interval must be positive")
        if not self.directory:
            raise ValueError("a checkpoint directory is required")
        if self.keep_last < 0:
            raise ValueError("keep_last must be non-negative")

    def due(self, rounds_completed: int) -> bool:
        return rounds_completed > 0 and rounds_completed % self.every == 0

    def path_for(self, rounds_completed: int) -> str:
        return os.path.join(self.directory, f"round_{rounds_completed:05d}")

    def save(self, tuner, scheduler, tracker, run_timeline, rounds: List) -> str:
        path = save_run_checkpoint(self.path_for(len(rounds)), tuner, scheduler,
                                   tracker, run_timeline, rounds)
        if self.keep_last:
            prune_checkpoints(self.directory, self.keep_last)
        return path
