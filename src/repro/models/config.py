"""Model configuration for the MoE transformer substrate."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Union


@dataclass
class MoEModelConfig:
    """Architecture hyper-parameters for a decoder-only MoE transformer.

    The configuration intentionally mirrors the knobs of LLaMA-MoE and
    DeepSeek-MoE that matter for Flux: the number of MoE layers, the number of
    experts per layer (which may differ across layers, matching Flux's
    ``customized_moe`` API), top-k routing, and optional shared experts
    (DeepSeek-style experts that every token passes through).
    """

    name: str = "moe-transformer"
    vocab_size: int = 256
    d_model: int = 32
    n_layers: int = 4
    n_heads: int = 4
    d_ff: int = 64
    num_experts: Union[int, Sequence[int]] = 8
    top_k: int = 2
    num_shared_experts: int = 0
    max_seq_len: int = 64
    dropout: float = 0.0
    rms_norm_eps: float = 1e-6
    tie_embeddings: bool = True
    activation: str = "silu"
    gate_noise_std: float = 0.0
    seed: int = 0
    #: parameter/compute dtype of the built model: "float64" (numerics default)
    #: or "float32" (training/benchmark fast path, ~2x GEMM throughput)
    dtype: str = "float64"
    #: expert execution strategy: "batched" grouped GEMMs, "sparse"
    #: (zero-skipping grouped GEMMs over structurally-sparsified experts) or
    #: the legacy per-expert "loop" (kept for equivalence testing)
    dispatch: str = "batched"

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
        if self.dispatch not in ("batched", "sparse", "loop"):
            raise ValueError("dispatch must be 'batched', 'sparse' or 'loop'")
        experts = self.experts_per_layer()
        if any(e < 1 for e in experts):
            raise ValueError("every layer needs at least one expert")
        if any(self.top_k > e for e in experts):
            raise ValueError("top_k cannot exceed the number of experts in any layer")

    def experts_per_layer(self) -> List[int]:
        """Number of routed experts in each MoE layer."""
        if isinstance(self.num_experts, int):
            return [self.num_experts] * self.n_layers
        experts = list(self.num_experts)
        if len(experts) != self.n_layers:
            raise ValueError(
                f"num_experts list has {len(experts)} entries but model has {self.n_layers} layers"
            )
        return experts

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def total_experts(self) -> int:
        """Total number of routed experts across all layers."""
        return sum(self.experts_per_layer())

    def with_experts(self, exps_config: Union[int, Sequence[int]]) -> "MoEModelConfig":
        """Return a copy of this config with a different per-layer expert count."""
        return replace(self, num_experts=exps_config)

    def expert_parameter_count(self) -> int:
        """Number of parameters in a single expert FFN (SwiGLU: 3 matrices)."""
        return 3 * self.d_model * self.d_ff

    def dense_parameter_count(self) -> int:
        """Parameters outside the routed experts (embeddings, attention, norms, gates, shared experts)."""
        attn = self.n_layers * 4 * self.d_model * self.d_model
        norms = self.n_layers * 2 * self.d_model + self.d_model
        gates = sum(self.d_model * e for e in self.experts_per_layer())
        shared = self.n_layers * self.num_shared_experts * self.expert_parameter_count()
        embeddings = self.vocab_size * self.d_model
        if not self.tie_embeddings:
            embeddings *= 2
        return attn + norms + gates + shared + embeddings

    def total_parameter_count(self) -> int:
        """Analytical total parameter count of the model."""
        return self.dense_parameter_count() + self.total_experts * self.expert_parameter_count()

    def expert_fraction(self) -> float:
        """Fraction of all parameters held by routed experts.

        The paper reports that experts account for more than two-thirds of an
        MoE LLM; this property lets tests assert the substrate preserves that
        structural property.
        """
        total = self.total_parameter_count()
        if total == 0:
            return 0.0
        return self.total_experts * self.expert_parameter_count() / total


@dataclass
class ArchitectureDescriptor:
    """Analytical description of a full-scale MoE LLM (for Table 1).

    These descriptors reproduce the #layers/#experts/#parameters/size rows of
    the paper's Table 1 without instantiating the (multi-billion-parameter)
    models.
    """

    name: str
    n_layers: int
    experts_per_layer: int
    total_params: float  # absolute number of parameters
    bytes_per_param: int = 2  # FP16/BF16 storage, matching the paper's sizes

    @property
    def params_billions(self) -> float:
        return self.total_params / 1e9

    @property
    def size_gb(self) -> float:
        # Decimal gigabytes, matching how the paper's Table 1 reports
        # checkpoint sizes (params x 2 bytes / 1e9).
        return self.total_params * self.bytes_per_param / 1e9

    def row(self) -> dict:
        """Render the Table 1 row for this architecture."""
        return {
            "model": self.name,
            "layers": self.n_layers,
            "experts": self.experts_per_layer,
            "params_B": round(self.params_billions, 1),
            "size_GB": round(self.size_gb, 2),
        }
