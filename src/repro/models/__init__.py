"""MoE transformer model substrate (stand-in for LLaMA-MoE / DeepSeek-MoE)."""

from .attention import MultiHeadSelfAttention, causal_mask
from .checkpoint import load_checkpoint, load_model, save_checkpoint
from .config import ArchitectureDescriptor, MoEModelConfig
from .customize import customized_moe, resolve_exps_config
from .experts import ExpertFFN
from .gating import GatingNetwork, RoutingRecord
from .lora import LoRAExpert, LoRALinear, apply_lora_to_experts, lora_parameter_savings
from .moe_layer import MoELayer
from .presets import (
    ARCHITECTURE_DESCRIPTORS,
    PRESETS,
    deepseek_moe_mini,
    get_preset,
    llama_moe_mini,
    table1_rows,
    tiny_moe,
)
from .rerouting import ExpertRemap
from .transformer import MoETransformer, MoETransformerBlock

__all__ = [
    "MoEModelConfig",
    "ArchitectureDescriptor",
    "MultiHeadSelfAttention",
    "causal_mask",
    "GatingNetwork",
    "RoutingRecord",
    "ExpertFFN",
    "LoRALinear",
    "LoRAExpert",
    "apply_lora_to_experts",
    "lora_parameter_savings",
    "MoELayer",
    "ExpertRemap",
    "MoETransformer",
    "MoETransformerBlock",
    "customized_moe",
    "resolve_exps_config",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "llama_moe_mini",
    "deepseek_moe_mini",
    "tiny_moe",
    "get_preset",
    "PRESETS",
    "ARCHITECTURE_DESCRIPTORS",
    "table1_rows",
]
