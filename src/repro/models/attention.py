"""Multi-head self-attention for the MoE transformer substrate.

Besides the usual attention output, the layer records the *per-token attention
received* — the average attention weight other tokens place on each token.
Flux's importance-based merging (§5.3 of the paper) weights experts by the
attention scores of the tokens they process, so this signal is surfaced on
every forward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Linear, Module, Tensor


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular mask: position ``i`` may attend to ``j <= i``."""
    return np.tril(np.ones((seq_len, seq_len), dtype=bool))


class MultiHeadSelfAttention(Module):
    """Causal multi-head self-attention with attention-score bookkeeping."""

    def __init__(self, d_model: int, n_heads: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        rng = rng or np.random.default_rng()
        self.q_proj = Linear(d_model, d_model, bias=False, rng=rng)
        self.k_proj = Linear(d_model, d_model, bias=False, rng=rng)
        self.v_proj = Linear(d_model, d_model, bias=False, rng=rng)
        self.o_proj = Linear(d_model, d_model, bias=False, rng=rng)
        #: attention received by each token of the most recent batch,
        #: shape ``(batch, seq_len)``; consumed by Flux's merging module.
        self.last_token_attention: Optional[np.ndarray] = None

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply causal self-attention to ``x`` of shape ``(batch, seq, d_model)``."""
        batch, seq_len, _ = x.shape
        q = self.q_proj(x).reshape(batch, seq_len, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        k = self.k_proj(x).reshape(batch, seq_len, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        v = self.v_proj(x).reshape(batch, seq_len, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale

        mask = causal_mask(seq_len)[None, None, :, :]
        if attention_mask is not None:
            key_mask = np.asarray(attention_mask, dtype=bool)[:, None, None, :]
            mask = mask & key_mask
        neg_inf = np.full(scores.shape, -1e9, dtype=scores.data.dtype)
        scores = Tensor(np.where(mask, 0.0, neg_inf).astype(scores.data.dtype, copy=False)) + scores

        probs = scores.softmax(axis=-1)

        # Attention received by token j: average of probs[..., :, j] over heads
        # and query positions that are allowed to attend.  This is recorded as
        # plain data (no gradient) — it is a profiling signal, not a loss term.
        attn_data = probs.data
        received = attn_data.mean(axis=1).sum(axis=1)  # (batch, seq)
        valid_queries = mask.sum(axis=(1, 2)).astype(np.float64)  # (batch, seq) queries that can see each key
        received = received / np.maximum(valid_queries, 1.0)
        if attention_mask is not None:
            received = received * np.asarray(attention_mask, dtype=np.float64)
        self.last_token_attention = received

        out = probs @ v
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.d_model)
        return self.o_proj(out)
