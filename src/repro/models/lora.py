"""LoRA adapters for expert FFNs.

The paper's implementation section (§7) notes that Flux "supports the
integration of additional fine-tuning optimization techniques, such as Adapter
and LoRA".  This module provides that integration: a :class:`LoRALinear`
wrapper that adds a trainable low-rank update to a frozen linear layer, and
helpers to wrap/unwrap the experts of an MoE transformer so that federated
updates exchange only the small adapter matrices instead of full expert
weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..autograd import Linear, Module, Parameter, Tensor
from .experts import ExpertFFN
from .transformer import MoETransformer

ExpertKey = Tuple[int, int]


class LoRALinear(Module):
    """A frozen linear layer plus a trainable low-rank update.

    ``y = x W^T + (x A^T) B^T * (alpha / rank)`` where ``A`` is ``(rank, in)``
    and ``B`` is ``(out, rank)``.  ``B`` starts at zero so the wrapped layer is
    initially identical to the original.
    """

    def __init__(self, base: Linear, rank: int = 4, alpha: float = 8.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if rank < 1:
            raise ValueError("LoRA rank must be positive")
        rng = rng or np.random.default_rng()
        self.base = base
        self.rank = rank
        self.alpha = alpha
        self.scaling = alpha / rank
        for param in self.base.parameters():
            param.requires_grad = False
        self.lora_a = Parameter(rng.normal(0.0, 0.02, size=(rank, base.in_features)))
        self.lora_b = Parameter(np.zeros((base.out_features, rank)))

    def forward(self, x: Tensor) -> Tensor:
        frozen = self.base(x)
        update = (x @ self.lora_a.transpose()) @ self.lora_b.transpose()
        return frozen + update * self.scaling

    def delta_weight(self) -> np.ndarray:
        """The effective weight update ``B @ A * scaling`` added by the adapter."""
        return self.lora_b.data @ self.lora_a.data * self.scaling

    def merge_into_base(self) -> Linear:
        """Fold the adapter into the frozen weights and return the base layer."""
        self.base.weight.data += self.delta_weight()
        self.lora_b.data[...] = 0.0
        return self.base

    def adapter_state(self) -> Dict[str, np.ndarray]:
        return {"lora_a": self.lora_a.data.copy(), "lora_b": self.lora_b.data.copy()}

    def load_adapter_state(self, state: Dict[str, np.ndarray]) -> None:
        self.lora_a.data[...] = state["lora_a"]
        self.lora_b.data[...] = state["lora_b"]


class LoRAExpert(Module):
    """An :class:`ExpertFFN` whose three projections carry LoRA adapters."""

    def __init__(self, expert: ExpertFFN, rank: int = 4, alpha: float = 8.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.d_model = expert.d_model
        self.d_ff = expert.d_ff
        self.activation = expert.activation
        self.w_gate = LoRALinear(expert.w_gate, rank=rank, alpha=alpha, rng=rng)
        self.w_up = LoRALinear(expert.w_up, rank=rank, alpha=alpha, rng=rng)
        self.w_down = LoRALinear(expert.w_down, rank=rank, alpha=alpha, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.w_gate(x)
        if self.activation == "silu":
            activated = hidden.silu()
        elif self.activation == "gelu":
            activated = hidden.gelu()
        else:
            activated = hidden.relu()
        return self.w_down(activated * self.w_up(x))

    def adapter_state(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name in ("w_gate", "w_up", "w_down"):
            for key, value in getattr(self, name).adapter_state().items():
                state[f"{name}.{key}"] = value
        return state

    def load_adapter_state(self, state: Dict[str, np.ndarray]) -> None:
        for name in ("w_gate", "w_up", "w_down"):
            getattr(self, name).load_adapter_state({
                "lora_a": state[f"{name}.lora_a"],
                "lora_b": state[f"{name}.lora_b"],
            })

    def num_adapter_parameters(self) -> int:
        return sum(layer.lora_a.data.size + layer.lora_b.data.size
                   for layer in (self.w_gate, self.w_up, self.w_down))


def apply_lora_to_experts(model: MoETransformer, expert_keys: Optional[Iterable[ExpertKey]] = None,
                          rank: int = 4, alpha: float = 8.0, seed: int = 0
                          ) -> Dict[ExpertKey, LoRAExpert]:
    """Wrap (a subset of) the model's experts with LoRA adapters, in place.

    Returns a mapping from expert key to the :class:`LoRAExpert` now installed
    in the model; only the adapter matrices are trainable afterwards.
    """
    rng = np.random.default_rng(seed)
    if expert_keys is None:
        expert_keys = list(model.iter_expert_ids())
    wrapped: Dict[ExpertKey, LoRAExpert] = {}
    for layer, expert in expert_keys:
        base = model.get_expert(layer, expert)
        lora_expert = LoRAExpert(base, rank=rank, alpha=alpha, rng=rng)
        model.blocks[layer].moe.experts[expert] = lora_expert
        wrapped[(layer, expert)] = lora_expert
    return wrapped


def lora_parameter_savings(model: MoETransformer, rank: int = 4) -> float:
    """Fraction of expert-update bytes saved by exchanging LoRA adapters only."""
    config = model.config
    full = config.expert_parameter_count()
    adapters = 3 * rank * (config.d_model + config.d_ff)
    if full == 0:
        return 0.0
    return 1.0 - adapters / full
