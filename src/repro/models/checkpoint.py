"""Checkpoint save/load, including loading into customized MoE architectures.

``save_checkpoint`` / ``load_checkpoint`` persist a model's parameters as an
``.npz`` archive.  :func:`load_model` reproduces the paper's
``Flux.moe.load_model(model_path, exps_config)`` API: it builds a model whose
MoE layers may have a *different* number of experts than the checkpoint and
loads expert weights and non-expert weights separately, so a compact or
re-configured model can start from the original pre-trained parameters.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .config import MoEModelConfig
from .customize import customized_moe
from .transformer import MoETransformer

_CONFIG_KEY = "__config_json__"


def save_checkpoint(model: MoETransformer, path: Union[str, "os.PathLike[str]"]) -> str:
    """Serialise model parameters and config to ``path`` (``.npz``).

    Returns the path of the file actually written.  ``np.savez`` appends an
    ``.npz`` suffix when the target lacks one; rather than second-guessing
    that rule, the suffix is resolved *before* writing and the resolved name
    is what both ``np.savez`` receives and the caller gets back — the two can
    never disagree (including for ``os.PathLike`` inputs and suffixes that
    merely *contain* ``.npz``, e.g. ``model.npz.bak``).
    """
    target = os.fspath(path)
    if not target.endswith(".npz"):
        target += ".npz"
    directory = os.path.dirname(os.path.abspath(target))
    if directory:
        os.makedirs(directory, exist_ok=True)
    state = model.state_dict()
    config_json = json.dumps(asdict(model.config))
    np.savez(target, **state, **{_CONFIG_KEY: np.array(config_json)})
    return target


def load_checkpoint(path: str) -> MoETransformer:
    """Load a checkpoint into a model with the architecture it was saved with."""
    config, state = load_checkpoint_state(path)
    model = MoETransformer(config)
    model.load_state_dict(state)
    return model


def load_checkpoint_state(path: str) -> Tuple[MoEModelConfig, Dict[str, np.ndarray]]:
    """The raw ``(config, state_dict)`` stored in a checkpoint archive.

    Useful when the parameters should be loaded into an *existing* model
    instance (e.g. the run-state layer restoring a parameter server's global
    model in place) rather than a freshly constructed one.
    """
    archive = np.load(_resolve(path), allow_pickle=False)
    config = _config_from_archive(archive)
    state = {key: archive[key] for key in archive.files if key != _CONFIG_KEY}
    return config, state


def load_model(model_path: str, exps_config: Optional[Union[int, Sequence[int], Dict[int, int]]] = None
               ) -> MoETransformer:
    """Load checkpoint parameters into a (possibly customized) MoE model.

    This mirrors ``Flux.moe.load_model``: expert parameters and non-expert
    parameters (attention, norms, embeddings, gates) are loaded separately so
    that an architecture with fewer experts per layer still receives the
    pre-trained weights for the experts it keeps (experts are retained in
    original-id order) and all shared components.

    Parameters
    ----------
    model_path:
        Path to an ``.npz`` checkpoint produced by :func:`save_checkpoint`.
    exps_config:
        Per-layer expert counts for the customized architecture.  ``None``
        loads the original architecture unchanged.
    """
    config, state = load_checkpoint_state(model_path)
    base = MoETransformer(config)
    base.load_state_dict(state)
    if exps_config is None:
        return base
    return customized_moe(base, exps_config)


def _resolve(path: str) -> str:
    if os.path.exists(path):
        return path
    if os.path.exists(path + ".npz"):
        return path + ".npz"
    raise FileNotFoundError(f"checkpoint not found: {path}")


def _config_from_archive(archive) -> MoEModelConfig:
    if _CONFIG_KEY not in archive.files:
        raise KeyError("checkpoint is missing its embedded config")
    raw = json.loads(str(archive[_CONFIG_KEY]))
    if isinstance(raw.get("num_experts"), list):
        raw["num_experts"] = list(raw["num_experts"])
    return MoEModelConfig(**raw)
