"""Checkpoint save/load, including loading into customized MoE architectures.

``save_checkpoint`` / ``load_checkpoint`` persist a model's parameters as an
``.npz`` archive.  :func:`load_model` reproduces the paper's
``Flux.moe.load_model(model_path, exps_config)`` API: it builds a model whose
MoE layers may have a *different* number of experts than the checkpoint and
loads expert weights and non-expert weights separately, so a compact or
re-configured model can start from the original pre-trained parameters.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .config import MoEModelConfig
from .customize import customized_moe
from .transformer import MoETransformer

_CONFIG_KEY = "__config_json__"


def save_checkpoint(model: MoETransformer, path: Union[str, "os.PathLike[str]"]) -> str:
    """Serialise model parameters and config to ``path`` (``.npz``).

    Returns the path of the file actually written.  ``np.savez`` appends an
    ``.npz`` suffix when the target lacks one; rather than second-guessing
    that rule, the suffix is resolved *before* writing and the resolved name
    is what both ``np.savez`` receives and the caller gets back — the two can
    never disagree (including for ``os.PathLike`` inputs and suffixes that
    merely *contain* ``.npz``, e.g. ``model.npz.bak``).
    """
    return save_state_checkpoint(model.state_dict(), model.config, path)


def save_state_checkpoint(state: Dict[str, np.ndarray], config: MoEModelConfig,
                          path: Union[str, "os.PathLike[str]"]) -> str:
    """:func:`save_checkpoint` from an already-captured ``(state, config)``.

    Lets a background checkpoint writer persist a snapshot captured earlier on
    the round loop without touching the (by then possibly mutated) live model.
    """
    target = os.fspath(path)
    if not target.endswith(".npz"):
        target += ".npz"
    directory = os.path.dirname(os.path.abspath(target))
    if directory:
        os.makedirs(directory, exist_ok=True)
    config_json = json.dumps(asdict(config))
    np.savez(target, **state, **{_CONFIG_KEY: np.array(config_json)})
    return target


def save_state_delta(state: Dict[str, np.ndarray],
                     reference: Dict[str, np.ndarray],
                     path: Union[str, "os.PathLike[str]"]) -> str:
    """Write ``state`` as an exact sparse delta against ``reference``.

    The payload is one CRC-framed :func:`repro.comm.encode_state_dict` frame
    under the ``sparse-delta`` codec: per tensor, the indices of the entries
    that differ from the reference plus their raw new values — bit-exact to
    reconstruct, and tiny when only a few experts moved between snapshots.
    Written through a temp file + atomic rename.
    """
    from ..comm import encode_state_dict, get_codec  # deferred: package cycle

    frame = encode_state_dict(state, get_codec("sparse-delta"), reference=reference)
    target = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(target))
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(frame)
    os.replace(tmp, target)
    return target


def load_state_delta(path: str,
                     reference: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`save_state_delta`: reconstruct the full state dict."""
    from ..comm import decode_state_dict  # deferred: package cycle

    with open(path, "rb") as handle:
        frame = handle.read()
    return decode_state_dict(frame, reference=reference)


def load_checkpoint(path: str) -> MoETransformer:
    """Load a checkpoint into a model with the architecture it was saved with."""
    config, state = load_checkpoint_state(path)
    model = MoETransformer(config)
    model.load_state_dict(state)
    return model


def load_checkpoint_state(path: str) -> Tuple[MoEModelConfig, Dict[str, np.ndarray]]:
    """The raw ``(config, state_dict)`` stored in a checkpoint archive.

    Useful when the parameters should be loaded into an *existing* model
    instance (e.g. the run-state layer restoring a parameter server's global
    model in place) rather than a freshly constructed one.
    """
    archive = np.load(_resolve(path), allow_pickle=False)
    config = _config_from_archive(archive)
    state = {key: archive[key] for key in archive.files if key != _CONFIG_KEY}
    return config, state


def load_model(model_path: str, exps_config: Optional[Union[int, Sequence[int], Dict[int, int]]] = None
               ) -> MoETransformer:
    """Load checkpoint parameters into a (possibly customized) MoE model.

    This mirrors ``Flux.moe.load_model``: expert parameters and non-expert
    parameters (attention, norms, embeddings, gates) are loaded separately so
    that an architecture with fewer experts per layer still receives the
    pre-trained weights for the experts it keeps (experts are retained in
    original-id order) and all shared components.

    Parameters
    ----------
    model_path:
        Path to an ``.npz`` checkpoint produced by :func:`save_checkpoint`.
    exps_config:
        Per-layer expert counts for the customized architecture.  ``None``
        loads the original architecture unchanged.
    """
    config, state = load_checkpoint_state(model_path)
    base = MoETransformer(config)
    base.load_state_dict(state)
    if exps_config is None:
        return base
    return customized_moe(base, exps_config)


def _resolve(path: str) -> str:
    if os.path.exists(path):
        return path
    if os.path.exists(path + ".npz"):
        return path + ".npz"
    raise FileNotFoundError(f"checkpoint not found: {path}")


def _config_from_archive(archive) -> MoEModelConfig:
    if _CONFIG_KEY not in archive.files:
        raise KeyError("checkpoint is missing its embedded config")
    raw = json.loads(str(archive[_CONFIG_KEY]))
    if isinstance(raw.get("num_experts"), list):
        raw["num_experts"] = list(raw["num_experts"])
    return MoEModelConfig(**raw)
