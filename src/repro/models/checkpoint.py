"""Checkpoint save/load, including loading into customized MoE architectures.

``save_checkpoint`` / ``load_checkpoint`` persist a model's parameters as an
``.npz`` archive.  :func:`load_model` reproduces the paper's
``Flux.moe.load_model(model_path, exps_config)`` API: it builds a model whose
MoE layers may have a *different* number of experts than the checkpoint and
loads expert weights and non-expert weights separately, so a compact or
re-configured model can start from the original pre-trained parameters.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, Optional, Sequence, Union

import numpy as np

from .config import MoEModelConfig
from .customize import customized_moe
from .transformer import MoETransformer

_CONFIG_KEY = "__config_json__"


def save_checkpoint(model: MoETransformer, path: str) -> str:
    """Serialise model parameters and config to ``path`` (``.npz``)."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    state = model.state_dict()
    config_json = json.dumps(asdict(model.config))
    np.savez(path, **state, **{_CONFIG_KEY: np.array(config_json)})
    return path if path.endswith(".npz") else path + ".npz"


def load_checkpoint(path: str) -> MoETransformer:
    """Load a checkpoint into a model with the architecture it was saved with."""
    archive = np.load(_resolve(path), allow_pickle=False)
    config = _config_from_archive(archive)
    model = MoETransformer(config)
    state = {key: archive[key] for key in archive.files if key != _CONFIG_KEY}
    model.load_state_dict(state)
    return model


def load_model(model_path: str, exps_config: Optional[Union[int, Sequence[int], Dict[int, int]]] = None
               ) -> MoETransformer:
    """Load checkpoint parameters into a (possibly customized) MoE model.

    This mirrors ``Flux.moe.load_model``: expert parameters and non-expert
    parameters (attention, norms, embeddings, gates) are loaded separately so
    that an architecture with fewer experts per layer still receives the
    pre-trained weights for the experts it keeps (experts are retained in
    original-id order) and all shared components.

    Parameters
    ----------
    model_path:
        Path to an ``.npz`` checkpoint produced by :func:`save_checkpoint`.
    exps_config:
        Per-layer expert counts for the customized architecture.  ``None``
        loads the original architecture unchanged.
    """
    archive = np.load(_resolve(model_path), allow_pickle=False)
    config = _config_from_archive(archive)
    state = {key: archive[key] for key in archive.files if key != _CONFIG_KEY}
    if exps_config is None:
        model = MoETransformer(config)
        model.load_state_dict(state)
        return model

    base = MoETransformer(config)
    base.load_state_dict(state)
    return customized_moe(base, exps_config)


def _resolve(path: str) -> str:
    if os.path.exists(path):
        return path
    if os.path.exists(path + ".npz"):
        return path + ".npz"
    raise FileNotFoundError(f"checkpoint not found: {path}")


def _config_from_archive(archive) -> MoEModelConfig:
    if _CONFIG_KEY not in archive.files:
        raise KeyError("checkpoint is missing its embedded config")
    raw = json.loads(str(archive[_CONFIG_KEY]))
    if isinstance(raw.get("num_experts"), list):
        raw["num_experts"] = list(raw["num_experts"])
    return MoEModelConfig(**raw)
