"""Customized MoE construction (the paper's ``Flux.moe.customized_moe`` API).

:func:`customized_moe` rebuilds a model so that each MoE layer holds a caller
chosen number of experts, which may differ across layers — unlike standard
frameworks that force a uniform expert count.  Non-expert parameters
(embeddings, attention, norms) are copied verbatim; each layer keeps its first
``n`` experts (original-id order) and the gate projection is truncated or
extended to match.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union


from .transformer import MoETransformer

ExpsConfig = Union[int, Sequence[int], Dict[int, int]]


def resolve_exps_config(exps_config: ExpsConfig, n_layers: int,
                        default_per_layer: Sequence[int]) -> List[int]:
    """Normalise an ``exps_config`` value into a per-layer expert-count list.

    Accepted forms (matching the paper's API description):

    * ``int`` — the same number of experts in every layer;
    * ``list`` — one entry per layer;
    * ``dict`` — ``{layer_index: count}``, unspecified layers keep their
      original expert count.
    """
    if isinstance(exps_config, int):
        counts = [exps_config] * n_layers
    elif isinstance(exps_config, dict):
        counts = list(default_per_layer)
        for layer, count in exps_config.items():
            if not 0 <= int(layer) < n_layers:
                raise KeyError(f"layer index {layer} out of range")
            counts[int(layer)] = int(count)
    else:
        counts = [int(c) for c in exps_config]
        if len(counts) != n_layers:
            raise ValueError(
                f"exps_config has {len(counts)} entries but the model has {n_layers} MoE layers"
            )
    if any(c < 1 for c in counts):
        raise ValueError("every layer must keep at least one expert")
    return counts


def customized_moe(model: MoETransformer, exps_config: ExpsConfig) -> MoETransformer:
    """Return a new model whose MoE layers have per-layer expert counts.

    Parameters are transferred from ``model``: all non-expert weights are
    copied, each layer keeps its lowest-id experts up to the requested count
    (extra experts in the new model, if any, keep their fresh initialisation),
    and the gating projection rows are truncated or padded accordingly.
    """
    old_config = model.config
    counts = resolve_exps_config(exps_config, old_config.n_layers, old_config.experts_per_layer())
    new_config = old_config.with_experts(counts)
    if any(new_config.top_k > c for c in counts):
        raise ValueError("top_k exceeds the number of experts in at least one customized layer")
    new_model = MoETransformer(new_config)

    # Copy shared (non-expert, non-gate) parameters by name where shapes match.
    old_state = model.state_dict()
    new_params = dict(new_model.named_parameters())
    for name, value in old_state.items():
        if name not in new_params:
            continue
        target = new_params[name]
        if target.data.shape == value.shape:
            target.data[...] = value

    # Transfer experts and gates layer by layer.
    for layer_index, (old_layer, new_layer) in enumerate(zip(model.moe_layers(), new_model.moe_layers())):
        keep = min(len(old_layer.experts), len(new_layer.experts))
        for expert_index in range(keep):
            new_layer.experts[expert_index].load_state(old_layer.experts[expert_index].state())
        for shared_index in range(min(len(old_layer.shared_experts), len(new_layer.shared_experts))):
            new_layer.shared_experts[shared_index].load_state(
                old_layer.shared_experts[shared_index].state()
            )
        old_gate = old_layer.gate.proj.weight.data
        new_gate = new_layer.gate.proj.weight.data
        rows = min(old_gate.shape[0], new_gate.shape[0])
        new_gate[:rows, :] = old_gate[:rows, :]
    return new_model
