"""The sparsely-activated MoE feed-forward layer.

Each token is routed by a :class:`~repro.models.gating.GatingNetwork` to its
top-k experts; the layer dispatches tokens to the selected experts, combines
their outputs with the (differentiable) gate weights, and records routing
statistics used by Flux's profiling and merging modules.

The layer also supports *compact* operation: the list of local experts may be
shorter than the number of original experts the gate routes over, with an
:class:`~repro.models.rerouting.ExpertRemap` translating original ids to local
slots (tuning experts preserved 1:1, non-tuning experts collapsed onto merged
experts).

Dispatch modes
--------------
``dispatch="batched"`` (the default) stacks the weights of the experts that
received tokens into ``(num_active, d_model, d_ff)`` arrays and executes every
routed token in one fused grouped-GEMM graph node: token-slot assignments are
argsorted by expert slot, placed (unique destinations — assignment, never
scatter-add) into a ``(num_active, max_tokens, d_model)`` padded workspace,
pushed through the SwiGLU GEMMs (gate+up concatenated into a single grouped
matmul), gathered back per assignment and combined over the top-k axis with a
one-pass einsum; the hand-written backward reuses persistent per-layer
scratch buffers.  The autograd graph has O(1) nodes per layer instead of
O(num_experts), and no per-expert full-size temporaries are created.
(:func:`~repro.autograd.index_add` / ``take_rows`` / ``place_rows`` /
``expand_rows`` are the composable building blocks of this layout, kept as
public autograd ops.)

``dispatch="sparse"`` is the zero-skipping variant of the batched path for
ternary/low-bit-quantized experts: after structured sparsification
(:func:`~repro.models.experts.sparsify_expert` zeroes whole ``d_ff`` channels,
and per-row quantization preserves those zeros exactly), each forward derives
the per-expert *live-channel* index lists and stacks only those rows into the
grouped-GEMM operands, so the whole SwiGLU chain runs at the live width
instead of ``d_ff``.  Skipped channels have both their gate and up rows
all-zero, which makes their output contribution and every parameter gradient
exactly zero in the dense path — so skipping them is equivalence-preserving,
and the test suite enforces sparse == batched to the same tolerance as
batched == loop.  When the mean live density exceeds
:data:`SPARSE_DENSITY_THRESHOLD` the layer falls back to the dense stacking
(the compaction would cost more than it saves).

``dispatch="loop"`` keeps the legacy per-expert Python loop (one gather, FFN
call and ``scatter_rows`` per expert).  Both paths are numerically equivalent
— bit-identical combine ordering by construction — and the equivalence is
test-enforced; the layer silently falls back to the loop when the expert list
cannot be batched (e.g. LoRA-wrapped or shape-heterogeneous experts).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Module, ModuleList, Tensor, is_grad_enabled, scatter_rows
from .experts import ExpertFFN, sparsify_expert, stack_expert_weights
from .gating import GatingNetwork, RoutingRecord
from .rerouting import ExpertRemap

#: dispatch strategies understood by :class:`MoELayer`
DISPATCH_MODES = ("batched", "sparse", "loop")

#: mean live-channel density above which ``dispatch="sparse"`` falls back to
#: the dense batched stacking (compaction overhead would outweigh the savings)
SPARSE_DENSITY_THRESHOLD = 0.5

#: activations the batched dispatch path can evaluate on stacked tensors
_BATCHABLE_ACTIVATIONS = ("silu", "gelu", "relu")


class MoELayer(Module):
    """Mixture-of-Experts feed-forward layer with top-k routing."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        num_experts: int,
        top_k: int,
        num_shared_experts: int = 0,
        activation: str = "silu",
        gate_noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        dispatch: str = "batched",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"unknown dispatch mode {dispatch!r}; supported: {DISPATCH_MODES}")
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_original_experts = num_experts
        self.top_k = top_k
        self.activation = activation
        #: expert execution strategy: ``"batched"``, ``"sparse"`` or ``"loop"``
        self.dispatch = dispatch
        self.gate = GatingNetwork(d_model, num_experts, top_k, noise_std=gate_noise_std, rng=rng)
        self.experts = ModuleList([
            ExpertFFN(d_model, d_ff, activation=activation, rng=rng) for _ in range(num_experts)
        ])
        self.shared_experts = ModuleList([
            ExpertFFN(d_model, d_ff, activation=activation, rng=rng) for _ in range(num_shared_experts)
        ])
        self.remap = ExpertRemap.identity(num_experts)
        #: routing statistics of the most recent forward pass
        self.last_routing: Optional[RoutingRecord] = None
        #: when True, routing statistics are accumulated across forward passes
        self.accumulate_routing: bool = False
        self._accumulated: Optional[RoutingRecord] = None
        # Persistent backward-pass scratch buffers of the fused batched
        # dispatch (backward-internal temporaries only — never tensors a
        # graph node retains), reused across steps to avoid re-faulting
        # freshly-mmapped pages every iteration.
        self._bwd_scratch: Dict[str, np.ndarray] = {}

    # ---------------------------------------------------------------- config
    @property
    def num_local_experts(self) -> int:
        """Number of expert modules actually held by this layer."""
        return len(self.experts)

    def set_compact_experts(self, experts: Sequence[ExpertFFN], remap: ExpertRemap) -> None:
        """Replace the local expert list with a compact set plus a remap.

        Used by Flux clients (tuning experts + merged non-tuning experts) and
        by the FMES baseline (selected experts only, others re-routed).
        """
        if remap.num_original != self.num_original_experts:
            raise ValueError("remap must cover the original expert count")
        max_slot = int(remap.table.max())
        if max_slot >= len(experts):
            raise ValueError(
                f"remap references slot {max_slot} but only {len(experts)} experts provided"
            )
        self.experts = ModuleList(list(experts))
        self.remap = remap

    def reset_routing_accumulator(self) -> None:
        self._accumulated = None

    def accumulated_routing(self) -> Optional[RoutingRecord]:
        return self._accumulated

    # --------------------------------------------------------------- forward
    def forward(
        self,
        x: Tensor,
        token_attention: Optional[np.ndarray] = None,
        sample_ids: Optional[np.ndarray] = None,
        token_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Route and transform a batch of token representations.

        Parameters
        ----------
        x:
            ``(batch, seq, d_model)`` hidden states.
        token_attention:
            Optional ``(batch, seq)`` attention-received scores from the
            attention sub-layer (profiling signal for merging).
        sample_ids:
            Optional ``(batch,)`` integer sample identifiers; used to record
            which samples touch which expert (the paper's :math:`D^e_i`).
        token_mask:
            Optional ``(batch, seq)`` boolean mask; padding tokens are still
            transformed (cheaply) but excluded from routing statistics.
        """
        batch, seq_len, d_model = x.shape
        num_tokens = batch * seq_len
        flat = x.reshape(num_tokens, d_model)

        top_idx, top_weights, _ = self.gate(flat, with_probs=False)
        if self.remap.is_identity():
            local_idx = top_idx
        else:
            local_idx = self.remap.apply(top_idx)

        if self.dispatch in ("batched", "sparse") and self._can_batch():
            combined = self._combine_batched(flat, local_idx, top_weights, num_tokens, d_model,
                                             sparse=self.dispatch == "sparse")
        else:
            combined = self._combine_loop(flat, local_idx, top_weights, num_tokens, d_model)

        self._record_routing(top_idx, top_weights, num_tokens, seq_len,
                             token_attention, sample_ids, token_mask)

        out = combined
        for shared in self.shared_experts:
            out = out + shared(flat)
        return out.reshape(batch, seq_len, d_model)

    # ------------------------------------------------------ expert execution
    def _can_batch(self) -> bool:
        """Whether every local expert fits the grouped-GEMM fast path."""
        for expert in self.experts:
            if type(expert) is not ExpertFFN:
                return False
            if expert.activation not in _BATCHABLE_ACTIVATIONS:
                return False
            if expert.w_gate.weight.shape != (expert.d_ff, expert.d_model):
                return False
            if (expert.d_model, expert.d_ff) != (self.experts[0].d_model, self.experts[0].d_ff):
                return False
        return True

    def _combine_loop(self, flat: Tensor, local_idx: np.ndarray, top_weights: Tensor,
                      num_tokens: int, d_model: int) -> Tensor:
        """Legacy per-expert dispatch: one gather/FFN/scatter per active expert."""
        combined = Tensor(np.zeros((num_tokens, d_model), dtype=flat.data.dtype))
        for slot in np.unique(local_idx):
            slot_mask = local_idx == slot  # (num_tokens, top_k)
            token_rows, k_positions = np.nonzero(slot_mask)
            if token_rows.size == 0:
                continue
            expert = self.experts[int(slot)]
            expert_in = flat[token_rows]
            expert_out = expert(expert_in)
            weights = top_weights[token_rows, k_positions].reshape(-1, 1)
            weighted = expert_out * weights
            combined = combined + scatter_rows(weighted, token_rows, num_tokens)
        return combined

    def sparsify_experts(self, density: float, bits: Optional[int] = None) -> float:
        """Structured-sparsify (and optionally fake-quantize) every local expert.

        Applies :func:`~repro.models.experts.sparsify_expert` to each expert
        in place; the surviving channels are exactly the rows the
        ``dispatch="sparse"`` fast path will execute.  Returns the realised
        mean live-channel density.
        """
        live = 0
        for expert in self.experts:
            live += sparsify_expert(expert, density, bits=bits).size
        return live / max(1, len(self.experts) * self.d_ff)

    def _sparse_plan(self, gate_params, up_params):
        """Per-expert live ``d_ff`` channels, or None when too dense to pay off.

        A channel is *live* when its gate row or up row holds any nonzero —
        the exact complement of the channels whose forward contribution and
        parameter gradients are all exactly zero in the dense path (both rows
        zero forces the activation input, the up projection, and therefore
        every downstream product to exact zeros).
        """
        channels = []
        live_total = 0
        for gate, up in zip(gate_params, up_params):
            live = np.flatnonzero((gate.data != 0.0).any(axis=1)
                                  | (up.data != 0.0).any(axis=1))
            channels.append(live)
            live_total += live.size
        d_ff = gate_params[0].data.shape[0]
        if live_total > SPARSE_DENSITY_THRESHOLD * len(channels) * d_ff:
            return None
        return channels, max(1, max(live.size for live in channels))

    def _combine_batched(self, flat: Tensor, local_idx: np.ndarray, top_weights: Tensor,
                         num_tokens: int, d_model: int, sparse: bool = False) -> Tensor:
        """Grouped dispatch: sort assignments by slot, run one batched GEMM chain.

        Only the experts that actually received tokens are stacked, so
        gradients reach exactly the same parameters as the loop path, and
        compute scales with the number of *active* experts.  Every
        gather/scatter uses unique indices (plain fancy indexing, no
        ``np.add.at``), and the top-k combine is a reshape + sum — the whole
        layer forward/backward is O(1) autograd nodes and C-speed throughout.

        With ``sparse=True`` the stacked operands are *compacted* to each
        expert's live ``d_ff`` channels (padded to the widest live count), so
        the three grouped GEMMs run at the live width; gradients for the
        skipped channels are emitted as exact zeros, matching the dense path.
        """
        top_k = local_idx.shape[1]
        num_assign = local_idx.size
        if num_assign == 0:
            return Tensor(np.zeros((num_tokens, d_model), dtype=flat.data.dtype))
        slots = local_idx.reshape(-1)                      # (A,) assignment → slot
        # Stable integer argsort uses radix internally; a uint8 key makes it a
        # single-pass radix instead of eight passes over int64.
        sort_key = slots.astype(np.uint8) if len(self.experts) <= 256 else slots
        order = np.argsort(sort_key, kind="stable")        # slot-major, token-minor
        sorted_slots = slots[order]

        # Segment boundaries from the already-sorted slots (no second sort).
        seg_start = np.concatenate(([0], np.flatnonzero(np.diff(sorted_slots)) + 1))
        active = sorted_slots[seg_start]
        seg_counts = np.diff(np.concatenate((seg_start, [num_assign])))
        num_active = int(active.size)
        max_count = int(seg_counts.max())
        seg_id = np.repeat(np.arange(num_active), seg_counts)
        padded_pos = seg_id * max_count + (np.arange(num_assign) - seg_start[seg_id])
        # destination of assignment a (original order) in the padded workspace;
        # a bijection, so placement/gather need no scatter-add
        dest = np.empty(num_assign, dtype=np.int64)
        dest[order] = padded_pos

        experts = [self.experts[int(slot)] for slot in active]
        activation = experts[0].activation
        d_ff = experts[0].d_ff
        gate_params = [e.w_gate.weight for e in experts]
        up_params = [e.w_up.weight for e in experts]
        down_params = [e.w_down.weight for e in experts]
        dtype = flat.data.dtype
        channels = None
        if sparse:
            plan = self._sparse_plan(gate_params, up_params)
            if plan is not None:
                channels, live_width = plan
        if channels is not None:
            # Compacted stacks: only each expert's live channels (zero-padded
            # to the widest live count) enter the grouped GEMMs, so the whole
            # SwiGLU chain runs at the live width instead of d_ff.
            d_ff = live_width
            w_gateup_sw = np.zeros((num_active, 2 * d_ff, d_model), dtype=dtype)
            w_down_sw = np.zeros((num_active, d_model, d_ff), dtype=dtype)
            for j, live in enumerate(channels):
                w_gateup_sw[j, :live.size] = gate_params[j].data[live]
                w_gateup_sw[j, d_ff:d_ff + live.size] = up_params[j].data[live]
                w_down_sw[j, :, :live.size] = down_params[j].data[:, live]
            w_gateup_t = w_gateup_sw.swapaxes(1, 2)                  # (E_a, d, 2f_live)
            w_down_t = w_down_sw.swapaxes(1, 2)                      # (E_a, f_live, d)
        else:
            # Stacked (E_a, d_model, *) operand views of the expert weights;
            # gate and up projections are concatenated along d_ff so the input
            # side of the SwiGLU runs as ONE grouped GEMM instead of two.
            w_gateup_t = np.concatenate(
                [np.stack([p.data for p in gate_params]),
                 np.stack([p.data for p in up_params])], axis=1).swapaxes(1, 2)  # (E_a, d, 2f)
            w_down_t = np.stack([p.data for p in down_params]).swapaxes(1, 2)
        w_gate_t = w_gateup_t[:, :, :d_ff]
        w_up_t = w_gateup_t[:, :, d_ff:]
        padded_rows = num_active * max_count

        # ---- fused forward: pad → grouped SwiGLU GEMMs → gather → combine
        # The padded workspace is transient (consumed by the GEMMs within
        # this call) and cheap to rebuild, so it lives in reusable scratch
        # and the backward pass recomputes it instead of retaining it.
        def build_padded(buffer_name: str, zero_padding: bool) -> np.ndarray:
            padded = self._scratch(buffer_name, (padded_rows, d_model), dtype)
            if zero_padding:
                padded.fill(0.0)
            for column in range(top_k):
                padded[dest[column::top_k]] = flat.data
            return padded.reshape(num_active, max_count, d_model)

        # forward padding rows must be zero (they flow through the
        # activations); the backward rebuild may leave them stale because
        # every padding row meets an exactly-zero gradient row in the
        # weight-gradient GEMM
        padded3 = build_padded("fwd_padded", zero_padding=True)
        gate_up = padded3 @ w_gateup_t                                      # (E_a, C, 2f)
        gate_pre = gate_up[:, :, :d_ff]
        up = gate_up[:, :, d_ff:]
        if activation == "silu":
            # sig = 1 / (1 + exp(-gate_pre)), computed in one buffer
            sig = np.negative(gate_pre)
            np.exp(sig, out=sig)
            sig += 1.0
            np.reciprocal(sig, out=sig)
            act = gate_pre * sig
        elif activation == "gelu":
            c = np.sqrt(2.0 / np.pi)
            tanh_inner = np.tanh(c * (gate_pre + 0.044715 * gate_pre ** 3))
            act = 0.5 * gate_pre * (1.0 + tanh_inner)
        else:
            act = np.maximum(gate_pre, 0.0)
        hidden = act * up
        expert_out = hidden @ w_down_t                                      # (E_a, C, d)
        y = expert_out.reshape(padded_rows, d_model)[dest]                  # (A, d)
        w_col = top_weights.data.reshape(num_assign, 1)
        # single-pass weighted combine over the top-k axis
        out_data = np.einsum(
            "tkd,tk->td",
            y.reshape(num_tokens, top_k, d_model),
            top_weights.data.reshape(num_tokens, top_k))

        requires = is_grad_enabled() and (
            flat.requires_grad or top_weights.requires_grad
            or any(p.requires_grad for p in gate_params + up_params + down_params)
        )
        parents = (flat, top_weights) + tuple(gate_params + up_params + down_params)
        out = Tensor(out_data, requires_grad=requires, _prev=parents if requires else ())
        if not requires:
            return out

        # ---- fused backward: mirrors the op-by-op chain (same evaluation
        # order as the composed graph, so loop/batched stay bit-identical).
        # All large intermediates live in persistent per-layer scratch
        # buffers; a backward pass allocates almost nothing.
        def _backward() -> None:
            ffn_shape = gate_pre.shape                                      # (E_a, C, f)
            g_rep = self._scratch("g_rep", (num_assign, d_model), dtype)
            for column in range(top_k):
                g_rep[column::top_k] = out.grad
            if top_weights.requires_grad:
                top_weights._accumulate(
                    np.einsum("ad,ad->a", g_rep, y).reshape(num_tokens, top_k),
                    owned=True)
            np.multiply(g_rep, w_col, out=g_rep)                            # g_rep → g_y
            g_pad = self._scratch("g_pad", (padded_rows, d_model), dtype)
            g_pad.fill(0.0)
            g_pad[dest] = g_rep
            g_pad3 = g_pad.reshape(num_active, max_count, d_model)

            g_hidden = self._scratch("g_hidden", ffn_shape, dtype)
            np.matmul(g_pad3, np.swapaxes(w_down_t, 1, 2), out=g_hidden)
            if any(p.requires_grad for p in down_params):
                g_w = self._scratch("g_w_down", (num_active, ffn_shape[2], d_model), dtype)
                np.matmul(np.swapaxes(hidden, 1, 2), g_pad3, out=g_w)
                g_w_down = np.swapaxes(g_w, 1, 2)
                if channels is not None:
                    # scatter the compact gradient into the live columns; the
                    # dense path's gradient is exactly zero everywhere else
                    for param, grad, live in zip(down_params, g_w_down, channels):
                        full = np.zeros(param.data.shape, dtype=dtype)
                        full[:, live] = grad[:, :live.size]
                        param._accumulate(full, owned=True)
                else:
                    for param, grad in zip(down_params, g_w_down):
                        param._accumulate(grad)

            # [g_gate_pre | g_up] share one contiguous buffer so the weight
            # gradients of both projections come from a single grouped GEMM.
            g_gateup = self._scratch("g_gateup", gate_up.shape, dtype)
            g_act = g_gateup[:, :, :d_ff]
            g_up = g_gateup[:, :, d_ff:]
            np.multiply(g_hidden, up, out=g_act)
            np.multiply(g_hidden, act, out=g_up)
            scratch = self._scratch("d_act", ffn_shape, dtype)
            if activation == "silu":
                # d_act = sig * (1 + gate_pre * (1 - sig))
                np.subtract(1.0, sig, out=scratch)
                np.multiply(gate_pre, scratch, out=scratch)
                scratch += 1.0
                np.multiply(sig, scratch, out=scratch)
                np.multiply(g_act, scratch, out=g_act)                      # g_act → g_gate_pre
            elif activation == "gelu":
                d_inner = c * (1.0 + 3 * 0.044715 * gate_pre ** 2)
                np.multiply(
                    g_act,
                    0.5 * (1.0 + tanh_inner)
                    + 0.5 * gate_pre * (1.0 - tanh_inner ** 2) * d_inner,
                    out=g_act)
            else:
                np.multiply(g_act, gate_pre > 0, out=g_act)
            g_gate_pre = g_act
            if any(p.requires_grad for p in gate_params + up_params):
                padded3_b = build_padded("bwd_padded", zero_padding=False)
                g_w = self._scratch("g_w_gateup", (num_active, d_model, 2 * d_ff), dtype)
                np.matmul(np.swapaxes(padded3_b, 1, 2), g_gateup, out=g_w)
                g_w_sw = np.swapaxes(g_w, 1, 2)                             # (E_a, 2f, d)
                if channels is not None:
                    for j, live in enumerate(channels):
                        g_full = np.zeros(gate_params[j].data.shape, dtype=dtype)
                        g_full[live] = g_w_sw[j, :live.size]
                        gate_params[j]._accumulate(g_full, owned=True)
                        u_full = np.zeros(up_params[j].data.shape, dtype=dtype)
                        u_full[live] = g_w_sw[j, d_ff:d_ff + live.size]
                        up_params[j]._accumulate(u_full, owned=True)
                else:
                    for j in range(num_active):
                        gate_params[j]._accumulate(g_w_sw[j, :d_ff])
                        up_params[j]._accumulate(g_w_sw[j, d_ff:])
            if flat.requires_grad:
                # Two GEMMs (not one over the concatenated 2f axis): keeping
                # the gate/up contributions as separate dot products + add
                # preserves the loop path's summation grouping bit-for-bit.
                g_padded = self._scratch("g_padded", padded3.shape, dtype)
                g_second = self._scratch("g_padded2", padded3.shape, dtype)
                np.matmul(g_gate_pre, np.swapaxes(w_gate_t, 1, 2), out=g_padded)
                np.matmul(g_up, np.swapaxes(w_up_t, 1, 2), out=g_second)
                g_padded += g_second
                g_x_rep = g_padded.reshape(padded_rows, d_model)[dest]
                flat._accumulate(
                    g_x_rep.reshape(num_tokens, top_k, d_model).sum(axis=1), owned=True)

        out._backward = _backward
        return out

    def __getstate__(self):
        # Scratch workspaces are activation-sized and purely transient; keep
        # them out of pickles (e.g. process-pool fine-tuner snapshots).
        state = self.__dict__.copy()
        state["_bwd_scratch"] = {}
        return state

    def _scratch(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Persistent backward scratch buffer, reallocated only on shape change.

        Allocated zeroed: consumers that skip re-zeroing rely on stale
        contents being finite (never NaN/Inf heap garbage).
        """
        buf = self._bwd_scratch.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._bwd_scratch[name] = buf
        return buf

    # ------------------------------------------------------ routing statistics
    def _record_routing(self, top_idx: np.ndarray, top_weights: Tensor,
                        num_tokens: int, seq_len: int,
                        token_attention: Optional[np.ndarray],
                        sample_ids: Optional[np.ndarray],
                        token_mask: Optional[np.ndarray]) -> None:
        """Vectorised routing bookkeeping (kept in original-expert coordinates)."""
        record = RoutingRecord.empty(self.num_original_experts)
        if token_mask is None:
            flat_mask = None
            valid_idx = top_idx                            # (T, top_k)
            valid_weights = top_weights.data
            total_tokens = num_tokens
        else:
            flat_mask = np.asarray(token_mask, dtype=bool).reshape(num_tokens)
            valid_idx = top_idx[flat_mask]                 # (V, top_k)
            valid_weights = top_weights.data[flat_mask]
            total_tokens = int(flat_mask.sum())

        if valid_idx.size:
            minlength = self.num_original_experts
            flat_ids = valid_idx.reshape(-1)
            record.token_counts += np.bincount(flat_ids, minlength=minlength)
            if token_attention is not None:
                flat_attention = np.asarray(token_attention, dtype=np.float64).reshape(num_tokens)
                if flat_mask is not None:
                    flat_attention = flat_attention[flat_mask]
                record.attention_sums += np.bincount(
                    flat_ids, weights=np.repeat(flat_attention, self.top_k), minlength=minlength)
            record.gate_weight_sums += np.bincount(
                flat_ids,
                weights=valid_weights.reshape(-1).astype(np.float64, copy=False),
                minlength=minlength,
            )
            if sample_ids is not None:
                flat_samples = np.repeat(np.asarray(sample_ids, dtype=np.int64), seq_len)
                if flat_mask is not None:
                    flat_samples = flat_samples[flat_mask]
                samples = np.repeat(flat_samples, self.top_k)
                if samples.size and samples.min() >= 0:
                    # Encode (expert, sample) pairs as scalars: deduplicating
                    # 1-D keys is much cheaper than np.unique(..., axis=0) on
                    # pair rows, and when the key space is small a bincount
                    # presence scan beats the hash/sort entirely.
                    modulus = int(samples.max()) + 1
                    keys = flat_ids * modulus
                    keys += samples
                    key_space = modulus * self.num_original_experts
                    if key_space <= 4 * keys.size + 1024:
                        unique_keys = np.flatnonzero(np.bincount(keys, minlength=key_space))
                    else:
                        unique_keys = np.unique(keys)
                    for key in unique_keys:
                        record.sample_ids[int(key) // modulus].add(int(key) % modulus)
                else:
                    for expert_id, sample in zip(flat_ids, samples):
                        record.sample_ids[int(expert_id)].add(int(sample))
        record.total_tokens = total_tokens
        self.last_routing = record
        if self.accumulate_routing:
            if self._accumulated is None:
                self._accumulated = RoutingRecord.empty(self.num_original_experts)
            self._accumulated.merge(record)

    # ------------------------------------------------------------- inspection
    def stacked_expert_weights(self) -> Dict[str, np.ndarray]:
        """Stack every local expert's matrices into ``(num_experts, ...)`` arrays.

        This is the raw-data (no-gradient) counterpart of the batched dispatch
        tensors, consumed by clustering / merging / quantization code that
        previously re-stacked flattened weight vectors expert by expert.
        """
        return stack_expert_weights(list(self.experts))

    def expert_weight_matrix(self) -> np.ndarray:
        """Stack every local expert's flattened weights into a 2-D matrix.

        Rows keep the :meth:`ExpertFFN.weight_vector` layout
        ``[w_gate, w_up, w_down]`` but are built from the stacked weight
        arrays in three reshapes instead of per-expert flatten+concatenate.
        """
        if not all(type(expert) is ExpertFFN for expert in self.experts):
            return np.stack([expert.weight_vector() for expert in self.experts])
        stacked = self.stacked_expert_weights()
        count = len(self.experts)
        return np.concatenate(
            [stacked[key].reshape(count, -1) for key in ("w_gate", "w_up", "w_down")], axis=1
        )
