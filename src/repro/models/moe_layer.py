"""The sparsely-activated MoE feed-forward layer.

Each token is routed by a :class:`~repro.models.gating.GatingNetwork` to its
top-k experts; the layer dispatches tokens to the selected experts, combines
their outputs with the (differentiable) gate weights, and records routing
statistics used by Flux's profiling and merging modules.

The layer also supports *compact* operation: the list of local experts may be
shorter than the number of original experts the gate routes over, with an
:class:`~repro.models.rerouting.ExpertRemap` translating original ids to local
slots (tuning experts preserved 1:1, non-tuning experts collapsed onto merged
experts).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Module, ModuleList, Tensor, scatter_rows
from .experts import ExpertFFN
from .gating import GatingNetwork, RoutingRecord
from .rerouting import ExpertRemap


class MoELayer(Module):
    """Mixture-of-Experts feed-forward layer with top-k routing."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        num_experts: int,
        top_k: int,
        num_shared_experts: int = 0,
        activation: str = "silu",
        gate_noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_original_experts = num_experts
        self.top_k = top_k
        self.activation = activation
        self.gate = GatingNetwork(d_model, num_experts, top_k, noise_std=gate_noise_std, rng=rng)
        self.experts = ModuleList([
            ExpertFFN(d_model, d_ff, activation=activation, rng=rng) for _ in range(num_experts)
        ])
        self.shared_experts = ModuleList([
            ExpertFFN(d_model, d_ff, activation=activation, rng=rng) for _ in range(num_shared_experts)
        ])
        self.remap = ExpertRemap.identity(num_experts)
        #: routing statistics of the most recent forward pass
        self.last_routing: Optional[RoutingRecord] = None
        #: when True, routing statistics are accumulated across forward passes
        self.accumulate_routing: bool = False
        self._accumulated: Optional[RoutingRecord] = None

    # ---------------------------------------------------------------- config
    @property
    def num_local_experts(self) -> int:
        """Number of expert modules actually held by this layer."""
        return len(self.experts)

    def set_compact_experts(self, experts: Sequence[ExpertFFN], remap: ExpertRemap) -> None:
        """Replace the local expert list with a compact set plus a remap.

        Used by Flux clients (tuning experts + merged non-tuning experts) and
        by the FMES baseline (selected experts only, others re-routed).
        """
        if remap.num_original != self.num_original_experts:
            raise ValueError("remap must cover the original expert count")
        max_slot = int(remap.table.max())
        if max_slot >= len(experts):
            raise ValueError(
                f"remap references slot {max_slot} but only {len(experts)} experts provided"
            )
        self.experts = ModuleList(list(experts))
        self.remap = remap

    def reset_routing_accumulator(self) -> None:
        self._accumulated = None

    def accumulated_routing(self) -> Optional[RoutingRecord]:
        return self._accumulated

    # --------------------------------------------------------------- forward
    def forward(
        self,
        x: Tensor,
        token_attention: Optional[np.ndarray] = None,
        sample_ids: Optional[np.ndarray] = None,
        token_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Route and transform a batch of token representations.

        Parameters
        ----------
        x:
            ``(batch, seq, d_model)`` hidden states.
        token_attention:
            Optional ``(batch, seq)`` attention-received scores from the
            attention sub-layer (profiling signal for merging).
        sample_ids:
            Optional ``(batch,)`` integer sample identifiers; used to record
            which samples touch which expert (the paper's :math:`D^e_i`).
        token_mask:
            Optional ``(batch, seq)`` boolean mask; padding tokens are still
            transformed (cheaply) but excluded from routing statistics.
        """
        batch, seq_len, d_model = x.shape
        num_tokens = batch * seq_len
        flat = x.reshape(num_tokens, d_model)

        top_idx, top_weights, probs = self.gate(flat)
        local_idx = self.remap.apply(top_idx)

        record = RoutingRecord.empty(self.num_original_experts)
        if token_mask is None:
            flat_mask = np.ones(num_tokens, dtype=bool)
        else:
            flat_mask = np.asarray(token_mask, dtype=bool).reshape(num_tokens)
        if token_attention is None:
            flat_attention = np.zeros(num_tokens, dtype=np.float64)
        else:
            flat_attention = np.asarray(token_attention, dtype=np.float64).reshape(num_tokens)
        if sample_ids is not None:
            flat_samples = np.repeat(np.asarray(sample_ids, dtype=np.int64), seq_len)
        else:
            flat_samples = None

        combined = Tensor(np.zeros((num_tokens, d_model)))
        for slot in np.unique(local_idx):
            slot_mask = local_idx == slot  # (num_tokens, top_k)
            token_rows, k_positions = np.nonzero(slot_mask)
            if token_rows.size == 0:
                continue
            expert = self.experts[int(slot)]
            expert_in = flat[token_rows]
            expert_out = expert(expert_in)
            weights = top_weights[token_rows, k_positions].reshape(-1, 1)
            weighted = expert_out * weights
            combined = combined + scatter_rows(weighted, token_rows, num_tokens)

        # Routing statistics are kept in original-expert coordinates.
        for k in range(self.top_k):
            idx_k = top_idx[:, k]
            valid = flat_mask
            np.add.at(record.token_counts, idx_k[valid], 1)
            np.add.at(record.attention_sums, idx_k[valid], flat_attention[valid])
            np.add.at(record.gate_weight_sums, idx_k[valid], top_weights.data[valid, k])
            if flat_samples is not None:
                for expert_id, sample in zip(idx_k[valid], flat_samples[valid]):
                    record.sample_ids[int(expert_id)].add(int(sample))
        record.total_tokens = int(flat_mask.sum())
        self.last_routing = record
        if self.accumulate_routing:
            if self._accumulated is None:
                self._accumulated = RoutingRecord.empty(self.num_original_experts)
            self._accumulated.merge(record)

        out = combined
        for shared in self.shared_experts:
            out = out + shared(flat)
        return out.reshape(batch, seq_len, d_model)

    # ------------------------------------------------------------- inspection
    def expert_weight_matrix(self) -> np.ndarray:
        """Stack every local expert's flattened weights into a 2-D matrix."""
        return np.stack([expert.weight_vector() for expert in self.experts])
