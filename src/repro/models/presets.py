"""Model presets: scaled-down trainable configs and full-scale descriptors.

Two kinds of objects live here:

* ``*_mini`` configurations — small MoE transformers that preserve the
  architectural properties Flux exploits (many experts per layer, top-k
  routing, expert-dominated parameter counts, optional shared experts) while
  being trainable on CPU within seconds.
* :data:`ARCHITECTURE_DESCRIPTORS` — analytical descriptions of the real
  LLaMA-MoE / DeepSeek-MoE / Mixtral / Qwen2-MoE models used to regenerate the
  paper's Table 1 and to parameterise the device cost model (per-expert memory
  and FLOPs at full scale).
"""

from __future__ import annotations

from typing import Dict, List

from .config import ArchitectureDescriptor, MoEModelConfig

#: Full-scale MoE LLMs listed in the paper's Table 1.  Parameter counts and
#: on-disk sizes reproduce the table rows (sizes assume 2-byte parameters).
ARCHITECTURE_DESCRIPTORS: Dict[str, ArchitectureDescriptor] = {
    "llama-moe": ArchitectureDescriptor("LLaMA-MoE", n_layers=32, experts_per_layer=16,
                                        total_params=6.7e9),
    "deepseek-moe": ArchitectureDescriptor("Deepseek-MoE", n_layers=28, experts_per_layer=64,
                                           total_params=16.4e9),
    "deepseek-v2-lite": ArchitectureDescriptor("Deepseek-v2-lite", n_layers=27, experts_per_layer=64,
                                               total_params=15.7e9),
    "mixtral-8x7b": ArchitectureDescriptor("Mixtral-8x7B", n_layers=64, experts_per_layer=8,
                                           total_params=46.7e9),
    "qwen2-moe": ArchitectureDescriptor("Qwen2-MoE", n_layers=28, experts_per_layer=64,
                                        total_params=57.4e9),
}


def llama_moe_mini(vocab_size: int = 256, seed: int = 0, n_layers: int = 4,
                   num_experts: int = 8, d_model: int = 32,
                   dtype: str = "float64", dispatch: str = "batched") -> MoEModelConfig:
    """Scaled-down LLaMA-MoE: uniform experts, top-2 routing, no shared experts.

    The real LLaMA-MoE uses 32 layers x 16 experts with top-4 routing; the mini
    version keeps the expert-heavy parameter balance and skewed routing while
    staying CPU-trainable.
    """
    return MoEModelConfig(
        name="llama-moe-mini",
        vocab_size=vocab_size,
        d_model=d_model,
        n_layers=n_layers,
        n_heads=4,
        d_ff=d_model * 2,
        num_experts=num_experts,
        top_k=2,
        num_shared_experts=0,
        max_seq_len=64,
        tie_embeddings=True,
        activation="silu",
        seed=seed,
        dtype=dtype,
        dispatch=dispatch,
    )


def deepseek_moe_mini(vocab_size: int = 256, seed: int = 0, n_layers: int = 4,
                      num_experts: int = 16, d_model: int = 32,
                      dtype: str = "float64", dispatch: str = "batched") -> MoEModelConfig:
    """Scaled-down DeepSeek-MoE: fine-grained experts plus one shared expert.

    DeepSeek-MoE's signature is many small experts (64 per layer) plus shared
    experts every token visits; the mini version keeps both properties.
    """
    return MoEModelConfig(
        name="deepseek-moe-mini",
        vocab_size=vocab_size,
        d_model=d_model,
        n_layers=n_layers,
        n_heads=4,
        d_ff=d_model,
        num_experts=num_experts,
        top_k=2,
        num_shared_experts=1,
        max_seq_len=64,
        tie_embeddings=True,
        activation="silu",
        seed=seed,
        dtype=dtype,
        dispatch=dispatch,
    )


def tiny_moe(vocab_size: int = 64, seed: int = 0,
             dtype: str = "float64", dispatch: str = "batched") -> MoEModelConfig:
    """Very small config used by unit tests and property-based tests."""
    return MoEModelConfig(
        name="tiny-moe",
        vocab_size=vocab_size,
        d_model=16,
        n_layers=2,
        n_heads=2,
        d_ff=16,
        num_experts=4,
        top_k=2,
        max_seq_len=32,
        seed=seed,
        dtype=dtype,
        dispatch=dispatch,
    )


PRESETS = {
    "llama-moe-mini": llama_moe_mini,
    "deepseek-moe-mini": deepseek_moe_mini,
    "tiny-moe": tiny_moe,
}


def get_preset(name: str, **kwargs) -> MoEModelConfig:
    """Look up a preset configuration by name."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset '{name}'; available: {sorted(PRESETS)}")
    return PRESETS[name](**kwargs)


def table1_rows() -> List[dict]:
    """Rows of the paper's Table 1 (model / layers / experts / params / size)."""
    return [descriptor.row() for descriptor in ARCHITECTURE_DESCRIPTORS.values()]
