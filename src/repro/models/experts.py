"""Expert feed-forward networks used inside MoE layers."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..autograd import Linear, Module, Tensor

#: per-expert weight matrices in stacking order
EXPERT_WEIGHT_KEYS = ("w_gate", "w_up", "w_down")


def stack_expert_weights(experts: Sequence["ExpertFFN"]) -> Dict[str, np.ndarray]:
    """Stack each weight matrix of ``experts`` into one ``(num_experts, ...)`` array.

    The returned arrays are the canonical "stacked" representation used by the
    batched MoE dispatch path, clustering features and weighted merging —
    consumers read slices of these arrays instead of re-stacking flattened
    per-expert vectors on every call.
    """
    experts = list(experts)
    if not experts:
        raise ValueError("cannot stack an empty expert list")
    return {
        key: np.stack([getattr(expert, key).weight.data for expert in experts])
        for key in EXPERT_WEIGHT_KEYS
    }


def sparsify_expert(expert: "ExpertFFN", density: float,
                    bits: Optional[int] = None) -> np.ndarray:
    """Structured channel sparsification (+ optional fake low-bit quantization).

    Scores every ``d_ff`` channel by the squared L2 mass of its gate row, up
    row and down column, zeroes the lowest-scoring ``1 - density`` fraction
    across all three matrices **in place**, and — when ``bits`` is given —
    round-trips each matrix through symmetric per-row quantization
    (:func:`repro.quantization.quantize_array`).

    The zeroed channels are *exactly* dead afterwards: zero entries always
    quantize to code 0 (so quantization preserves them), a channel whose gate
    row and up row are both zero contributes exactly zero to the layer output,
    and every gradient it receives is exactly zero — which is what lets the
    ``dispatch="sparse"`` fast path skip those rows bit-identically, and keeps
    them dead under further SGD/Adam fine-tuning.

    Returns the (sorted) indices of the surviving channels.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    gate = expert.w_gate.weight.data
    up = expert.w_up.weight.data
    down = expert.w_down.weight.data
    d_ff = gate.shape[0]
    keep = max(1, int(np.ceil(density * d_ff)))
    if keep < d_ff:
        scores = (np.square(gate).sum(axis=1) + np.square(up).sum(axis=1)
                  + np.square(down).sum(axis=0))
        kept = np.sort(np.argpartition(scores, -keep)[-keep:])
        dead = np.setdiff1d(np.arange(d_ff), kept, assume_unique=True)
        gate[dead] = 0.0
        up[dead] = 0.0
        down[:, dead] = 0.0
    else:
        kept = np.arange(d_ff)
    if bits is not None:
        from ..quantization import quantize_array  # deferred: package cycle
        for matrix in (gate, up, down):
            matrix[...] = quantize_array(matrix, bits).dequantize()
    return kept


class ExpertFFN(Module):
    """A SwiGLU feed-forward expert (LLaMA / DeepSeek style).

    ``output = w_down( silu(w_gate(x)) * w_up(x) )``

    Each expert owns three weight matrices; the paper's observation that
    experts dominate the parameter count of MoE LLMs follows directly from
    replicating this block per expert.
    """

    def __init__(self, d_model: int, d_ff: int, activation: str = "silu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.activation = activation
        rng = rng or np.random.default_rng()
        self.w_gate = Linear(d_model, d_ff, bias=False, rng=rng)
        self.w_up = Linear(d_model, d_ff, bias=False, rng=rng)
        self.w_down = Linear(d_ff, d_model, bias=False, rng=rng)

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "silu":
            return x.silu()
        if self.activation == "gelu":
            return x.gelu()
        if self.activation == "relu":
            return x.relu()
        raise ValueError(f"unknown activation: {self.activation}")

    def forward(self, x: Tensor) -> Tensor:
        return self.w_down(self._activate(self.w_gate(x)) * self.w_up(x))

    # ------------------------------------------------------------- utilities
    def weight_vector(self) -> np.ndarray:
        """Flatten all expert weights into one vector (used for clustering)."""
        return np.concatenate([
            self.w_gate.weight.data.reshape(-1),
            self.w_up.weight.data.reshape(-1),
            self.w_down.weight.data.reshape(-1),
        ])

    def load_weight_vector(self, vector: np.ndarray) -> None:
        """Inverse of :meth:`weight_vector`."""
        sizes = [self.w_gate.weight.data.size, self.w_up.weight.data.size, self.w_down.weight.data.size]
        if vector.size != sum(sizes):
            raise ValueError("weight vector size mismatch")
        gate, up, down = np.split(vector, np.cumsum(sizes)[:-1])
        self.w_gate.weight.data[...] = gate.reshape(self.w_gate.weight.data.shape)
        self.w_up.weight.data[...] = up.reshape(self.w_up.weight.data.shape)
        self.w_down.weight.data[...] = down.reshape(self.w_down.weight.data.shape)

    def state(self) -> Dict[str, np.ndarray]:
        """Copy of the expert's weights keyed by matrix name."""
        return {
            "w_gate": self.w_gate.weight.data.copy(),
            "w_up": self.w_up.weight.data.copy(),
            "w_down": self.w_down.weight.data.copy(),
        }

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        self.w_gate.weight.data[...] = state["w_gate"]
        self.w_up.weight.data[...] = state["w_up"]
        self.w_down.weight.data[...] = state["w_down"]

    def num_parameters(self, trainable_only: bool = False) -> int:
        return super().num_parameters(trainable_only=trainable_only)

    @staticmethod
    def merge(experts, weights, d_model: int, d_ff: int, activation: str = "silu",
              stacked: Optional[Dict[str, np.ndarray]] = None) -> "ExpertFFN":
        """Create a new expert whose matrices are the weighted average of ``experts``.

        Parameters
        ----------
        experts:
            Sequence of :class:`ExpertFFN` to merge.
        weights:
            Non-negative merge coefficients, one per expert.  They are
            normalised internally so callers may pass raw importance scores
            (activation frequency × attention, per the paper's Eq. 2).
        stacked:
            Optional pre-stacked weight arrays (rows of
            :func:`stack_expert_weights` / slices of
            :meth:`~repro.models.moe_layer.MoELayer.stacked_expert_weights`)
            covering ``experts``; when given, the merge reads them directly
            instead of re-stacking per call.
        """
        experts = list(experts)
        weights = np.asarray(list(weights), dtype=np.float64)
        if len(experts) == 0:
            raise ValueError("cannot merge an empty expert set")
        if len(experts) != len(weights):
            raise ValueError("one merge weight per expert is required")
        if np.any(weights < 0):
            raise ValueError("merge weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(experts)) / len(experts)
        else:
            weights = weights / total
        if stacked is None:
            stacked = stack_expert_weights(experts)
        from ..autograd import default_dtype
        source_dtype = stacked["w_gate"].dtype
        if source_dtype.kind == "f":
            # inherit the members' dtype so merging never upcasts a float32
            # model's compacted experts back to float64
            with default_dtype(source_dtype):
                merged = ExpertFFN(d_model, d_ff, activation=activation)
        else:
            merged = ExpertFFN(d_model, d_ff, activation=activation)
        for key in EXPERT_WEIGHT_KEYS:
            if stacked[key].shape[0] != len(experts):
                raise ValueError("stacked weight arrays must cover exactly the merged experts")
            getattr(merged, key).weight.data[...] = np.tensordot(weights, stacked[key], axes=1)
        return merged
