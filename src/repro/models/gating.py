"""Top-k gating network and routing bookkeeping for MoE layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..autograd import Linear, Module, Tensor


@dataclass
class RoutingRecord:
    """Routing statistics captured during a single forward pass of one MoE layer.

    Attributes
    ----------
    num_experts:
        Number of *original* expert ids the gate routes over (routing is always
        expressed in original-expert coordinates even on a compact model).
    token_counts:
        How many token-slot assignments each original expert received.
    total_tokens:
        Number of (non-padding) tokens processed in the pass.
    attention_sums:
        Sum of attention-received scores of the tokens routed to each expert;
        divided by ``token_counts`` this yields the per-expert average
        attention used by importance-based merging.
    gate_weight_sums:
        Sum of gate probabilities assigned to each expert.
    sample_ids:
        Per-expert set of sample identifiers whose tokens touched the expert;
        this realises the paper's :math:`D^e_i` (the data relevant to expert e).
    """

    num_experts: int
    token_counts: np.ndarray
    total_tokens: int
    attention_sums: np.ndarray
    gate_weight_sums: np.ndarray
    sample_ids: List[Set[int]]

    @classmethod
    def empty(cls, num_experts: int) -> "RoutingRecord":
        return cls(
            num_experts=num_experts,
            token_counts=np.zeros(num_experts, dtype=np.int64),
            total_tokens=0,
            attention_sums=np.zeros(num_experts, dtype=np.float64),
            gate_weight_sums=np.zeros(num_experts, dtype=np.float64),
            sample_ids=[set() for _ in range(num_experts)],
        )

    def merge(self, other: "RoutingRecord") -> "RoutingRecord":
        """Accumulate another record (same layer) into this one."""
        if other.num_experts != self.num_experts:
            raise ValueError("cannot merge routing records with different expert counts")
        self.token_counts += other.token_counts
        self.total_tokens += other.total_tokens
        self.attention_sums += other.attention_sums
        self.gate_weight_sums += other.gate_weight_sums
        for mine, theirs in zip(self.sample_ids, other.sample_ids):
            mine.update(theirs)
        return self

    def activation_frequency(self) -> np.ndarray:
        """Fraction of token assignments that each expert received."""
        total = self.token_counts.sum()
        if total == 0:
            return np.zeros(self.num_experts)
        return self.token_counts / total

    def average_attention(self) -> np.ndarray:
        """Mean attention-received score of the tokens routed to each expert."""
        counts = np.maximum(self.token_counts, 1)
        return self.attention_sums / counts


class GatingNetwork(Module):
    """Linear router producing top-k expert assignments for each token.

    ``num_experts`` is the number of *original* experts; when a compact model
    merges experts the gate still scores the original ids and an external
    remap (see :mod:`repro.models.rerouting`) translates them to local slots.
    """

    def __init__(self, d_model: int, num_experts: int, top_k: int,
                 noise_std: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if top_k > num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        self.d_model = d_model
        self.num_experts = num_experts
        self.top_k = top_k
        self.noise_std = noise_std
        self._rng = rng or np.random.default_rng()
        self.proj = Linear(d_model, num_experts, bias=False, rng=self._rng)

    def forward(self, x: Tensor):
        """Route a batch of token embeddings.

        Parameters
        ----------
        x:
            ``(num_tokens, d_model)`` flattened token representations.

        Returns
        -------
        tuple ``(top_idx, top_weights, probs)`` where ``top_idx`` is an integer
        array ``(num_tokens, top_k)`` of original expert ids, ``top_weights`` a
        :class:`Tensor` of normalised gate weights with gradients attached, and
        ``probs`` the full softmax distribution (as data, for bookkeeping).
        """
        logits = self.proj(x)
        if self.noise_std > 0 and self.training:
            logits = logits + Tensor(self._rng.normal(0.0, self.noise_std, size=logits.shape))
        probs = logits.softmax(axis=-1)
        probs_data = probs.data
        top_idx = np.argsort(-probs_data, axis=-1)[:, : self.top_k]
        rows = np.arange(probs_data.shape[0])[:, None]
        top_probs = probs[rows, top_idx]
        norm = top_probs.sum(axis=-1, keepdims=True) + 1e-12
        top_weights = top_probs / norm
        return top_idx, top_weights, probs_data
