"""Top-k gating network and routing bookkeeping for MoE layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from ..autograd import Linear, Module, Tensor, is_grad_enabled


@dataclass
class RoutingRecord:
    """Routing statistics captured during a single forward pass of one MoE layer.

    Attributes
    ----------
    num_experts:
        Number of *original* expert ids the gate routes over (routing is always
        expressed in original-expert coordinates even on a compact model).
    token_counts:
        How many token-slot assignments each original expert received.
    total_tokens:
        Number of (non-padding) tokens processed in the pass.
    attention_sums:
        Sum of attention-received scores of the tokens routed to each expert;
        divided by ``token_counts`` this yields the per-expert average
        attention used by importance-based merging.
    gate_weight_sums:
        Sum of gate probabilities assigned to each expert.
    sample_ids:
        Per-expert set of sample identifiers whose tokens touched the expert;
        this realises the paper's :math:`D^e_i` (the data relevant to expert e).
    """

    num_experts: int
    token_counts: np.ndarray
    total_tokens: int
    attention_sums: np.ndarray
    gate_weight_sums: np.ndarray
    sample_ids: List[Set[int]]

    @classmethod
    def empty(cls, num_experts: int) -> "RoutingRecord":
        return cls(
            num_experts=num_experts,
            token_counts=np.zeros(num_experts, dtype=np.int64),
            total_tokens=0,
            attention_sums=np.zeros(num_experts, dtype=np.float64),
            gate_weight_sums=np.zeros(num_experts, dtype=np.float64),
            sample_ids=[set() for _ in range(num_experts)],
        )

    def merge(self, other: "RoutingRecord") -> "RoutingRecord":
        """Accumulate another record (same layer) into this one."""
        if other.num_experts != self.num_experts:
            raise ValueError("cannot merge routing records with different expert counts")
        self.token_counts += other.token_counts
        self.total_tokens += other.total_tokens
        self.attention_sums += other.attention_sums
        self.gate_weight_sums += other.gate_weight_sums
        for mine, theirs in zip(self.sample_ids, other.sample_ids):
            mine.update(theirs)
        return self

    def activation_frequency(self) -> np.ndarray:
        """Fraction of token assignments that each expert received."""
        total = self.token_counts.sum()
        if total == 0:
            return np.zeros(self.num_experts)
        return self.token_counts / total

    def average_attention(self) -> np.ndarray:
        """Mean attention-received score of the tokens routed to each expert."""
        counts = np.maximum(self.token_counts, 1)
        return self.attention_sums / counts


class GatingNetwork(Module):
    """Linear router producing top-k expert assignments for each token.

    ``num_experts`` is the number of *original* experts; when a compact model
    merges experts the gate still scores the original ids and an external
    remap (see :mod:`repro.models.rerouting`) translates them to local slots.
    """

    def __init__(self, d_model: int, num_experts: int, top_k: int,
                 noise_std: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if top_k > num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        self.d_model = d_model
        self.num_experts = num_experts
        self.top_k = top_k
        self.noise_std = noise_std
        self._rng = rng or np.random.default_rng()
        self.proj = Linear(d_model, num_experts, bias=False, rng=self._rng)

    def forward(self, x: Tensor, with_probs: bool = True):
        """Route a batch of token embeddings.

        Parameters
        ----------
        x:
            ``(num_tokens, d_model)`` flattened token representations.
        with_probs:
            When ``False`` the full softmax distribution is skipped (it is a
            bookkeeping signal the MoE layer itself never consumes) and the
            third return value is ``None``.

        Returns
        -------
        tuple ``(top_idx, top_weights, probs)`` where ``top_idx`` is an integer
        array ``(num_tokens, top_k)`` of original expert ids, ``top_weights`` a
        :class:`Tensor` of normalised gate weights with gradients attached, and
        ``probs`` the full softmax distribution (as data, for bookkeeping).
        """
        logits = self.proj(x)
        if self.noise_std > 0 and self.training:
            noise = self._rng.normal(0.0, self.noise_std, size=logits.shape)
            logits = logits + Tensor(noise.astype(logits.data.dtype, copy=False))
        logits_data = logits.data
        num_tokens = logits_data.shape[0]
        # softmax is strictly monotone per row, so ranking logits ranks probs
        if self.top_k == 1:
            top_idx = np.argmax(logits_data, axis=-1)[:, None]
        elif self.top_k == 2:
            # two argmax passes beat a full row sort for the common top-2 case
            rows = np.arange(num_tokens)
            first = np.argmax(logits_data, axis=-1)
            masked = logits_data.copy()
            masked[rows, first] = -np.inf
            second = np.argmax(masked, axis=-1)
            top_idx = np.stack([first, second], axis=1)
        else:
            top_idx = np.argsort(-logits_data, axis=-1)[:, : self.top_k]
        if with_probs:
            # Full distribution is a profiling signal only — graph-free.
            shifted = logits_data - logits_data.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            probs_data = exp / exp.sum(axis=-1, keepdims=True)
        else:
            probs_data = None
        # Renormalised top-k probabilities equal a softmax over the selected
        # logits (the partition function cancels), so the differentiable part
        # of the gate is a single fused (tokens, top_k) softmax node whose
        # backward scatter-assigns straight into the logits gradient ((token,
        # expert) pairs are unique — no scatter-add needed).
        flat_index = (np.arange(num_tokens)[:, None] * self.num_experts + top_idx).reshape(-1)
        top_logits = logits_data.reshape(-1)[flat_index].reshape(num_tokens, self.top_k)
        shifted_top = top_logits - top_logits.max(axis=-1, keepdims=True)
        np.exp(shifted_top, out=shifted_top)
        weights_data = shifted_top / shifted_top.sum(axis=-1, keepdims=True)
        requires = is_grad_enabled() and logits.requires_grad
        top_weights = Tensor(weights_data, requires_grad=requires,
                             _prev=(logits,) if requires else ())

        def _backward() -> None:
            grad_out = top_weights.grad
            dot = (grad_out * weights_data).sum(axis=-1, keepdims=True)
            d_top = weights_data * (grad_out - dot)
            grad = np.zeros_like(logits.data)
            grad.reshape(-1)[flat_index] = d_top.reshape(-1)
            logits._accumulate(grad, owned=True)

        top_weights._backward = _backward
        return top_idx, top_weights, probs_data
