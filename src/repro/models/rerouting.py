"""Gate re-routing: mapping original expert ids onto compact-model slots.

After Flux merges non-tuning experts, the gating network still scores the
*original* expert ids.  The :class:`ExpertRemap` translates each original id to
the local slot holding either the preserved tuning expert or the merged expert
that absorbed it (the paper's "Gate re-routing" implementation note, §7).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np


class ExpertRemap:
    """Mapping from original expert ids to compact-model expert slots."""

    def __init__(self, num_original: int, mapping: Optional[Dict[int, int]] = None) -> None:
        if num_original < 1:
            raise ValueError("num_original must be positive")
        self.num_original = num_original
        self._table = np.arange(num_original, dtype=np.int64)
        if mapping is not None:
            self.update(mapping)

    @classmethod
    def identity(cls, num_original: int) -> "ExpertRemap":
        """Remap that leaves every expert id unchanged (full model)."""
        return cls(num_original)

    def update(self, mapping: Dict[int, int]) -> None:
        """Point original expert ids at new local slots."""
        for original, slot in mapping.items():
            if not 0 <= original < self.num_original:
                raise KeyError(f"original expert id {original} out of range")
            if slot < 0:
                raise ValueError("slot indices must be non-negative")
            self._table[original] = slot

    def __getitem__(self, original_id: int) -> int:
        return int(self._table[original_id])

    def apply(self, expert_ids: np.ndarray) -> np.ndarray:
        """Vectorised remap of an array of original expert ids."""
        return self._table[np.asarray(expert_ids, dtype=np.int64)]

    @property
    def table(self) -> np.ndarray:
        """Copy of the full remap table."""
        return self._table.copy()

    def num_slots(self) -> int:
        """Number of distinct local slots referenced by the remap."""
        return int(len(np.unique(self._table)))

    def is_identity(self) -> bool:
        return bool(np.array_equal(self._table, np.arange(self.num_original)))

    @classmethod
    def from_clusters(cls, num_original: int, tuning_experts: Iterable[int],
                      clusters: List[List[int]]) -> tuple["ExpertRemap", List[int], List[List[int]]]:
        """Build a remap for a compact layer made of tuning experts plus merged clusters.

        Slots ``0 .. len(tuning)-1`` hold the preserved tuning experts (sorted
        by original id); slots after that hold one merged expert per cluster.

        Returns the remap, the ordered list of tuning expert ids (slot order)
        and the cluster list (slot order, offset by the number of tuning
        experts).
        """
        tuning = sorted(set(int(e) for e in tuning_experts))
        mapping: Dict[int, int] = {e: slot for slot, e in enumerate(tuning)}
        covered = set(tuning)
        for cluster_index, members in enumerate(clusters):
            slot = len(tuning) + cluster_index
            for member in members:
                member = int(member)
                if member in covered:
                    raise ValueError(f"expert {member} assigned to more than one slot")
                covered.add(member)
                mapping[member] = slot
        missing = set(range(num_original)) - covered
        if missing:
            raise ValueError(f"experts {sorted(missing)} not covered by tuning set or clusters")
        return cls(num_original, mapping), tuning, [list(map(int, c)) for c in clusters]
