"""Decoder-only MoE transformer language model.

This is the substrate standing in for LLaMA-MoE / DeepSeek-MoE: token + position
embeddings, a stack of pre-norm transformer blocks whose feed-forward part is a
:class:`~repro.models.moe_layer.MoELayer`, a final norm and an LM head.

The model exposes the hooks Flux needs:

* per-layer routing records (activation frequency, per-expert sample sets,
  attention scores of routed tokens);
* expert get/set/freeze accessors for expert-only fine-tuning, merging and
  aggregation;
* ``forward_hidden`` returning final token embeddings, used to measure the
  output error introduced by expert merging (cosine distance, paper §5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autograd import Dropout, Embedding, Linear, Module, ModuleList, RMSNorm, Tensor
from ..autograd import functional as F
from ..autograd import default_dtype, no_grad
from .attention import MultiHeadSelfAttention
from .config import MoEModelConfig
from .experts import ExpertFFN
from .gating import RoutingRecord
from .moe_layer import MoELayer


class MoETransformerBlock(Module):
    """Pre-norm transformer block: self-attention followed by an MoE FFN."""

    def __init__(self, config: MoEModelConfig, num_experts: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.attn_norm = RMSNorm(config.d_model, eps=config.rms_norm_eps)
        self.attn = MultiHeadSelfAttention(config.d_model, config.n_heads, rng=rng)
        self.moe_norm = RMSNorm(config.d_model, eps=config.rms_norm_eps)
        self.moe = MoELayer(
            d_model=config.d_model,
            d_ff=config.d_ff,
            num_experts=num_experts,
            top_k=config.top_k,
            num_shared_experts=config.num_shared_experts,
            activation=config.activation,
            gate_noise_std=config.gate_noise_std,
            rng=rng,
            dispatch=config.dispatch,
        )
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None,
                sample_ids: Optional[np.ndarray] = None) -> Tensor:
        attn_out = self.attn(self.attn_norm(x), attention_mask=attention_mask)
        x = x + self.dropout(attn_out)
        moe_out = self.moe(
            self.moe_norm(x),
            token_attention=self.attn.last_token_attention,
            sample_ids=sample_ids,
            token_mask=attention_mask,
        )
        return x + self.dropout(moe_out)


class MoETransformer(Module):
    """Decoder-only language model with MoE feed-forward layers."""

    def __init__(self, config: MoEModelConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        # Parameters are created under the config's dtype; random draws happen
        # in float64 before casting, so a float32 model is the rounded image of
        # the float64 model built from the same seed.
        with default_dtype(config.dtype):
            self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
            self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
            self.blocks = ModuleList([
                MoETransformerBlock(config, num_experts, rng=rng)
                for num_experts in config.experts_per_layer()
            ])
            self.final_norm = RMSNorm(config.d_model, eps=config.rms_norm_eps)
            if config.tie_embeddings:
                self.lm_head = None
            else:
                self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    # ---------------------------------------------------------------- forward
    def forward_hidden(self, input_ids: np.ndarray,
                       attention_mask: Optional[np.ndarray] = None,
                       sample_ids: Optional[np.ndarray] = None) -> Tensor:
        """Return final-layer token embeddings ``(batch, seq, d_model)``."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        batch, seq_len = input_ids.shape
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        x = self.token_embedding(input_ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, attention_mask=attention_mask, sample_ids=sample_ids)
        return self.final_norm(x)

    def forward(self, input_ids: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                sample_ids: Optional[np.ndarray] = None) -> Tensor:
        """Return next-token logits ``(batch, seq, vocab)``."""
        hidden = self.forward_hidden(input_ids, attention_mask=attention_mask, sample_ids=sample_ids)
        if self.lm_head is not None:
            return self.lm_head(hidden)
        return hidden @ self.token_embedding.weight.transpose()

    def compute_loss(self, input_ids: np.ndarray, labels: Optional[np.ndarray] = None,
                     attention_mask: Optional[np.ndarray] = None,
                     sample_ids: Optional[np.ndarray] = None,
                     ignore_index: int = -100) -> Tensor:
        """Causal language-modelling loss (labels default to shifted inputs)."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        if labels is None:
            labels = np.full_like(input_ids, ignore_index)
            labels[:, :-1] = input_ids[:, 1:]
            if attention_mask is not None:
                mask = np.asarray(attention_mask, dtype=bool)
                labels[:, :-1] = np.where(mask[:, 1:], labels[:, :-1], ignore_index)
        logits = self.forward(input_ids, attention_mask=attention_mask, sample_ids=sample_ids)
        return F.cross_entropy(logits, labels, ignore_index=ignore_index)

    def greedy_generate(self, prompt_ids: np.ndarray, max_new_tokens: int = 16) -> np.ndarray:
        """Greedy decoding used by the ROUGE-based evaluation."""
        tokens = list(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
        with no_grad():
            for _ in range(max_new_tokens):
                context = np.asarray(tokens[-self.config.max_seq_len:], dtype=np.int64)[None, :]
                logits = self.forward(context)
                next_token = int(np.argmax(logits.data[0, -1]))
                tokens.append(next_token)
        return np.asarray(tokens, dtype=np.int64)

    # ---------------------------------------------------------- expert access
    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def moe_layers(self) -> List[MoELayer]:
        return [block.moe for block in self.blocks]

    def experts_per_layer(self) -> List[int]:
        """Original (routed-over) expert count per layer."""
        return [layer.num_original_experts for layer in self.moe_layers()]

    def local_experts_per_layer(self) -> List[int]:
        """Number of expert modules actually materialised per layer."""
        return [layer.num_local_experts for layer in self.moe_layers()]

    def get_expert(self, layer: int, expert: int) -> ExpertFFN:
        return self.blocks[layer].moe.experts[expert]

    def set_expert(self, layer: int, expert: int, module: ExpertFFN) -> None:
        self.blocks[layer].moe.experts[expert] = module

    def expert_state(self, layer: int, expert: int) -> Dict[str, np.ndarray]:
        """Copy of one expert's weights (transport format for FL updates)."""
        return self.get_expert(layer, expert).state()

    def load_expert_state(self, layer: int, expert: int, state: Dict[str, np.ndarray]) -> None:
        self.get_expert(layer, expert).load_state(state)

    def iter_expert_ids(self):
        """Yield every ``(layer, expert)`` pair of the original architecture."""
        for layer_index, count in enumerate(self.experts_per_layer()):
            for expert_index in range(count):
                yield layer_index, expert_index

    def freeze_non_expert_parameters(self) -> None:
        """Freeze everything except routed expert FFNs (expert-only fine-tuning)."""
        for param in self.parameters():
            param.requires_grad = False
        for layer in self.moe_layers():
            for expert in layer.experts:
                for param in expert.parameters():
                    param.requires_grad = True

    def set_expert_trainable(self, layer: int, expert: int, trainable: bool) -> None:
        for param in self.get_expert(layer, expert).parameters():
            param.requires_grad = trainable

    # -------------------------------------------------------- routing records
    def set_routing_accumulation(self, enabled: bool) -> None:
        for layer in self.moe_layers():
            layer.accumulate_routing = enabled
            if enabled:
                layer.reset_routing_accumulator()

    def routing_records(self, accumulated: bool = False) -> List[RoutingRecord]:
        """Per-layer routing records from the last pass (or accumulated)."""
        records = []
        for layer in self.moe_layers():
            record = layer.accumulated_routing() if accumulated else layer.last_routing
            if record is None:
                record = RoutingRecord.empty(layer.num_original_experts)
            records.append(record)
        return records

    def activation_frequencies(self, accumulated: bool = False) -> List[np.ndarray]:
        """Per-layer activation frequency vectors."""
        return [record.activation_frequency() for record in self.routing_records(accumulated)]

    # --------------------------------------------------------------- counting
    def num_expert_parameters(self) -> int:
        total = 0
        for layer in self.moe_layers():
            for expert in layer.experts:
                total += expert.num_parameters()
        return total

    def parameter_breakdown(self) -> Dict[str, int]:
        """Parameter counts split into expert and non-expert components."""
        expert_params = self.num_expert_parameters()
        total = self.num_parameters()
        return {
            "total": total,
            "experts": expert_params,
            "non_expert": total - expert_params,
        }
