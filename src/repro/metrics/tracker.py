"""Time-to-accuracy tracking for federated fine-tuning runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class RoundMetric:
    """Metric snapshot recorded at the end of one federated round."""

    round_index: int
    simulated_time: float   # seconds of simulated wall-clock
    metric_value: float     # ROUGE-L or accuracy
    relative_accuracy: float
    train_loss: Optional[float] = None
    #: measured wire payload bytes this round (0 under the analytic transport)
    comm_bytes: float = 0.0
    #: measured uplink airtime this round (0 under the analytic transport)
    wire_seconds: float = 0.0
    #: payloads the channel faults lost / corrupted this round
    payloads_lost: int = 0
    payloads_corrupted: int = 0
    #: measured aggregator-tier backhaul bytes (0 on a flat run)
    edge_bytes: float = 0.0


@dataclass
class PerformanceTracker:
    """Records per-round metrics and answers time-to-accuracy queries.

    The tracker is the substrate behind the paper's primary metric: the
    elapsed (simulated) time needed to reach a dataset-specific target value.
    """

    target: float
    history: List[RoundMetric] = field(default_factory=list)

    def record(self, round_index: int, simulated_time: float, metric_value: float,
               train_loss: Optional[float] = None, comm_bytes: float = 0.0,
               wire_seconds: float = 0.0, payloads_lost: int = 0,
               payloads_corrupted: int = 0, edge_bytes: float = 0.0) -> RoundMetric:
        """Append one round's result.

        The wire-level fields (``wire_seconds``, ``payloads_lost``,
        ``payloads_corrupted``, ``edge_bytes``) default to zero so historical
        positional call sites keep working.
        """
        entry = RoundMetric(
            round_index=round_index,
            simulated_time=simulated_time,
            metric_value=metric_value,
            relative_accuracy=metric_value / self.target if self.target > 0 else 0.0,
            train_loss=train_loss,
            comm_bytes=comm_bytes,
            wire_seconds=wire_seconds,
            payloads_lost=int(payloads_lost),
            payloads_corrupted=int(payloads_corrupted),
            edge_bytes=edge_bytes,
        )
        self.history.append(entry)
        return entry

    # ------------------------------------------------------------- summaries
    def best_metric(self) -> float:
        return max((m.metric_value for m in self.history), default=0.0)

    def final_metric(self) -> float:
        return self.history[-1].metric_value if self.history else 0.0

    def time_to_target(self, target: Optional[float] = None) -> Optional[float]:
        """Simulated time at which the metric first reached ``target``.

        Returns ``None`` if the target was never reached.
        """
        goal = self.target if target is None else target
        for entry in self.history:
            if entry.metric_value >= goal:
                return entry.simulated_time
        return None

    def reached_target(self) -> bool:
        return self.time_to_target() is not None

    def total_comm_bytes(self) -> float:
        """Measured wire traffic over the whole run."""
        return sum(m.comm_bytes for m in self.history)

    def total_edge_bytes(self) -> float:
        """Measured aggregator-tier backhaul over the whole run."""
        return sum(m.edge_bytes for m in self.history)

    def total_payloads_lost(self) -> int:
        return sum(m.payloads_lost for m in self.history)

    def total_payloads_corrupted(self) -> int:
        return sum(m.payloads_corrupted for m in self.history)

    def times(self) -> List[float]:
        return [m.simulated_time for m in self.history]

    def relative_accuracies(self) -> List[float]:
        return [m.relative_accuracy for m in self.history]

    def metric_values(self) -> List[float]:
        return [m.metric_value for m in self.history]

    def as_series(self) -> List[dict]:
        """History rendered as plain dicts (for benchmark reports)."""
        return [
            {
                "round": m.round_index,
                "time_s": round(m.simulated_time, 3),
                "metric": round(m.metric_value, 4),
                "relative_accuracy": round(m.relative_accuracy, 4),
                "train_loss": None if m.train_loss is None else round(m.train_loss, 4),
                "comm_bytes": round(m.comm_bytes, 1),
                "wire_seconds": round(m.wire_seconds, 4),
                "payloads_lost": m.payloads_lost,
                "payloads_corrupted": m.payloads_corrupted,
                "edge_bytes": round(m.edge_bytes, 1),
            }
            for m in self.history
        ]
