"""Model evaluation on the synthetic benchmark datasets.

Evaluation is teacher-forced: a single forward pass per batch yields the
model's predictions at every answer position, from which the dataset-specific
metric is computed —

* generation datasets: ROUGE-L between predicted and reference answer tokens;
* math datasets: exact match of the predicted answer digit;
* multiple-choice datasets: accuracy of the highest-scoring choice token.

Teacher forcing keeps evaluation to one forward per batch (instead of one per
generated token), which is what makes the convergence benchmarks affordable
while still measuring genuine task quality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import no_grad
from ..data import Batch, SyntheticDataset, TaskType, make_batches
from ..models import MoETransformer
from .rouge import corpus_rouge_l


def evaluate_model(model: MoETransformer, dataset: SyntheticDataset,
                   batch_size: int = 16, max_samples: Optional[int] = None,
                   seed: int = 0) -> float:
    """Return the dataset's metric (ROUGE-L or accuracy) for ``model``."""
    samples = dataset.samples
    if max_samples is not None and len(samples) > max_samples:
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(samples), size=max_samples, replace=False)
        samples = [samples[int(i)] for i in picked]
    if not samples:
        raise ValueError("cannot evaluate on an empty dataset")

    batches = make_batches(samples, batch_size=batch_size, vocab=dataset.vocab,
                           shuffle=False, max_seq_len=model.config.max_seq_len)
    task = dataset.spec.task_type
    model.eval()
    try:
        if task is TaskType.GENERATION:
            return _evaluate_generation(model, batches)
        return _evaluate_classification(model, batches, dataset)
    finally:
        model.train()


def _predictions(model: MoETransformer, batch: Batch) -> np.ndarray:
    with no_grad():
        logits = model.forward(batch.input_ids, attention_mask=batch.attention_mask)
    return logits.data


def _evaluate_generation(model: MoETransformer, batches) -> float:
    candidates = []
    references = []
    for batch in batches:
        logits = _predictions(model, batch)
        predicted = np.argmax(logits, axis=-1)
        for row, sample in enumerate(batch.samples):
            answer_positions = np.flatnonzero(batch.labels[row] >= 0)
            if answer_positions.size == 0:
                continue
            reference = batch.labels[row, answer_positions]
            candidate = predicted[row, answer_positions]
            candidates.append(candidate.tolist())
            references.append(reference.tolist())
    return corpus_rouge_l(candidates, references)


def _evaluate_classification(model: MoETransformer, batches, dataset: SyntheticDataset) -> float:
    vocab = dataset.vocab
    task = dataset.spec.task_type
    if task is TaskType.MATH:
        answer_tokens = np.asarray(vocab.digit_tokens())
    else:
        answer_tokens = np.asarray(vocab.choice_tokens())

    correct = 0
    total = 0
    for batch in batches:
        logits = _predictions(model, batch)
        for row, sample in enumerate(batch.samples):
            # The supervised answer token (digit or choice) directly follows
            # the ANSWER marker; its label position is the first non-ignored
            # label whose value lies in the answer-token set.
            answer_positions = np.flatnonzero(np.isin(batch.labels[row], answer_tokens))
            if answer_positions.size == 0:
                continue
            position = int(answer_positions[0])
            true_token = int(batch.labels[row, position])
            scores = logits[row, position, answer_tokens]
            predicted_token = int(answer_tokens[int(np.argmax(scores))])
            correct += int(predicted_token == true_token)
            total += 1
    if total == 0:
        return 0.0
    return correct / total


def relative_accuracy(metric_value: float, target: float) -> float:
    """The paper's relative accuracy: obtained metric divided by its target."""
    if target <= 0:
        raise ValueError("target must be positive")
    return metric_value / target
