"""ROUGE-L metric over token-id sequences.

The paper evaluates generation quality (Dolly) with ROUGE; here ROUGE-L is
computed over token ids, which is exactly equivalent to the word-level metric
for the synthetic datasets (each id plays the role of a word).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _lcs_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common subsequence of two id sequences."""
    if len(a) == 0 or len(b) == 0:
        return 0
    # Rolling single-row DP keeps memory at O(len(b)).
    previous = np.zeros(len(b) + 1, dtype=np.int64)
    for x in a:
        current = np.zeros_like(previous)
        for j, y in enumerate(b, start=1):
            if x == y:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return int(previous[-1])


def rouge_l(candidate: Sequence[int], reference: Sequence[int], beta: float = 1.2) -> float:
    """ROUGE-L F-measure between a candidate and a reference sequence."""
    candidate = list(int(t) for t in candidate)
    reference = list(int(t) for t in reference)
    if not candidate or not reference:
        return 0.0
    lcs = _lcs_length(candidate, reference)
    if lcs == 0:
        return 0.0
    precision = lcs / len(candidate)
    recall = lcs / len(reference)
    return float(((1 + beta ** 2) * precision * recall) / (recall + beta ** 2 * precision))


def corpus_rouge_l(candidates: Sequence[Sequence[int]], references: Sequence[Sequence[int]],
                   beta: float = 1.2) -> float:
    """Mean ROUGE-L over aligned candidate/reference pairs."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must be aligned")
    if not candidates:
        return 0.0
    scores = [rouge_l(c, r, beta=beta) for c, r in zip(candidates, references)]
    return float(np.mean(scores))
