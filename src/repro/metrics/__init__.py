"""Evaluation metrics and time-to-accuracy tracking."""

from .evaluation import evaluate_model, relative_accuracy
from .rouge import corpus_rouge_l, rouge_l
from .tracker import PerformanceTracker, RoundMetric

__all__ = [
    "rouge_l",
    "corpus_rouge_l",
    "evaluate_model",
    "relative_accuracy",
    "PerformanceTracker",
    "RoundMetric",
]
