"""Non-IID data partitioning across federated participants.

Implements the FedNLP-style Dirichlet label/topic-skew partition used in the
paper: for every topic a Dirichlet(alpha) draw decides how that topic's samples
are shared among participants.  Small ``alpha`` yields highly skewed (non-IID)
partitions; large ``alpha`` approaches IID.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .datasets import SyntheticDataset


def partition_dirichlet(dataset: SyntheticDataset, num_clients: int, alpha: float = 0.5,
                        seed: int = 0, min_samples: int = 2) -> List[List[int]]:
    """Split sample indices across ``num_clients`` with Dirichlet topic skew.

    Parameters
    ----------
    dataset:
        Dataset whose per-sample ``topic`` drives the skew.
    num_clients:
        Number of participants.
    alpha:
        Dirichlet concentration; smaller is more non-IID.
    min_samples:
        Every client is guaranteed at least this many samples (re-balancing
        moves samples from the largest clients if necessary).

    Returns
    -------
    A list of ``num_clients`` index lists (disjoint, covering the dataset).
    """
    if num_clients < 1:
        raise ValueError("num_clients must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if len(dataset) < num_clients * min_samples:
        raise ValueError("dataset too small for the requested number of clients")

    rng = np.random.default_rng(seed)
    topics = dataset.topics()
    assignments: List[List[int]] = [[] for _ in range(num_clients)]

    for topic in np.unique(topics):
        topic_indices = np.flatnonzero(topics == topic)
        rng.shuffle(topic_indices)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = np.floor(proportions * len(topic_indices)).astype(int)
        # Distribute the remainder to the clients with the largest fractional parts.
        remainder = len(topic_indices) - counts.sum()
        if remainder > 0:
            fractional = proportions * len(topic_indices) - counts
            for client in np.argsort(-fractional)[:remainder]:
                counts[client] += 1
        start = 0
        for client, count in enumerate(counts):
            assignments[client].extend(topic_indices[start:start + count].tolist())
            start += count

    _rebalance(assignments, min_samples, rng)
    return assignments


def partition_iid(dataset: SyntheticDataset, num_clients: int, seed: int = 0) -> List[List[int]]:
    """Uniformly random (IID) partition, used as an ablation reference."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [chunk.tolist() for chunk in np.array_split(order, num_clients)]


def _rebalance(assignments: List[List[int]], min_samples: int, rng: np.random.Generator) -> None:
    """Move samples from the largest clients to any client below ``min_samples``."""
    for client, indices in enumerate(assignments):
        while len(indices) < min_samples:
            donor = max(range(len(assignments)), key=lambda c: len(assignments[c]))
            if donor == client or len(assignments[donor]) <= min_samples:
                break
            indices.append(assignments[donor].pop())


def partition_statistics(assignments: Sequence[Sequence[int]], dataset: SyntheticDataset) -> dict:
    """Summary statistics of a partition (sizes and per-client topic entropy)."""
    topics = dataset.topics()
    num_topics = dataset.vocab.num_topics
    sizes = [len(a) for a in assignments]
    entropies = []
    for indices in assignments:
        if not indices:
            entropies.append(0.0)
            continue
        counts = np.bincount(topics[list(indices)], minlength=num_topics).astype(np.float64)
        probs = counts / counts.sum()
        nonzero = probs[probs > 0]
        entropies.append(float(-(nonzero * np.log(nonzero)).sum()))
    return {
        "sizes": sizes,
        "topic_entropy_mean": float(np.mean(entropies)),
        "topic_entropy_per_client": entropies,
    }
