"""Synthetic task sample generation.

Each sample is a prompt/answer pair expressed as token ids.  Three task types
cover the shapes of the paper's four benchmark datasets:

* ``GENERATION`` (Dolly-like): the answer is a deterministic, topic-specific
  token pattern derived from the prompt — evaluated with ROUGE-L.
* ``MATH`` (GSM8K-like): the prompt embeds two small numbers and topic-specific
  "working"; the answer is a single digit determined by the problem's topic —
  evaluated with exact-match accuracy.  (A topic-determined answer keeps the
  task learnable by the mini models while preserving GSM8K's shape: short
  prompts, one exact-match digit answer.)
* ``MULTIPLE_CHOICE`` (MMLU/PIQA-like): the answer is one of ``num_choices``
  choice tokens determined by a topic-dependent rule — evaluated by comparing
  the model's scores of the choice tokens.

The deterministic answer rules make the tasks *learnable* by the mini MoE
models, so federated fine-tuning exhibits genuine convergence, while the
topic-block token structure yields skewed, non-IID expert activation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .vocab import Vocabulary


class TaskType(enum.Enum):
    """Kinds of synthetic tasks, matching the benchmark datasets' shapes."""

    GENERATION = "generation"
    MATH = "math"
    MULTIPLE_CHOICE = "multiple_choice"


@dataclass
class Sample:
    """One prompt/answer training or evaluation example."""

    input_ids: np.ndarray          # prompt + answer tokens (training form)
    prompt_length: int             # number of prompt tokens at the front
    answer_ids: np.ndarray         # the answer tokens alone
    topic: int                     # topic that generated the sample
    task_type: TaskType
    label: Optional[int] = None    # choice index for multiple-choice tasks
    sample_id: int = -1

    @property
    def length(self) -> int:
        return int(self.input_ids.shape[0])

    @property
    def prompt_ids(self) -> np.ndarray:
        return self.input_ids[: self.prompt_length]


def _zipf_weights(n: int, exponent: float = 1.1) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class SyntheticTaskGenerator:
    """Draws :class:`Sample` objects for one task type over a shared vocabulary."""

    def __init__(
        self,
        vocab: Vocabulary,
        task_type: TaskType,
        mean_prompt_length: int = 16,
        answer_length: int = 6,
        topic_skew: float = 1.2,
        seed: int = 0,
    ) -> None:
        if mean_prompt_length < 4:
            raise ValueError("mean_prompt_length must be at least 4")
        self.vocab = vocab
        self.task_type = task_type
        self.mean_prompt_length = mean_prompt_length
        self.answer_length = answer_length
        self.topic_skew = topic_skew
        self._rng = np.random.default_rng(seed)
        #: per-topic probabilities; a mild Zipf skew so some topics (and hence
        #: the experts specialised on them) dominate, mirroring Figure 2.
        self.topic_probs = _zipf_weights(vocab.num_topics, exponent=topic_skew)

    # ------------------------------------------------------------ primitives
    def _draw_topic(self) -> int:
        return int(self._rng.choice(self.vocab.num_topics, p=self.topic_probs))

    def _topic_tokens(self, topic: int, count: int) -> np.ndarray:
        block = self.vocab.topic_block(topic)
        ids = np.arange(block.start, block.stop)
        weights = _zipf_weights(len(ids))
        return self._rng.choice(ids, size=count, p=weights)

    def _prompt_length(self) -> int:
        length = int(self._rng.normal(self.mean_prompt_length, self.mean_prompt_length * 0.2))
        return int(np.clip(length, 6, 2 * self.mean_prompt_length))

    # --------------------------------------------------------------- samples
    def sample(self, sample_id: int = -1, topic: Optional[int] = None) -> Sample:
        """Draw one sample (optionally forcing its topic)."""
        topic = self._draw_topic() if topic is None else int(topic)
        if self.task_type is TaskType.GENERATION:
            return self._generation_sample(topic, sample_id)
        if self.task_type is TaskType.MATH:
            return self._math_sample(topic, sample_id)
        return self._choice_sample(topic, sample_id)

    def generate(self, count: int, start_id: int = 0) -> List[Sample]:
        """Draw ``count`` samples with consecutive sample ids."""
        return [self.sample(sample_id=start_id + i) for i in range(count)]

    # ------------------------------------------------------------- task rules
    def _generation_sample(self, topic: int, sample_id: int) -> Sample:
        vocab = self.vocab
        prompt_len = self._prompt_length()
        content = self._topic_tokens(topic, prompt_len - 3)
        prompt = np.concatenate((
            [vocab.BOS, vocab.QUERY],
            content,
            [vocab.SEP],
        )).astype(np.int64)
        # The answer echoes the first answer_length content tokens in sorted
        # order — a deterministic pattern a small LM can learn, giving the
        # ROUGE-L metric real signal.
        echoed = np.sort(content[: self.answer_length])
        answer = np.concatenate(([vocab.ANSWER], echoed, [vocab.EOS])).astype(np.int64)
        input_ids = np.concatenate((prompt, answer))
        return Sample(input_ids=input_ids, prompt_length=len(prompt), answer_ids=answer,
                      topic=topic, task_type=self.task_type, sample_id=sample_id)

    def _math_sample(self, topic: int, sample_id: int) -> Sample:
        vocab = self.vocab
        a = int(self._rng.integers(0, 10))
        b = int(self._rng.integers(0, 10))
        filler = self._topic_tokens(topic, max(self._prompt_length() - 7, 1))
        prompt = np.concatenate((
            [vocab.BOS, vocab.QUERY],
            filler,
            [vocab.digit_token(a), vocab.SEP, vocab.digit_token(b), vocab.SEP],
        )).astype(np.int64)
        # The answer digit is a deterministic function of the topic so the task
        # is reliably learnable at mini-model scale (see module docstring).
        result = (3 * topic + 7) % 10
        answer = np.asarray([vocab.ANSWER, vocab.digit_token(result), vocab.EOS], dtype=np.int64)
        input_ids = np.concatenate((prompt, answer))
        return Sample(input_ids=input_ids, prompt_length=len(prompt), answer_ids=answer,
                      topic=topic, task_type=self.task_type, label=result, sample_id=sample_id)

    def _choice_sample(self, topic: int, sample_id: int) -> Sample:
        vocab = self.vocab
        prompt_len = self._prompt_length()
        content = self._topic_tokens(topic, prompt_len - 3)
        prompt = np.concatenate((
            [vocab.BOS, vocab.QUERY],
            content,
            [vocab.SEP],
        )).astype(np.int64)
        # The correct choice is a deterministic function of the topic and the
        # first content token, so the mapping is learnable but not trivial.
        label = int((topic + int(content[0])) % vocab.num_choices)
        answer = np.asarray([vocab.ANSWER, vocab.choice_token(label), vocab.EOS], dtype=np.int64)
        input_ids = np.concatenate((prompt, answer))
        return Sample(input_ids=input_ids, prompt_length=len(prompt), answer_ids=answer,
                      topic=topic, task_type=self.task_type, label=label, sample_id=sample_id)
