"""Batching and padding of synthetic samples for model consumption."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .synthetic import Sample
from .vocab import Vocabulary

IGNORE_INDEX = -100


@dataclass
class Batch:
    """A padded batch of samples ready for the MoE transformer.

    ``labels`` contain ``IGNORE_INDEX`` for the prompt region and padding, so
    the LM loss only supervises answer tokens — the standard instruction-tuning
    recipe, and the reason the mini models learn the answer rules quickly.
    """

    input_ids: np.ndarray       # (batch, seq)
    attention_mask: np.ndarray  # (batch, seq) bool
    labels: np.ndarray          # (batch, seq) int with IGNORE_INDEX
    sample_ids: np.ndarray      # (batch,)
    samples: List[Sample]

    @property
    def batch_size(self) -> int:
        return int(self.input_ids.shape[0])

    @property
    def seq_len(self) -> int:
        return int(self.input_ids.shape[1])

    @property
    def num_tokens(self) -> int:
        return int(self.attention_mask.sum())


def collate(samples: Sequence[Sample], pad_id: int, max_seq_len: Optional[int] = None) -> Batch:
    """Pad a list of samples into one :class:`Batch`."""
    if not samples:
        raise ValueError("cannot collate an empty sample list")
    lengths = [s.length for s in samples]
    seq_len = max(lengths)
    if max_seq_len is not None:
        seq_len = min(seq_len, max_seq_len)
    batch = len(samples)

    input_ids = np.full((batch, seq_len), pad_id, dtype=np.int64)
    attention_mask = np.zeros((batch, seq_len), dtype=bool)
    labels = np.full((batch, seq_len), IGNORE_INDEX, dtype=np.int64)
    sample_ids = np.zeros(batch, dtype=np.int64)

    for row, sample in enumerate(samples):
        ids = sample.input_ids[:seq_len]
        length = len(ids)
        input_ids[row, :length] = ids
        attention_mask[row, :length] = True
        # Supervise only the answer region: labels[t] = input_ids[t + 1] for
        # positions t whose *next* token belongs to the answer.
        answer_start = min(sample.prompt_length, length)
        for t in range(max(answer_start - 1, 0), length - 1):
            labels[row, t] = ids[t + 1]
        sample_ids[row] = sample.sample_id

    return Batch(input_ids=input_ids, attention_mask=attention_mask, labels=labels,
                 sample_ids=sample_ids, samples=list(samples))


def iter_batches(samples: Sequence[Sample], batch_size: int, pad_id: int,
                 shuffle: bool = True, seed: int = 0, drop_last: bool = False,
                 max_seq_len: Optional[int] = None) -> Iterator[Batch]:
    """Yield padded batches over ``samples``."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(samples))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        yield collate([samples[i] for i in chunk], pad_id=pad_id, max_seq_len=max_seq_len)


def make_batches(samples: Sequence[Sample], batch_size: int, vocab: Vocabulary,
                 shuffle: bool = True, seed: int = 0,
                 max_seq_len: Optional[int] = None) -> List[Batch]:
    """Materialise the batches produced by :func:`iter_batches`."""
    return list(iter_batches(samples, batch_size, pad_id=vocab.PAD, shuffle=shuffle,
                             seed=seed, max_seq_len=max_seq_len))
