"""Benchmark-dataset substitutes (Dolly / GSM8K / MMLU / PIQA analogues).

Each dataset is a list of :class:`~repro.data.synthetic.Sample` plus a
:class:`DatasetSpec` capturing the statistics that matter for the experiments:
the task type (which fixes the evaluation metric), the typical sequence length
(which drives per-round compute in the cost model), topic skew, and the
relative-accuracy target used by time-to-accuracy measurements.

The paper's absolute targets (0.5 ROUGE-L on Dolly, 0.62/0.75/0.8 accuracy on
GSM8K/MMLU/PIQA) refer to multi-billion-parameter models; the substitutes keep
the same *relative-accuracy* protocol with targets recalibrated for the mini
models (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .synthetic import Sample, SyntheticTaskGenerator, TaskType
from .vocab import Vocabulary


@dataclass
class DatasetSpec:
    """Static description of one benchmark dataset substitute."""

    name: str
    task_type: TaskType
    metric: str                     # "rouge_l" or "accuracy"
    paper_target: float             # target value used in the paper
    mini_target: float              # recalibrated target for the mini models
    mean_prompt_length: int
    answer_length: int
    num_samples: int
    topic_skew: float


@dataclass
class SyntheticDataset:
    """A materialised dataset: samples plus its spec and vocabulary."""

    spec: DatasetSpec
    vocab: Vocabulary
    samples: List[Sample]

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> Sample:
        return self.samples[index]

    def subset(self, indices) -> "SyntheticDataset":
        """A view-like dataset restricted to ``indices`` (samples are shared)."""
        picked = [self.samples[int(i)] for i in indices]
        return SyntheticDataset(spec=self.spec, vocab=self.vocab, samples=picked)

    def split(self, train_fraction: float = 0.8, seed: int = 0):
        """Shuffle-split into (train, test) datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.samples))
        cut = int(round(train_fraction * len(self.samples)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def topics(self) -> np.ndarray:
        return np.asarray([s.topic for s in self.samples], dtype=np.int64)

    def mean_length(self) -> float:
        return float(np.mean([s.length for s in self.samples])) if self.samples else 0.0


#: Specs for the four benchmark-dataset substitutes.  ``mean_prompt_length``
#: ordering mirrors the paper's observation that Dolly has the longest
#: sequences and GSM8K the shortest.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "dolly": DatasetSpec(
        name="dolly", task_type=TaskType.GENERATION, metric="rouge_l",
        paper_target=0.5, mini_target=0.55,
        mean_prompt_length=24, answer_length=6, num_samples=600, topic_skew=1.3,
    ),
    "gsm8k": DatasetSpec(
        name="gsm8k", task_type=TaskType.MATH, metric="accuracy",
        paper_target=0.62, mini_target=0.60,
        mean_prompt_length=12, answer_length=1, num_samples=600, topic_skew=1.5,
    ),
    "mmlu": DatasetSpec(
        name="mmlu", task_type=TaskType.MULTIPLE_CHOICE, metric="accuracy",
        paper_target=0.75, mini_target=0.70,
        mean_prompt_length=18, answer_length=1, num_samples=600, topic_skew=1.1,
    ),
    "piqa": DatasetSpec(
        name="piqa", task_type=TaskType.MULTIPLE_CHOICE, metric="accuracy",
        paper_target=0.8, mini_target=0.75,
        mean_prompt_length=14, answer_length=1, num_samples=600, topic_skew=1.2,
    ),
}


def make_dataset(name: str, vocab: Optional[Vocabulary] = None,
                 num_samples: Optional[int] = None, seed: int = 0) -> SyntheticDataset:
    """Build one of the benchmark-dataset substitutes by name."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset '{name}'; available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[key]
    vocab = vocab or Vocabulary()
    count = num_samples if num_samples is not None else spec.num_samples
    generator = SyntheticTaskGenerator(
        vocab=vocab,
        task_type=spec.task_type,
        mean_prompt_length=spec.mean_prompt_length,
        answer_length=spec.answer_length,
        topic_skew=spec.topic_skew,
        seed=seed,
    )
    samples = generator.generate(count)
    return SyntheticDataset(spec=spec, vocab=vocab, samples=samples)


def make_dolly_like(**kwargs) -> SyntheticDataset:
    """Dolly substitute: open-ended generation, longest sequences."""
    return make_dataset("dolly", **kwargs)


def make_gsm8k_like(**kwargs) -> SyntheticDataset:
    """GSM8K substitute: short math problems with exact-match answers."""
    return make_dataset("gsm8k", **kwargs)


def make_mmlu_like(**kwargs) -> SyntheticDataset:
    """MMLU substitute: 4-way multiple choice over many topics."""
    return make_dataset("mmlu", **kwargs)


def make_piqa_like(**kwargs) -> SyntheticDataset:
    """PIQA substitute: binary-flavoured multiple choice (kept 4-way for API uniformity)."""
    return make_dataset("piqa", **kwargs)


DATASET_FACTORIES: Dict[str, Callable[..., SyntheticDataset]] = {
    "dolly": make_dolly_like,
    "gsm8k": make_gsm8k_like,
    "mmlu": make_mmlu_like,
    "piqa": make_piqa_like,
}
