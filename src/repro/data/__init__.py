"""Synthetic data substrate: vocab, task generators, datasets, non-IID partitioning."""

from .datasets import (
    DATASET_FACTORIES,
    DATASET_SPECS,
    DatasetSpec,
    SyntheticDataset,
    make_dataset,
    make_dolly_like,
    make_gsm8k_like,
    make_mmlu_like,
    make_piqa_like,
)
from .loader import IGNORE_INDEX, Batch, collate, iter_batches, make_batches
from .partition import partition_dirichlet, partition_iid, partition_statistics
from .synthetic import Sample, SyntheticTaskGenerator, TaskType
from .vocab import Vocabulary

__all__ = [
    "Vocabulary",
    "Sample",
    "SyntheticTaskGenerator",
    "TaskType",
    "DatasetSpec",
    "SyntheticDataset",
    "DATASET_SPECS",
    "DATASET_FACTORIES",
    "make_dataset",
    "make_dolly_like",
    "make_gsm8k_like",
    "make_mmlu_like",
    "make_piqa_like",
    "partition_dirichlet",
    "partition_iid",
    "partition_statistics",
    "Batch",
    "collate",
    "iter_batches",
    "make_batches",
    "IGNORE_INDEX",
]
