"""Structured token vocabulary for the synthetic dataset substrate.

The vocabulary is partitioned into functional regions (special tokens, answer
choice tokens, digit tokens and per-topic content blocks).  Giving each topic
its own content-token block is what produces the *skewed, topic-dependent
expert activation* that the paper observes on real datasets (Figure 2) and
that Flux's profiling/merging modules rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class Vocabulary:
    """Token-id layout shared by all synthetic datasets.

    Layout (in id order): ``PAD, BOS, EOS, SEP, QUERY, ANSWER,`` choice tokens,
    digit tokens, then ``num_topics`` equal blocks of content tokens.
    """

    size: int = 256
    num_topics: int = 8
    num_choices: int = 4
    num_digits: int = 10

    PAD: int = 0
    BOS: int = 1
    EOS: int = 2
    SEP: int = 3
    QUERY: int = 4
    ANSWER: int = 5

    def __post_init__(self) -> None:
        reserved = 6 + self.num_choices + self.num_digits
        if self.size <= reserved + self.num_topics:
            raise ValueError(
                f"vocabulary of size {self.size} is too small for {self.num_topics} topics"
            )
        self._choice_start = 6
        self._digit_start = self._choice_start + self.num_choices
        self._content_start = self._digit_start + self.num_digits

    # --------------------------------------------------------------- regions
    @property
    def content_start(self) -> int:
        return self._content_start

    @property
    def num_content_tokens(self) -> int:
        return self.size - self._content_start

    def choice_token(self, choice: int) -> int:
        """Token id of answer choice ``choice`` (0 = 'A', 1 = 'B', ...)."""
        if not 0 <= choice < self.num_choices:
            raise ValueError(f"choice {choice} out of range [0, {self.num_choices})")
        return self._choice_start + choice

    def choice_tokens(self) -> List[int]:
        return [self.choice_token(c) for c in range(self.num_choices)]

    def choice_from_token(self, token: int) -> int:
        """Inverse of :meth:`choice_token`."""
        index = token - self._choice_start
        if not 0 <= index < self.num_choices:
            raise ValueError(f"token {token} is not a choice token")
        return index

    def digit_token(self, digit: int) -> int:
        """Token id of decimal digit ``digit``."""
        if not 0 <= digit < self.num_digits:
            raise ValueError(f"digit {digit} out of range")
        return self._digit_start + digit

    def digit_tokens(self) -> List[int]:
        return [self.digit_token(d) for d in range(self.num_digits)]

    def digit_from_token(self, token: int) -> int:
        index = token - self._digit_start
        if not 0 <= index < self.num_digits:
            raise ValueError(f"token {token} is not a digit token")
        return index

    def topic_block(self, topic: int) -> range:
        """Content-token id range owned by ``topic``."""
        if not 0 <= topic < self.num_topics:
            raise ValueError(f"topic {topic} out of range [0, {self.num_topics})")
        block = self.num_content_tokens // self.num_topics
        start = self._content_start + topic * block
        end = start + block
        return range(start, end)

    def topic_of_token(self, token: int) -> int:
        """Topic that owns a content token (-1 for non-content tokens)."""
        if token < self._content_start:
            return -1
        block = self.num_content_tokens // self.num_topics
        topic = (token - self._content_start) // block
        return min(topic, self.num_topics - 1)
