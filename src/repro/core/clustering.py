"""Similarity-based expert clustering (paper §5.2).

Experts with similar parameters merge with less damage, so Flux clusters
non-tuning experts by parameter similarity before merging.  Two implementation
details from the paper are reproduced:

* expert weight vectors are first reduced with PCA so clustering operates on
  compact feature vectors;
* clustering across all layers is *fused* into a single K-Means run — one
  centroid set labelled with layer ids and a cross-layer distance mask — which
  is roughly 40x faster than running K-Means per layer because centroid
  initialisation and distance computation are batched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class ClusteringResult:
    """Outcome of clustering non-tuning experts in every layer."""

    #: per layer: list of clusters, each a list of *original* expert ids
    clusters_per_layer: List[List[List[int]]]
    #: wall-clock seconds spent clustering (reported in Figure 16)
    elapsed_seconds: float
    mode: str

    def num_clusters(self) -> int:
        return sum(len(clusters) for clusters in self.clusters_per_layer)

    def cluster_of(self, layer: int, expert: int) -> Optional[int]:
        """Index of the cluster containing ``expert`` in ``layer`` (None if absent)."""
        for index, members in enumerate(self.clusters_per_layer[layer]):
            if expert in members:
                return index
        return None


def pca_reduce(matrix: np.ndarray, components: int) -> np.ndarray:
    """Project rows of ``matrix`` onto their top principal components."""
    if matrix.ndim != 2:
        raise ValueError("pca_reduce expects a 2-D matrix")
    components = max(1, min(components, min(matrix.shape)))
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    # SVD of the (experts x features) matrix; rows projected onto top-k right
    # singular vectors.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:components].T


def _cosine_distances(points: np.ndarray, centroids: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Pairwise cosine distances between points and centroids."""
    point_norms = np.linalg.norm(points, axis=1, keepdims=True)
    centroid_norms = np.linalg.norm(centroids, axis=1, keepdims=True)
    sim = (points @ centroids.T) / np.maximum(point_norms * centroid_norms.T, eps)
    return 1.0 - sim


def _kmeans(points: np.ndarray, point_layers: np.ndarray, centroid_layers: np.ndarray,
            iterations: int, rng: np.random.Generator) -> np.ndarray:
    """Layer-constrained K-Means: points may only join centroids of their layer."""
    num_centroids = len(centroid_layers)
    # Initialise each centroid from a random point of its own layer.
    centroids = np.zeros((num_centroids, points.shape[1]))
    for index, layer in enumerate(centroid_layers):
        candidates = np.flatnonzero(point_layers == layer)
        centroids[index] = points[rng.choice(candidates)]

    cross_layer = point_layers[:, None] != centroid_layers[None, :]
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(max(iterations, 1)):
        distances = _cosine_distances(points, centroids)
        distances[cross_layer] = np.inf
        new_assignment = np.argmin(distances, axis=1)
        if np.array_equal(new_assignment, assignment):
            assignment = new_assignment
            break
        assignment = new_assignment
        for index in range(num_centroids):
            members = points[assignment == index]
            if len(members):
                centroids[index] = members.mean(axis=0)
    return assignment


def cluster_experts(
    expert_features: Sequence[np.ndarray],
    expert_ids: Sequence[Sequence[int]],
    budgets: Sequence[int],
    mode: str = "fused",
    pca_components: int = 8,
    iterations: int = 10,
    seed: int = 0,
) -> ClusteringResult:
    """Cluster each layer's non-tuning experts into its merge budget.

    Parameters
    ----------
    expert_features:
        Per layer, a ``(num_non_tuning, feature_dim)`` matrix of flattened
        expert weights (the non-tuning experts of that layer, in the order of
        ``expert_ids``).
    expert_ids:
        Per layer, the original expert ids corresponding to the feature rows.
    budgets:
        Per layer, the number of clusters (merged experts) to produce.
    mode:
        ``"fused"`` runs one K-Means across all layers with a cross-layer
        mask; ``"per_layer"`` runs an independent K-Means per layer (the
        comparison baseline of Figure 16).
    """
    if not (len(expert_features) == len(expert_ids) == len(budgets)):
        raise ValueError("expert_features, expert_ids and budgets must be aligned per layer")
    if mode not in ("fused", "per_layer"):
        raise ValueError(f"unknown clustering mode {mode!r}")
    rng = np.random.default_rng(seed)

    start = time.perf_counter()
    reduced: List[np.ndarray] = []
    for features in expert_features:
        if len(features) == 0:
            reduced.append(np.zeros((0, 1)))
        else:
            reduced.append(pca_reduce(np.asarray(features, dtype=np.float64), pca_components))

    if mode == "fused":
        clusters = _cluster_fused(reduced, expert_ids, budgets, iterations, rng)
    else:
        clusters = _cluster_per_layer(reduced, expert_ids, budgets, iterations, rng)
    elapsed = time.perf_counter() - start
    return ClusteringResult(clusters_per_layer=clusters, elapsed_seconds=elapsed, mode=mode)


def _effective_budget(budget: int, available: int) -> int:
    return max(1, min(budget, available)) if available else 0


def _cluster_fused(reduced: Sequence[np.ndarray], expert_ids: Sequence[Sequence[int]],
                   budgets: Sequence[int], iterations: int,
                   rng: np.random.Generator) -> List[List[List[int]]]:
    # Pad features to a common dimensionality and stack everything.
    non_empty = [r for r in reduced if len(r)]
    if not non_empty:
        return [[] for _ in reduced]
    dim = max(r.shape[1] for r in non_empty)
    points, point_layers, point_expert_ids = [], [], []
    centroid_layers: List[int] = []
    for layer, (features, ids, budget) in enumerate(zip(reduced, expert_ids, budgets)):
        if len(features) == 0:
            continue
        padded = np.zeros((len(features), dim))
        padded[:, : features.shape[1]] = features
        points.append(padded)
        point_layers.extend([layer] * len(features))
        point_expert_ids.extend(int(i) for i in ids)
        centroid_layers.extend([layer] * _effective_budget(budget, len(features)))

    stacked = np.vstack(points)
    assignment = _kmeans(stacked, np.asarray(point_layers), np.asarray(centroid_layers),
                         iterations, rng)

    clusters: List[List[List[int]]] = [[] for _ in reduced]
    centroid_layers_arr = np.asarray(centroid_layers)
    for centroid_index in range(len(centroid_layers)):
        members = [point_expert_ids[i] for i in np.flatnonzero(assignment == centroid_index)]
        if members:
            clusters[int(centroid_layers_arr[centroid_index])].append(sorted(members))
    _absorb_unassigned(clusters, expert_ids)
    return clusters


def _cluster_per_layer(reduced: Sequence[np.ndarray], expert_ids: Sequence[Sequence[int]],
                       budgets: Sequence[int], iterations: int,
                       rng: np.random.Generator) -> List[List[List[int]]]:
    clusters: List[List[List[int]]] = []
    for features, ids, budget in zip(reduced, expert_ids, budgets):
        if len(features) == 0:
            clusters.append([])
            continue
        k = _effective_budget(budget, len(features))
        assignment = _kmeans(np.asarray(features), np.zeros(len(features), dtype=np.int64),
                             np.zeros(k, dtype=np.int64), iterations, rng)
        layer_clusters = []
        for index in range(k):
            members = [int(ids[i]) for i in np.flatnonzero(assignment == index)]
            if members:
                layer_clusters.append(sorted(members))
        clusters.append(layer_clusters)
    _absorb_unassigned(clusters, expert_ids)
    return clusters


def _absorb_unassigned(clusters: List[List[List[int]]], expert_ids: Sequence[Sequence[int]]) -> None:
    """Guarantee every non-tuning expert belongs to exactly one cluster."""
    for layer, ids in enumerate(expert_ids):
        assigned = {expert for cluster in clusters[layer] for expert in cluster}
        missing = [int(i) for i in ids if int(i) not in assigned]
        if missing:
            if clusters[layer]:
                clusters[layer][0].extend(missing)
                clusters[layer][0].sort()
            else:
                clusters[layer].append(sorted(missing))
