"""Dynamic expert role assignment (paper §6, Algorithm 1).

Each round the parameter server collects per-participant expert utilities,
solves the budgeted utility-maximisation problem (4) to obtain each
participant's candidate set, then splits the candidate budget between
*exploitation* (highest-utility experts, fine-tuned with real backprop) and
*exploration* (randomly sampled experts whose utilities are refreshed with
forward-only gradient estimates).  The exploitation share ε grows over rounds
(dynamic ε) as utility estimates become trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import EpsilonSchedule

ExpertKey = Tuple[int, int]


@dataclass
class RoleAssignment:
    """Expert roles for one participant in one round."""

    participant_id: int
    exploitation: List[ExpertKey]      # tuning experts (backprop fine-tuning)
    exploration: List[ExpertKey]       # forward-only utility probing
    candidates: List[ExpertKey]        # solution of optimisation problem (4)
    epsilon: float

    @property
    def tuning_experts(self) -> List[ExpertKey]:
        return list(self.exploitation)

    def tuning_by_layer(self) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = {}
        for layer, expert in self.exploitation:
            grouped.setdefault(layer, []).append(expert)
        return grouped

    def exploration_by_layer(self) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = {}
        for layer, expert in self.exploration:
            grouped.setdefault(layer, []).append(expert)
        return grouped


def solve_candidate_selection(utilities: Dict[ExpertKey, float], budget: int) -> List[ExpertKey]:
    """Problem (4) for one participant: pick the ``budget`` highest-utility experts.

    The per-participant constraint makes the integer program separable, so the
    greedy top-k choice is exact.
    """
    if budget < 1:
        raise ValueError("tuning budget must be positive")
    ranked = sorted(utilities.items(), key=lambda item: (-item[1], item[0]))
    return [key for key, _ in ranked[:budget]]


class ExpertRoleAssigner:
    """Server-side role assignment across all participants."""

    def __init__(self, all_experts: Sequence[ExpertKey],
                 epsilon: Optional[EpsilonSchedule] = None, seed: int = 0) -> None:
        if not all_experts:
            raise ValueError("the model must expose at least one expert")
        self.all_experts: List[ExpertKey] = list(all_experts)
        self.epsilon = epsilon or EpsilonSchedule()
        self._rng = np.random.default_rng(seed)

    def assign(
        self,
        round_index: int,
        utilities: Dict[int, Dict[ExpertKey, float]],
        tuning_budgets: Dict[int, int],
    ) -> Dict[int, RoleAssignment]:
        """Produce a :class:`RoleAssignment` for every participant.

        Parameters
        ----------
        round_index:
            Current federated round (drives the ε schedule).
        utilities:
            ``{participant_id: {expert_key: utility}}`` as collected by the
            server; missing experts default to zero utility.
        tuning_budgets:
            ``{participant_id: B_tune_i}``.
        """
        epsilon = self.epsilon.value(round_index)
        assignments: Dict[int, RoleAssignment] = {}
        for participant_id, budget in tuning_budgets.items():
            participant_utilities = dict(utilities.get(participant_id, {}))
            for key in self.all_experts:
                participant_utilities.setdefault(key, 0.0)
            candidates = solve_candidate_selection(participant_utilities, budget)
            exploitation, exploration = self._split(candidates, participant_utilities, epsilon)
            assignments[participant_id] = RoleAssignment(
                participant_id=participant_id,
                exploitation=exploitation,
                exploration=exploration,
                candidates=candidates,
                epsilon=epsilon,
            )
        return assignments

    # ------------------------------------------------------------------ split
    def _split(self, candidates: List[ExpertKey], utilities: Dict[ExpertKey, float],
               epsilon: float) -> Tuple[List[ExpertKey], List[ExpertKey]]:
        """Exploitation/exploration split of one participant's candidate budget."""
        budget = len(candidates)
        if budget == 0:
            return [], []
        num_exploit = max(int(round(epsilon * budget)), 1)
        num_exploit = min(num_exploit, budget)
        num_explore = budget - num_exploit

        ranked = sorted(candidates, key=lambda key: (-utilities.get(key, 0.0), key))
        exploitation = ranked[:num_exploit]

        exploration: List[ExpertKey] = []
        if num_explore > 0:
            pool = [key for key in self.all_experts if key not in set(exploitation)]
            if pool:
                picked = self._rng.choice(len(pool), size=min(num_explore, len(pool)), replace=False)
                exploration = [pool[int(i)] for i in picked]
        return exploitation, exploration
