"""Adaptive merging of non-tuning experts (paper §5).

Given a participant's expert-role decision (which experts are tuning) and its
activation profile, this module

1. computes per-layer merge budgets (:mod:`repro.core.layer_budget`),
2. clusters the non-tuning experts of each layer by parameter similarity
   (:mod:`repro.core.clustering`), and
3. merges each cluster into a single frozen expert using importance weights
   ``alpha_e = f_e * a_e`` (activation frequency x mean attention, Eq. 2),

then assembles a *compact model*: the tuning experts preserved at full
precision and trainable, one merged expert per cluster frozen, and the gate
re-routed so original expert ids resolve to the right local slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import ActivationProfile
from ..models import ExpertFFN, ExpertRemap, MoETransformer
from .clustering import ClusteringResult, cluster_experts
from .config import FluxConfig
from .layer_budget import layer_budgets

ExpertKey = Tuple[int, int]


@dataclass
class CompactModelPlan:
    """Everything needed to build (and reason about) a participant's compact model."""

    tuning_experts: List[List[int]]            # per layer, original ids kept trainable
    preserved_frozen: List[List[int]]          # per layer, original ids kept frozen (e.g. exploration)
    clusters: List[List[List[int]]]            # per layer, merged groups of original ids
    layer_budgets: List[int]                   # merged-expert budget per layer
    clustering: Optional[ClusteringResult] = None

    def num_local_experts(self) -> int:
        total = 0
        for layer in range(len(self.tuning_experts)):
            total += (len(self.tuning_experts[layer]) + len(self.preserved_frozen[layer])
                      + len(self.clusters[layer]))
        return total

    def num_merged_inputs(self) -> int:
        """Number of original experts absorbed into merged slots."""
        return sum(len(members) for layer in self.clusters for members in layer)


def merge_weights(members: Sequence[int], frequencies: np.ndarray, attentions: np.ndarray,
                  strategy: str) -> np.ndarray:
    """Per-member merge coefficients alpha_e for one cluster."""
    members = list(members)
    if strategy == "average":
        return np.ones(len(members))
    freq = np.asarray([frequencies[e] for e in members], dtype=np.float64)
    if strategy == "frequency":
        weights = freq
    elif strategy == "attention_frequency":
        att = np.asarray([attentions[e] for e in members], dtype=np.float64)
        weights = freq * att
    else:
        raise ValueError(f"unknown merging strategy {strategy!r}")
    if weights.sum() <= 0:
        return np.ones(len(members))
    return weights


def merge_cluster(model: MoETransformer, layer: int, members: Sequence[int],
                  frequencies: np.ndarray, attentions: np.ndarray, strategy: str) -> ExpertFFN:
    """Merge the experts ``members`` of ``layer`` into one new frozen expert."""
    experts = [model.get_expert(layer, int(e)) for e in members]
    weights = merge_weights(members, frequencies, attentions, strategy)
    config = model.config
    merged = ExpertFFN.merge(experts, weights, d_model=config.d_model,
                             d_ff=experts[0].d_ff, activation=config.activation)
    merged.freeze()
    return merged


def plan_compact_model(
    model: MoETransformer,
    tuning_experts: Dict[int, Sequence[int]],
    profile: ActivationProfile,
    max_non_tuning_slots: int,
    config: Optional[FluxConfig] = None,
    preserved_frozen: Optional[Dict[int, Sequence[int]]] = None,
) -> CompactModelPlan:
    """Decide budgets and clusters for a participant's compact model.

    Parameters
    ----------
    model:
        The global model (original architecture).
    tuning_experts:
        ``{layer: [original expert ids]}`` chosen as tuning experts.
    profile:
        Activation profile driving budgets and merge weights.
    max_non_tuning_slots:
        Total budget :math:`B^{non}_i` of merged-expert slots across layers.
    preserved_frozen:
        Experts kept in original form but frozen (e.g. exploration experts);
        they occupy non-tuning slots but are not merged.
    """
    config = config or FluxConfig()
    num_layers = model.num_layers
    experts_per_layer = model.experts_per_layer()
    preserved_frozen = preserved_frozen or {}

    tuning: List[List[int]] = [sorted(set(int(e) for e in tuning_experts.get(l, []))) for l in range(num_layers)]
    frozen: List[List[int]] = []
    for layer in range(num_layers):
        keep = sorted(set(int(e) for e in preserved_frozen.get(layer, [])) - set(tuning[layer]))
        frozen.append(keep)

    # Experts to merge: everything not tuning and not preserved.
    non_tuning: List[List[int]] = []
    for layer in range(num_layers):
        excluded = set(tuning[layer]) | set(frozen[layer])
        non_tuning.append([e for e in range(experts_per_layer[layer]) if e not in excluded])

    # Per-layer merged budgets, bounded below so every layer with experts to
    # merge gets at least one slot.
    layers_needing_merge = [layer for layer in range(num_layers) if non_tuning[layer]]
    budget_total = max(max_non_tuning_slots, len(layers_needing_merge))
    if layers_needing_merge:
        freq_for_budget = [profile.frequencies[layer] for layer in layers_needing_merge]
        raw_budgets = layer_budgets(config.layer_budget_strategy, budget_total, freq_for_budget)
        budgets = [0] * num_layers
        for layer, value in zip(layers_needing_merge, raw_budgets):
            budgets[layer] = min(value, len(non_tuning[layer]))
    else:
        budgets = [0] * num_layers

    # Cluster the non-tuning experts of every layer.
    features = []
    ids = []
    for layer in range(num_layers):
        members = non_tuning[layer]
        ids.append(members)
        if members:
            weight_matrix = model.blocks[layer].moe.expert_weight_matrix()
            features.append(weight_matrix[np.asarray(members, dtype=np.int64)])
        else:
            features.append(np.zeros((0, 1)))
    clustering = cluster_experts(
        features, ids, budgets,
        mode=config.clustering_mode,
        pca_components=config.pca_components,
        iterations=config.kmeans_iterations,
        seed=config.seed,
    )
    return CompactModelPlan(
        tuning_experts=tuning,
        preserved_frozen=frozen,
        clusters=clustering.clusters_per_layer,
        layer_budgets=budgets,
        clustering=clustering,
    )


def build_compact_model(
    model: MoETransformer,
    plan: CompactModelPlan,
    profile: ActivationProfile,
    config: Optional[FluxConfig] = None,
) -> Tuple[MoETransformer, Dict[ExpertKey, ExpertKey], Dict[ExpertKey, ExpertKey]]:
    """Materialise the compact model described by ``plan``.

    Returns the compact model plus two slot maps in local ``(layer, slot)``
    coordinates: the trainable tuning experts and the preserved-but-frozen
    experts (exploration candidates), each mapped back to the original
    ``(layer, original_id)`` so the caller can translate trained parameters or
    utility probes into federated expert coordinates.
    """
    config = config or FluxConfig()
    compact = MoETransformer(model.config)
    compact.load_state_dict(model.state_dict())

    slot_to_original: Dict[ExpertKey, ExpertKey] = {}
    frozen_slot_to_original: Dict[ExpertKey, ExpertKey] = {}
    for layer in range(model.num_layers):
        tuning = plan.tuning_experts[layer]
        frozen = plan.preserved_frozen[layer]
        clusters = plan.clusters[layer]
        frequencies = profile.frequencies[layer]
        attentions = profile.attention_scores[layer]

        local_experts: List[ExpertFFN] = []
        mapping: Dict[int, int] = {}
        # Trainable tuning experts occupy the first slots.
        for slot, original in enumerate(sorted(tuning)):
            expert = ExpertFFN(model.config.d_model, model.get_expert(layer, original).d_ff,
                               activation=model.config.activation)
            expert.load_state(model.get_expert(layer, original).state())
            local_experts.append(expert)
            mapping[original] = slot
            slot_to_original[(layer, slot)] = (layer, original)
        # Preserved-but-frozen experts (exploration candidates) come next.
        for original in sorted(frozen):
            expert = ExpertFFN(model.config.d_model, model.get_expert(layer, original).d_ff,
                               activation=model.config.activation)
            expert.load_state(model.get_expert(layer, original).state())
            expert.freeze()
            slot = len(local_experts)
            local_experts.append(expert)
            mapping[original] = slot
            frozen_slot_to_original[(layer, slot)] = (layer, original)
        # One merged frozen expert per cluster.
        for members in clusters:
            merged = merge_cluster(model, layer, members, frequencies, attentions,
                                   config.merging_strategy)
            slot = len(local_experts)
            local_experts.append(merged)
            for member in members:
                mapping[member] = slot

        remap = ExpertRemap(model.experts_per_layer()[layer], mapping)
        compact.blocks[layer].moe.set_compact_experts(local_experts, remap)
    return compact, slot_to_original, frozen_slot_to_original
