"""The Flux federated fine-tuner: ties profiling, merging and assignment together.

:class:`FluxFineTuner` plugs the Flux participant pipeline into the shared
federated round loop (:class:`~repro.federated.orchestrator.FederatedFineTuner`).
Each round the server-side role assigner turns the latest per-participant
utilities into exploitation/exploration sets under every participant's tuning
budget; participants then profile (stale), merge, fine-tune and probe, and the
server FedAvg-aggregates the uploaded tuning-expert updates.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..data import SyntheticDataset
from ..federated import (
    FederatedFineTuner,
    Participant,
    ParticipantRoundResult,
    ParameterServer,
    RunConfig,
)
from ..systems import CostModel
from .assignment import ExpertRoleAssigner, RoleAssignment
from .config import FluxConfig
from .flux_client import FluxClientState


class FluxFineTuner(FederatedFineTuner):
    """Federated MoE fine-tuning with the full Flux pipeline."""

    name = "flux"

    def __init__(
        self,
        server: ParameterServer,
        participants: Sequence[Participant],
        test_dataset: SyntheticDataset,
        cost_models: Optional[Dict[int, CostModel]] = None,
        config: Optional[RunConfig] = None,
        flux_config: Optional[FluxConfig] = None,
    ) -> None:
        super().__init__(server, participants, test_dataset, cost_models=cost_models, config=config)
        self.flux_config = flux_config or FluxConfig()
        self.states: Dict[int, FluxClientState] = {
            participant.participant_id: FluxClientState(participant, self.flux_config)
            for participant in self.participants
        }
        all_experts = list(server.global_model.iter_expert_ids())
        self.assigner = ExpertRoleAssigner(all_experts, epsilon=self.flux_config.epsilon,
                                           seed=self.flux_config.seed)
        self._assignments: Dict[int, RoleAssignment] = {}

    # ------------------------------------------------------------------ hooks
    def before_round(self, round_index: int, selected: Sequence[Participant]) -> None:
        """Server-side expert role assignment from the latest utility reports."""
        utilities = {
            participant.participant_id: self.states[participant.participant_id].report_utilities()
            for participant in selected
        }
        budgets = {
            participant.participant_id: participant.resources.max_tuning_experts
            for participant in selected
        }
        self._assignments = self.assigner.assign(round_index, utilities, budgets)

    def participant_round(self, participant: Participant, round_index: int) -> ParticipantRoundResult:
        state = self.states[participant.participant_id]
        assignment = self._assignments.get(participant.participant_id)
        if assignment is None:
            # Participant was selected without a prior assignment (should not
            # happen in the normal loop); fall back to a fresh assignment.
            utilities = {participant.participant_id: state.report_utilities()}
            budgets = {participant.participant_id: participant.resources.max_tuning_experts}
            assignment = self.assigner.assign(round_index, utilities, budgets)[
                participant.participant_id]

        output = state.run_round(
            global_model=self.server.global_model,
            assignment=assignment,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.batch_size,
            max_batches=self.config.max_local_batches,
            local_iterations=self.config.local_iterations,
            cost_model=self.cost_model_for(participant),
        )
        return ParticipantRoundResult(
            updates=output.updates,
            breakdown=output.breakdown,
            train_loss=output.train_loss,
            overlap_profiling=self.flux_config.stale_profiling,
            report={
                "utilities": output.utilities,
                "num_local_experts": output.num_local_experts,
                "num_tuning_experts": output.num_tuning_experts,
                "epsilon": assignment.epsilon,
            },
        )

    # ------------------------------------------------------------- run state
    def export_run_state(self) -> Dict:
        """Flux's method-level cross-round state: the role-assignment RNG.

        The ε-greedy explorer draws from the assigner's private generator
        every round, so a resumed run must continue that stream exactly where
        the interrupted run left it (per-client profiling caches and
        utilities travel with :meth:`export_participant_state`).
        """
        state = super().export_run_state()
        state["assigner_rng"] = self.assigner._rng.bit_generator.state
        return state

    def import_run_state(self, state: Dict) -> None:
        super().import_run_state(state)
        self.assigner._rng = np.random.default_rng()
        self.assigner._rng.bit_generator.state = state["assigner_rng"]

    # ------------------------------------------------------- participant state
    def export_participant_state(self, participant_id: int) -> Dict:
        """Include the Flux per-client state (profiling cache + utilities)."""
        state = super().export_participant_state(participant_id)
        flux = self.states[participant_id]
        state["flux"] = (flux.profiler, flux.utilities, flux.latest_profile)
        return state

    def import_participant_state(self, participant_id: int, state: Dict) -> None:
        super().import_participant_state(participant_id, state)
        flux = self.states[participant_id]
        flux.profiler, flux.utilities, flux.latest_profile = state["flux"]

    # -------------------------------------------------------------- inspection
    def current_assignments(self) -> Dict[int, RoleAssignment]:
        """Most recent role assignments (for logging and tests)."""
        return dict(self._assignments)
