"""Per-participant Flux state: profiler, utility tracker, local pipeline.

The :class:`FluxClientState` bundles everything a participant keeps between
rounds — the stale-profiling cache and the expert-utility estimates — and
implements one participant's complete Flux round against a given global model
and role assignment:

1. (stale) quantized profiling;
2. compact-model construction (tuning + merged non-tuning experts);
3. data-aware local fine-tuning of the tuning experts;
4. forward-only gradient probing of the exploration experts;
5. utility refresh and expert-update packaging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from ..analysis import ActivationProfile
from ..data import Batch
from ..federated import ExpertUpdate, Participant
from ..models import MoETransformer
from ..systems import CostModel, RoundCostBreakdown
from .assignment import RoleAssignment
from .config import FluxConfig
from .gradient_estimation import estimate_expert_gradient
from .merging import build_compact_model, plan_compact_model
from .profiling import ProfilingOutcome, StaleProfiler
from .utility import UtilityTracker, expert_utility

ExpertKey = Tuple[int, int]


@dataclass
class FluxRoundOutput:
    """Everything a Flux participant hands back to the orchestrator."""

    updates: List[ExpertUpdate]
    breakdown: RoundCostBreakdown
    train_loss: float
    utilities: Dict[ExpertKey, float]
    profile: ActivationProfile
    num_local_experts: int
    num_tuning_experts: int


class FluxClientState:
    """Round-persistent Flux state for one participant."""

    def __init__(self, participant: Participant, config: FluxConfig) -> None:
        self.participant = participant
        self.config = config
        self.profiler = StaleProfiler(
            bits=config.profiling_bits,
            enabled=config.stale_profiling,
            max_batches=config.profiling_max_batches,
        )
        self.utilities = UtilityTracker(smoothing=config.utility_smoothing)
        self.latest_profile: Optional[ActivationProfile] = None

    # ------------------------------------------------------------- profiling
    def profile(self, global_model: MoETransformer, batches: List[Batch],
                cost_model: Optional[CostModel]) -> ProfilingOutcome:
        outcome = self.profiler.profile_for_round(global_model, batches, cost_model=cost_model)
        self.latest_profile = outcome.profile
        if not self.utilities.utilities:
            self._initialize_utilities(outcome.profile)
        return outcome

    def _initialize_utilities(self, profile: ActivationProfile) -> None:
        pairs = []
        for layer, frequencies in enumerate(profile.frequencies):
            for expert, frequency in enumerate(frequencies):
                pairs.append(((layer, expert), float(frequency)))
        self.utilities.initialize_from_frequencies(pairs)

    def report_utilities(self) -> Dict[ExpertKey, float]:
        return self.utilities.as_dict()

    # ----------------------------------------------------------------- round
    def run_round(
        self,
        global_model: MoETransformer,
        assignment: RoleAssignment,
        learning_rate: float,
        batch_size: int,
        max_batches: Optional[int],
        local_iterations: int,
        cost_model: Optional[CostModel] = None,
    ) -> FluxRoundOutput:
        """Execute one full Flux round for this participant."""
        participant = self.participant
        config = self.config
        max_seq_len = global_model.config.max_seq_len

        # 1. Quantized (stale) profiling on local data.
        profiling_batches = participant.local_batches(batch_size, max_batches=config.profiling_max_batches,
                                                      max_seq_len=max_seq_len)
        outcome = self.profile(global_model, profiling_batches, cost_model)
        profile = outcome.profile

        # 2. Compact model: tuning experts + preserved exploration experts +
        #    merged remaining non-tuning experts.
        tuning_by_layer = assignment.tuning_by_layer()
        exploration_by_layer = assignment.exploration_by_layer()
        non_tuning_budget = max(participant.resources.max_non_tuning_experts
                                - len(assignment.exploration), global_model.num_layers)
        plan = plan_compact_model(
            global_model,
            tuning_by_layer,
            profile,
            max_non_tuning_slots=non_tuning_budget,
            config=config,
            preserved_frozen=exploration_by_layer,
        )
        compact, tuning_slots, exploration_slots = build_compact_model(
            global_model, plan, profile, config)

        # 3. Data-aware local fine-tuning: prefer the samples that actually
        #    flow through the tuning experts (the paper's D^e_i).
        relevant_samples = self._relevant_samples(profile, assignment.tuning_experts)
        train_batches = participant.local_batches(
            batch_size, max_batches=max_batches,
            sample_ids=relevant_samples, max_seq_len=max_seq_len)
        result = participant.local_finetune(
            compact, train_batches,
            learning_rate=learning_rate,
            trainable_experts=set(tuning_slots.keys()),
            iterations=local_iterations,
        )

        # 4. Package expert updates (local slot -> original expert id).
        updates: List[ExpertUpdate] = []
        for (layer, slot), (_, original) in tuning_slots.items():
            token_weight = result.expert_token_counts.get((layer, original), result.num_samples)
            updates.append(ExpertUpdate(
                participant_id=participant.participant_id,
                layer=layer,
                expert=original,
                state=compact.expert_state(layer, slot),
                weight=float(max(token_weight, 1)),
            ))

        # 5. Utility refresh: backprop norms for tuning experts, forward-only
        #    estimates for exploration experts.
        fresh_utilities: Dict[ExpertKey, float] = {}
        for (layer, slot), (_, original) in tuning_slots.items():
            grad_norm = result.expert_grad_norms.get((layer, slot), 0.0)
            data_size = len(profile.samples_for_expert(layer, original)) or \
                result.expert_token_counts.get((layer, original), 0)
            fresh_utilities[(layer, original)] = expert_utility(max(data_size, 1), grad_norm)

        probe_samples = 0
        if exploration_slots and train_batches:
            probe_batches = self._probe_batches(train_batches, config.exploration_probe_samples,
                                                max_seq_len)
            probe_samples = sum(batch.batch_size for batch in probe_batches)
            for (layer, slot), (_, original) in exploration_slots.items():
                estimate = estimate_expert_gradient(
                    compact, probe_batches, layer, slot,
                    num_perturbations=config.exploration_perturbations,
                    sigma=config.exploration_sigma,
                    seed=config.seed + participant.participant_id + layer * 131 + slot,
                )
                data_size = len(profile.samples_for_expert(layer, original))
                fresh_utilities[(layer, original)] = expert_utility(max(data_size, 1), estimate.norm())
        self.utilities.observe_many(fresh_utilities)

        # 6. Cost accounting.
        breakdown = self._cost_breakdown(
            cost_model, outcome, plan, result, assignment, probe_samples)

        return FluxRoundOutput(
            updates=updates,
            breakdown=breakdown,
            train_loss=result.mean_loss,
            utilities=self.report_utilities(),
            profile=profile,
            num_local_experts=sum(compact.local_experts_per_layer()),
            num_tuning_experts=len(tuning_slots),
        )

    # -------------------------------------------------------------- internals
    def _probe_batches(self, train_batches: List[Batch], probe_samples: int,
                       max_seq_len: int) -> List[Batch]:
        """A small sub-batch used for forward-only gradient probing."""
        from ..data import collate

        first = train_batches[0]
        samples = first.samples[: max(probe_samples, 1)]
        return [collate(samples, pad_id=self.participant.dataset.vocab.PAD,
                        max_seq_len=max_seq_len)]

    @staticmethod
    def _relevant_samples(profile: ActivationProfile, tuning_experts) -> Optional[List[int]]:
        relevant: set = set()
        for layer, expert in tuning_experts:
            relevant.update(profile.samples_for_expert(layer, expert))
        return sorted(relevant) if relevant else None

    def _cost_breakdown(
        self,
        cost_model: Optional[CostModel],
        outcome: ProfilingOutcome,
        plan,
        result,
        assignment: RoleAssignment,
        probe_samples: int,
    ) -> RoundCostBreakdown:
        if cost_model is None:
            return RoundCostBreakdown()
        participant = self.participant
        num_tuning = len(assignment.exploitation)
        num_frozen = plan.num_local_experts() - num_tuning
        exploration_forwards = 2 * self.config.exploration_perturbations * len(assignment.exploration)
        probe_tokens = cost_model.scaled_tokens(probe_samples)
        from ..federated.communication import ExchangePlan

        exchange = ExchangePlan(
            download_experts=participant.resources.max_experts,
            upload_experts=num_tuning,
        )
        return RoundCostBreakdown(
            profiling=outcome.profiling_seconds,
            quantization=outcome.quantization_seconds,
            merging=cost_model.merging_time(plan.num_merged_inputs()),
            assignment=(cost_model.assignment_time(len(assignment.candidates))
                        + cost_model.forward_time(probe_tokens) * exploration_forwards),
            training=cost_model.training_time(
                cost_model.scaled_tokens(result.num_samples), num_tuning, num_frozen),
            communication=exchange.communication_seconds(cost_model),
        )
