"""Flux core: the paper's primary contribution.

Quantization-based (stale) profiling, adaptive layer-aware merging of
non-tuning experts, and dynamic exploration/exploitation expert role
assignment, assembled into the :class:`FluxFineTuner` federated fine-tuner.
"""

from .assignment import ExpertRoleAssigner, RoleAssignment, solve_candidate_selection
from .clustering import ClusteringResult, cluster_experts, pca_reduce
from .config import EpsilonSchedule, FluxConfig
from .finetuner import FluxFineTuner
from .flux_client import FluxClientState, FluxRoundOutput
from .gradient_estimation import (
    GradientEstimate,
    estimate_expert_gradient,
    gradient_cosine_distance,
    true_expert_gradient,
)
from .layer_budget import (
    adaptive_layer_budgets,
    layer_budgets,
    single_expert_budgets,
    uniform_layer_budgets,
)
from .merging import (
    CompactModelPlan,
    build_compact_model,
    merge_cluster,
    merge_weights,
    plan_compact_model,
)
from .profiling import ProfilingOutcome, QuantizedProfiler, StaleProfiler
from .utility import UtilityTracker, expert_utility, normalize_utilities

__all__ = [
    "FluxConfig",
    "EpsilonSchedule",
    "QuantizedProfiler",
    "StaleProfiler",
    "ProfilingOutcome",
    "adaptive_layer_budgets",
    "uniform_layer_budgets",
    "single_expert_budgets",
    "layer_budgets",
    "cluster_experts",
    "pca_reduce",
    "ClusteringResult",
    "merge_weights",
    "merge_cluster",
    "plan_compact_model",
    "build_compact_model",
    "CompactModelPlan",
    "expert_utility",
    "normalize_utilities",
    "UtilityTracker",
    "estimate_expert_gradient",
    "true_expert_gradient",
    "gradient_cosine_distance",
    "GradientEstimate",
    "ExpertRoleAssigner",
    "RoleAssignment",
    "solve_candidate_selection",
    "FluxClientState",
    "FluxRoundOutput",
    "FluxFineTuner",
]
