"""Expert utility: how much an expert contributes to fine-tuning (paper §6.1).

Equation (3) of the paper defines the utility of expert ``e`` on participant
``i`` as

.. math::
    u^e_i = |D^e_i| \\sqrt{\\tfrac{1}{|D^e_i|} \\sum_{k \\in D^e_i} \\|\\nabla g_k\\|^2 }

i.e. the amount of relevant local data scaled by the root-mean-square gradient
magnitude of the tokens flowing through the expert — the same importance-
sampling-inspired shape used by Oort for participant selection, applied here to
experts.  We compute it from the per-expert aggregate gradient norm and token
count reported by local training (or by forward-only estimation for
exploration experts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

ExpertKey = Tuple[int, int]


def expert_utility(data_size: float, gradient_norm: float) -> float:
    """Eq. (3) evaluated from aggregate statistics.

    With ``sum_k ||grad_k||^2`` approximated by the squared aggregate gradient
    norm of the expert, the expression reduces to
    ``sqrt(data_size) * gradient_norm``.
    """
    if data_size <= 0:
        return 0.0
    return float(np.sqrt(data_size) * max(gradient_norm, 0.0))


def normalize_utilities(utilities: Dict[ExpertKey, float]) -> Dict[ExpertKey, float]:
    """Scale utilities to [0, 1] (used for the first-round frequency init)."""
    if not utilities:
        return {}
    values = np.asarray(list(utilities.values()), dtype=np.float64)
    peak = values.max()
    if peak <= 0:
        return {key: 0.0 for key in utilities}
    return {key: float(value / peak) for key, value in utilities.items()}


@dataclass
class UtilityTracker:
    """Per-participant store of expert-utility estimates.

    Utilities are refreshed with an exponential moving average so that a noisy
    single-round estimate (especially the forward-only ones from exploration)
    does not overwrite an established estimate entirely.
    """

    smoothing: float = 0.5
    utilities: Dict[ExpertKey, float] = field(default_factory=dict)
    update_counts: Dict[ExpertKey, int] = field(default_factory=dict)

    def initialize_from_frequencies(self, frequencies: Iterable[Tuple[ExpertKey, float]]) -> None:
        """First-round initialisation: utility = normalised activation frequency."""
        raw = {key: float(value) for key, value in frequencies}
        self.utilities = normalize_utilities(raw)
        self.update_counts = {key: 0 for key in self.utilities}

    def observe(self, key: ExpertKey, utility: float) -> None:
        """Blend a fresh utility measurement into the tracked estimate."""
        utility = float(max(utility, 0.0))
        if key in self.utilities and self.update_counts.get(key, 0) > 0:
            blended = self.smoothing * self.utilities[key] + (1.0 - self.smoothing) * utility
        else:
            blended = utility
        self.utilities[key] = blended
        self.update_counts[key] = self.update_counts.get(key, 0) + 1

    def observe_many(self, measurements: Dict[ExpertKey, float]) -> None:
        for key, value in measurements.items():
            self.observe(key, value)

    def get(self, key: ExpertKey, default: float = 0.0) -> float:
        return self.utilities.get(key, default)

    def top_experts(self, count: int, layer: Optional[int] = None) -> List[ExpertKey]:
        """Expert keys with the highest utility (optionally within one layer)."""
        items = [
            (key, value) for key, value in self.utilities.items()
            if layer is None or key[0] == layer
        ]
        items.sort(key=lambda item: -item[1])
        return [key for key, _ in items[:count]]

    def stale_experts(self) -> List[ExpertKey]:
        """Experts whose utility has never been refreshed by a measurement."""
        return [key for key, count in self.update_counts.items() if count == 0]

    def as_dict(self) -> Dict[ExpertKey, float]:
        return dict(self.utilities)
