"""Forward-only gradient estimation for exploration experts (paper §6.2).

Exploration experts only need a gradient-magnitude estimate to refresh their
utility, so back-propagating through them would waste the very compute Flux is
trying to save.  Following BAFFLE/forward-gradient practice, the expert's
weights are perturbed with Gaussian noise and the loss difference between
positive and negative perturbations gives an unbiased directional-derivative
estimate; averaging over several perturbations yields an estimated gradient
vector (and its norm) without any backward pass through the expert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..autograd import no_grad
from ..data import Batch
from ..models import MoETransformer


@dataclass
class GradientEstimate:
    """Estimated gradient of one expert's parameters."""

    layer: int
    expert: int
    gradient: Dict[str, np.ndarray]
    num_perturbations: int

    def norm(self) -> float:
        total = sum(float((g ** 2).sum()) for g in self.gradient.values())
        return float(np.sqrt(total))

    def flatten(self) -> np.ndarray:
        return np.concatenate([g.reshape(-1) for g in self.gradient.values()])


def _mean_loss(model: MoETransformer, batches: Sequence[Batch]) -> float:
    with no_grad():
        losses = [
            model.compute_loss(batch.input_ids, labels=batch.labels,
                               attention_mask=batch.attention_mask).item()
            for batch in batches
        ]
    return float(np.mean(losses))


def estimate_expert_gradient(
    model: MoETransformer,
    batches: Sequence[Batch],
    layer: int,
    expert: int,
    num_perturbations: int = 4,
    sigma: float = 1e-2,
    seed: int = 0,
) -> GradientEstimate:
    """Estimate the loss gradient w.r.t. one expert's weights, forward passes only.

    For each perturbation a Gaussian direction ``delta`` is sampled per weight
    matrix; the symmetric loss difference ``(L(w + sigma*delta) - L(w -
    sigma*delta)) / (2*sigma)`` scales ``delta`` to produce one gradient
    sample.  Samples are averaged over ``num_perturbations`` draws.  The
    expert's weights are restored exactly afterwards.
    """
    if num_perturbations < 1:
        raise ValueError("num_perturbations must be positive")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if not batches:
        raise ValueError("gradient estimation requires at least one batch")

    rng = np.random.default_rng(seed)
    target = model.get_expert(layer, expert)
    original = target.state()
    accumulated = {name: np.zeros_like(value) for name, value in original.items()}

    try:
        for _ in range(num_perturbations):
            direction = {name: rng.standard_normal(value.shape) for name, value in original.items()}
            target.load_state({name: original[name] + sigma * direction[name] for name in original})
            loss_plus = _mean_loss(model, batches)
            target.load_state({name: original[name] - sigma * direction[name] for name in original})
            loss_minus = _mean_loss(model, batches)
            coefficient = (loss_plus - loss_minus) / (2.0 * sigma)
            for name in original:
                accumulated[name] += coefficient * direction[name]
    finally:
        target.load_state(original)

    gradient = {name: value / num_perturbations for name, value in accumulated.items()}
    return GradientEstimate(layer=layer, expert=expert, gradient=gradient,
                            num_perturbations=num_perturbations)


def true_expert_gradient(model: MoETransformer, batches: Sequence[Batch],
                         layer: int, expert: int) -> Dict[str, np.ndarray]:
    """Ground-truth expert gradient via backpropagation (for Figure 18)."""
    if not batches:
        raise ValueError("gradient computation requires at least one batch")
    model.zero_grad()
    for param in model.parameters():
        param.requires_grad = False
    target = model.get_expert(layer, expert)
    for param in target.parameters():
        param.requires_grad = True

    for batch in batches:
        loss = model.compute_loss(batch.input_ids, labels=batch.labels,
                                  attention_mask=batch.attention_mask)
        loss = loss * (1.0 / len(batches))
        loss.backward()

    names = ("w_gate", "w_up", "w_down")
    gradient = {}
    for name in names:
        param = getattr(target, name).weight
        gradient[name] = param.grad.copy() if param.grad is not None else np.zeros_like(param.data)
    model.zero_grad()
    return gradient


def gradient_cosine_distance(estimate: GradientEstimate, truth: Dict[str, np.ndarray]) -> float:
    """Cosine distance between an estimated and the true expert gradient."""
    est = estimate.flatten()
    ref = np.concatenate([truth[name].reshape(-1) for name in estimate.gradient])
    denom = np.linalg.norm(est) * np.linalg.norm(ref)
    if denom == 0:
        return 1.0
    return float(1.0 - est @ ref / denom)
