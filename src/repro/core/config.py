"""Configuration of the Flux system."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpsilonSchedule:
    """Exploration/exploitation balance over rounds (the paper's dynamic ε).

    ε is the *exploitation* fraction: a fraction ε of each participant's
    candidate experts is chosen by utility, the remaining (1-ε) is sampled at
    random for exploration.  The dynamic schedule increases ε as utility
    estimates become more reliable.
    """

    initial: float = 0.3
    final: float = 0.9
    warmup_rounds: int = 10
    dynamic: bool = True

    def __post_init__(self) -> None:
        for name in ("initial", "final"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} epsilon must be in [0, 1]")
        if self.warmup_rounds < 1:
            raise ValueError("warmup_rounds must be positive")

    def value(self, round_index: int) -> float:
        """ε for a given round."""
        if not self.dynamic:
            return self.initial
        progress = min(round_index / self.warmup_rounds, 1.0)
        return self.initial + (self.final - self.initial) * progress

    @classmethod
    def fixed(cls, epsilon: float) -> "EpsilonSchedule":
        """A constant-ε schedule (used by the Figure 19 ablation)."""
        return cls(initial=epsilon, final=epsilon, dynamic=False)


@dataclass
class FluxConfig:
    """All knobs of the Flux pipeline.

    Defaults follow the paper: 4-bit profiling with stale overlap, adaptive
    per-layer merge budgets, similarity clustering with importance-based
    (frequency x attention) merge weights, and dynamic ε role assignment with
    forward-only gradient estimation for exploration experts.
    """

    # --- profiling (§4)
    profiling_bits: int = 4
    stale_profiling: bool = True
    profiling_max_batches: int = 4

    # --- merging (§5)
    layer_budget_strategy: str = "adaptive"    # "adaptive" | "uniform" | "single"
    merging_strategy: str = "attention_frequency"  # "attention_frequency" | "frequency" | "average"
    clustering_mode: str = "fused"             # "fused" | "per_layer"
    pca_components: int = 8
    kmeans_iterations: int = 10

    # --- role assignment (§6)
    epsilon: EpsilonSchedule = field(default_factory=EpsilonSchedule)
    exploration_perturbations: int = 2
    exploration_sigma: float = 1e-2
    exploration_probe_samples: int = 4   # samples used per forward-only gradient probe
    utility_smoothing: float = 0.5   # EMA factor when refreshing utilities

    # --- misc
    seed: int = 0

    def __post_init__(self) -> None:
        if self.layer_budget_strategy not in ("adaptive", "uniform", "single"):
            raise ValueError(f"unknown layer budget strategy {self.layer_budget_strategy!r}")
        if self.merging_strategy not in ("attention_frequency", "frequency", "average"):
            raise ValueError(f"unknown merging strategy {self.merging_strategy!r}")
        if self.clustering_mode not in ("fused", "per_layer"):
            raise ValueError(f"unknown clustering mode {self.clustering_mode!r}")
        if self.profiling_bits not in (2, 3, 4, 8):
            raise ValueError("profiling_bits must be one of 2, 3, 4, 8")
        if not 0.0 <= self.utility_smoothing <= 1.0:
            raise ValueError("utility_smoothing must be in [0, 1]")
        if self.exploration_perturbations < 1:
            raise ValueError("exploration_perturbations must be positive")
        if self.exploration_probe_samples < 1:
            raise ValueError("exploration_probe_samples must be positive")
