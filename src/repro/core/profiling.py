"""Quantization-based local profiling with stale-profiling overlap (paper §4).

Running the full-precision model just to measure expert activation is exactly
the cost Flux wants to avoid on constrained participants.  The profiler instead
quantizes the model to a low bit-width, runs forward-only passes over (a subset
of) the local data, and reads the per-expert activation frequencies, attention
scores and relevant-sample sets off the routing records.

Stale profiling decouples *when the profile is measured* from *when it is
used*: the merge/assignment decisions of round ``r`` consume the profile
measured on the model of round ``r-1`` while the fresh profile is computed
concurrently with server aggregation, hiding its latency (Figure 7(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis import ActivationProfile, estimation_error, profile_activation
from ..data import Batch
from ..models import MoETransformer
from ..quantization import quantize_model
from ..systems import CostModel


@dataclass
class ProfilingOutcome:
    """A profile plus the bookkeeping needed for cost accounting."""

    profile: ActivationProfile
    bits: int
    num_tokens: int
    stale: bool
    quantization_seconds: float = 0.0
    profiling_seconds: float = 0.0


class QuantizedProfiler:
    """Profiles expert activation with a low-bit copy of the model."""

    def __init__(self, bits: int = 4, max_batches: Optional[int] = None) -> None:
        if bits not in (2, 3, 4, 8):
            raise ValueError("profiling bit-width must be one of 2, 3, 4, 8")
        self.bits = bits
        self.max_batches = max_batches

    def profile(self, model: MoETransformer, batches: Sequence[Batch],
                cost_model: Optional[CostModel] = None) -> ProfilingOutcome:
        """Quantize ``model`` and measure expert activation on ``batches``."""
        if not batches:
            raise ValueError("profiling requires at least one batch")
        used = list(batches[: self.max_batches] if self.max_batches else batches)
        quantized = quantize_model(model, self.bits)
        profile = profile_activation(quantized, used)
        num_tokens = sum(batch.num_tokens for batch in used)
        num_samples = sum(batch.batch_size for batch in used)

        quantization_seconds = 0.0
        profiling_seconds = 0.0
        if cost_model is not None:
            total_experts = sum(model.experts_per_layer())
            quantization_seconds = cost_model.quantization_time(total_experts)
            profiling_seconds = cost_model.profiling_time(
                cost_model.scaled_tokens(num_samples), self.bits)
        return ProfilingOutcome(
            profile=profile,
            bits=self.bits,
            num_tokens=num_tokens,
            stale=False,
            quantization_seconds=quantization_seconds,
            profiling_seconds=profiling_seconds,
        )

    def reference_profile(self, model: MoETransformer, batches: Sequence[Batch]) -> ActivationProfile:
        """Full-precision profile, used to measure estimation error (Figure 5)."""
        used = list(batches[: self.max_batches] if self.max_batches else batches)
        return profile_activation(model, used)


class StaleProfiler:
    """Round-pipelined profiling: use last round's profile, refresh in parallel.

    Usage per round::

        profile = stale.profile_for_round(model, batches, cost_model)
        # ... merge, assign, fine-tune using `profile` ...
        # the outcome's profiling/quantization seconds are charged as
        # overlap-able (hidden behind aggregation) by the orchestrator.

    When stale profiling is disabled the profiler simply measures fresh every
    round and its cost is charged on the critical path.
    """

    def __init__(self, bits: int = 4, enabled: bool = True,
                 max_batches: Optional[int] = None) -> None:
        self.enabled = enabled
        self._profiler = QuantizedProfiler(bits=bits, max_batches=max_batches)
        self._previous: Optional[ActivationProfile] = None

    @property
    def bits(self) -> int:
        return self._profiler.bits

    def profile_for_round(self, model: MoETransformer, batches: Sequence[Batch],
                          cost_model: Optional[CostModel] = None) -> ProfilingOutcome:
        """Return the profile to use this round and refresh the cached one.

        With stale profiling enabled the returned profile is the one measured
        last round (when available) and the freshly measured profile replaces
        the cache; the measurement cost is reported on the outcome so the
        caller can overlap it with aggregation.  Without stale profiling the
        fresh measurement is used directly.
        """
        fresh = self._profiler.profile(model, batches, cost_model=cost_model)
        if not self.enabled or self._previous is None:
            self._previous = fresh.profile
            return fresh
        outcome = ProfilingOutcome(
            profile=self._previous,
            bits=fresh.bits,
            num_tokens=fresh.num_tokens,
            stale=True,
            quantization_seconds=fresh.quantization_seconds,
            profiling_seconds=fresh.profiling_seconds,
        )
        self._previous = fresh.profile
        return outcome

    def staleness_error(self, model: MoETransformer, batches: Sequence[Batch]) -> float:
        """Estimation error (%) of the cached profile vs a fresh measurement."""
        if self._previous is None:
            return 0.0
        fresh = self._profiler.profile(model, batches)
        return estimation_error(fresh.profile, self._previous)
