"""Per-layer merge budgets for non-tuning experts (paper §5.1, Eq. 1).

Given a participant's total non-tuning budget :math:`B^{non}_i`, Flux allocates
per-layer budgets so that (a) earlier layers — whose merge errors propagate and
amplify through the rest of the network — keep more experts, and (b) layers
with balanced activation (high merge damage) keep more experts than layers with
skewed activation.  Equation (1) of the paper:

.. math::
    B^{non}_i(l) = \\left\\lfloor \\frac{b^l_i}{\\sum_k b^k_i} B^{non}_i \\right\\rfloor,
    \\qquad b^l_i = \\frac{L - l + 1}{v^l_i}

where :math:`v^l_i` is the variance of layer ``l``'s activation frequencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def adaptive_layer_budgets(total_budget: int, frequencies: Sequence[np.ndarray],
                           min_per_layer: int = 1, epsilon: float = 1e-6) -> List[int]:
    """Allocate ``total_budget`` merged-expert slots across layers per Eq. (1)."""
    num_layers = len(frequencies)
    _validate(total_budget, num_layers, min_per_layer)
    depth_weight = np.arange(num_layers, 0, -1, dtype=np.float64)  # L - l + 1
    variances = np.asarray([float(np.var(freq)) for freq in frequencies]) + epsilon
    scores = depth_weight / variances
    return _largest_remainder(scores, total_budget, num_layers, min_per_layer, frequencies)


def uniform_layer_budgets(total_budget: int, num_layers: int,
                          min_per_layer: int = 1) -> List[int]:
    """Spread the budget evenly across layers (the 'Uniform layer size' baseline)."""
    _validate(total_budget, num_layers, min_per_layer)
    scores = np.ones(num_layers)
    return _largest_remainder(scores, total_budget, num_layers, min_per_layer, None)


def single_expert_budgets(num_layers: int) -> List[int]:
    """One merged expert per layer (the 'Single non-tuning expert' baseline)."""
    if num_layers < 1:
        raise ValueError("num_layers must be positive")
    return [1] * num_layers


def layer_budgets(strategy: str, total_budget: int, frequencies: Sequence[np.ndarray],
                  min_per_layer: int = 1) -> List[int]:
    """Dispatch on the configured layer-budget strategy."""
    if strategy == "adaptive":
        return adaptive_layer_budgets(total_budget, frequencies, min_per_layer=min_per_layer)
    if strategy == "uniform":
        return uniform_layer_budgets(total_budget, len(frequencies), min_per_layer=min_per_layer)
    if strategy == "single":
        return single_expert_budgets(len(frequencies))
    raise ValueError(f"unknown layer budget strategy {strategy!r}")


def _validate(total_budget: int, num_layers: int, min_per_layer: int) -> None:
    if num_layers < 1:
        raise ValueError("at least one layer is required")
    if min_per_layer < 1:
        raise ValueError("min_per_layer must be at least 1")
    if total_budget < num_layers * min_per_layer:
        raise ValueError(
            f"total budget {total_budget} cannot give every one of {num_layers} layers "
            f"at least {min_per_layer} merged expert(s)"
        )


def _largest_remainder(scores: np.ndarray, total_budget: int, num_layers: int,
                       min_per_layer: int, frequencies: Optional[Sequence[np.ndarray]]) -> List[int]:
    """Proportional allocation with a per-layer floor, per-layer capacity cap and exact total.

    A layer can never need more merged slots than it has experts, so budgets
    are capped at the layer's expert count and the excess is redistributed to
    layers that still have headroom (highest score first).
    """
    scores = np.maximum(np.asarray(scores, dtype=np.float64), 1e-12)
    if frequencies is not None:
        capacities = np.asarray([len(freq) for freq in frequencies], dtype=int)
    else:
        capacities = np.full(num_layers, np.iinfo(np.int64).max, dtype=np.int64)
    remaining = total_budget - num_layers * min_per_layer
    shares = scores / scores.sum() * remaining
    budgets = np.floor(shares).astype(int) + min_per_layer
    leftover = total_budget - budgets.sum()
    if leftover > 0:
        fractional = shares - np.floor(shares)
        for layer in np.argsort(-fractional)[:leftover]:
            budgets[layer] += 1
    # Enforce capacity caps and redistribute the excess.
    budgets = np.minimum(budgets, capacities)
    deficit = total_budget - int(budgets.sum())
    if deficit > 0:
        for layer in np.argsort(-scores):
            headroom = int(capacities[layer] - budgets[layer])
            if headroom <= 0:
                continue
            grant = min(headroom, deficit)
            budgets[layer] += grant
            deficit -= grant
            if deficit == 0:
                break
    return budgets.tolist()
