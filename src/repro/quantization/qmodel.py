"""Quantized model construction.

:func:`quantize_model` produces a *new* model whose parameters have been
round-tripped through low-bit quantization.  The result is a regular
:class:`~repro.models.transformer.MoETransformer`, so it can run forward
passes (for profiling) or even be fine-tuned (the FMQ baseline) — with the
precision error that entails.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..models import MoETransformer
from .quantizer import quantize_array


def quantize_model(model: MoETransformer, bits: int,
                   skip_substrings: Optional[Iterable[str]] = ("embedding", "norm")) -> MoETransformer:
    """Return a copy of ``model`` with weights quantized to ``bits`` bits.

    Parameters
    ----------
    model:
        Source full-precision model (left untouched).
    bits:
        Quantization bit-width (2, 3, 4 or 8).
    skip_substrings:
        Parameter-name substrings to keep in full precision.  Embeddings and
        norms are kept by default, matching common MoE quantization practice
        where only the large linear weights are compressed.
    """
    skip = tuple(skip_substrings or ())
    clone = MoETransformer(model.config)
    state = model.state_dict()
    quantized_state = {}
    for name, value in state.items():
        if any(token in name for token in skip) or value.ndim < 2:
            quantized_state[name] = value
        else:
            quantized_state[name] = quantize_array(value, bits).dequantize()
    clone.load_state_dict(quantized_state)
    return clone


def quantized_model_bytes(model: MoETransformer, bits: int,
                          skip_substrings: Optional[Iterable[str]] = ("embedding", "norm"),
                          full_precision_bytes: float = 4.0) -> float:
    """Storage footprint (bytes) of the quantized version of ``model``."""
    skip = tuple(skip_substrings or ())
    total = 0.0
    for name, value in model.state_dict().items():
        if any(token in name for token in skip) or value.ndim < 2:
            total += value.size * full_precision_bytes
        else:
            total += value.size * bits / 8.0
    return total
