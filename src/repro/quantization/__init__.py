"""Weight quantization substrate (profiling models, FMQ baseline)."""

from .qmodel import quantize_model, quantized_model_bytes
from .quantizer import (
    PACKABLE_BITS,
    SUPPORTED_BITS,
    QuantizedArray,
    dequantize_array,
    dequantize_state_dict,
    pack_int_codes,
    quantization_error,
    quantize_array,
    quantize_state_dict,
    quantized_nbytes,
    state_dict_nbytes,
    unpack_int_codes,
)

__all__ = [
    "SUPPORTED_BITS",
    "PACKABLE_BITS",
    "pack_int_codes",
    "unpack_int_codes",
    "QuantizedArray",
    "quantize_array",
    "dequantize_array",
    "quantization_error",
    "quantize_state_dict",
    "dequantize_state_dict",
    "state_dict_nbytes",
    "quantized_nbytes",
    "quantize_model",
    "quantized_model_bytes",
]
