"""Low-bit weight quantization used for profiling and the FMQ baseline.

Symmetric per-row (per-output-channel) integer quantization: each row of a
weight matrix is scaled into the representable integer range for the chosen
bit-width and rounded.  Dequantisation multiplies back by the per-row scale.

The key property the paper relies on (§4.1) is that a quantized model's
*routing decisions* closely track the full-precision model while its
*fine-tuning* behaviour degrades with accumulated precision error — both of
which emerge naturally from actually rounding the weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


SUPPORTED_BITS = (2, 3, 4, 8)


@dataclass
class QuantizedArray:
    """A quantized weight matrix: integer codes plus per-row scales."""

    codes: np.ndarray
    scales: np.ndarray
    bits: int
    original_shape: tuple
    #: dtype of the source weights; dequantisation reconstructs in this dtype
    #: so quantizing a float32 model does not silently upcast it to float64
    dtype: str = "float64"

    def dequantize(self) -> np.ndarray:
        """Reconstruct the (lossy) floating-point weights in the source dtype."""
        values = (self.codes * self.scales[:, None]).reshape(self.original_shape)
        return values.astype(self.dtype, copy=False)

    @property
    def nbytes(self) -> float:
        """Storage footprint in bytes (codes packed at ``bits`` per value)."""
        return self.codes.size * self.bits / 8.0 + self.scales.size * 4.0


def quantize_array(weights: np.ndarray, bits: int) -> QuantizedArray:
    """Symmetric per-row quantization of a 2-D (or flattened) weight array."""
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"unsupported bit width {bits}; supported: {SUPPORTED_BITS}")
    original_shape = weights.shape
    matrix = weights.reshape(original_shape[0], -1) if weights.ndim > 1 else weights.reshape(1, -1)
    qmax = 2 ** (bits - 1) - 1
    row_absmax = np.abs(matrix).max(axis=1)
    scales = np.where(row_absmax > 0, row_absmax / qmax, 1.0)
    codes = np.clip(np.round(matrix / scales[:, None]), -qmax - 1, qmax).astype(np.int32)
    dtype = str(weights.dtype) if weights.dtype.kind == "f" else "float64"
    return QuantizedArray(codes=codes, scales=scales, bits=bits,
                          original_shape=original_shape, dtype=dtype)


def dequantize_array(quantized: QuantizedArray) -> np.ndarray:
    """Convenience wrapper around :meth:`QuantizedArray.dequantize`."""
    return quantized.dequantize()


#: bit widths whose codes pack densely into whole bytes (wire transport)
PACKABLE_BITS = (2, 4, 8)


def pack_int_codes(codes: np.ndarray, bits: int) -> bytes:
    """Pack signed quantization codes densely at ``bits`` per value.

    Codes are shifted by ``2**(bits-1)`` into unsigned range and packed
    little-end-first within each byte (the first value occupies the lowest
    bits).  Only byte-aligned widths are supported; 3-bit codes stay an
    in-memory-only format.
    """
    if bits not in PACKABLE_BITS:
        raise ValueError(f"cannot byte-pack {bits}-bit codes; packable: {PACKABLE_BITS}")
    offset = 1 << (bits - 1)
    flat = codes.astype(np.int64).reshape(-1) + offset
    if flat.size and (flat.min() < 0 or flat.max() >= (1 << bits)):
        raise ValueError(f"codes outside the {bits}-bit range")
    values = flat.astype(np.uint8)
    per_byte = 8 // bits
    if per_byte == 1:
        return values.tobytes()
    pad = (-values.size) % per_byte
    if pad:
        values = np.concatenate([values, np.zeros(pad, dtype=np.uint8)])
    packed = np.zeros(values.size // per_byte, dtype=np.uint8)
    for slot in range(per_byte):
        packed |= values[slot::per_byte] << (slot * bits)
    return packed.tobytes()


def unpack_int_codes(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_int_codes`: recover ``count`` signed codes."""
    if bits not in PACKABLE_BITS:
        raise ValueError(f"cannot byte-unpack {bits}-bit codes; packable: {PACKABLE_BITS}")
    per_byte = 8 // bits
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size * per_byte < count:
        raise ValueError("packed payload too short for the declared code count")
    values = np.zeros(raw.size * per_byte, dtype=np.uint8)
    mask = (1 << bits) - 1
    for slot in range(per_byte):
        values[slot::per_byte] = (raw >> (slot * bits)) & mask
    offset = 1 << (bits - 1)
    return values[:count].astype(np.int32) - offset


def quantization_error(weights: np.ndarray, bits: int) -> float:
    """Relative L2 reconstruction error introduced by quantizing ``weights``."""
    reconstructed = quantize_array(weights, bits).dequantize()
    denom = np.linalg.norm(weights)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(weights - reconstructed) / denom)


def quantize_state_dict(state: Dict[str, np.ndarray], bits: int) -> Dict[str, QuantizedArray]:
    """Quantize every entry of a ``state_dict``."""
    return {name: quantize_array(value, bits) for name, value in state.items()}


def dequantize_state_dict(quantized: Dict[str, QuantizedArray]) -> Dict[str, np.ndarray]:
    """Dequantize every entry back to floating point."""
    return {name: q.dequantize() for name, q in quantized.items()}


def state_dict_nbytes(state: Dict[str, np.ndarray], bytes_per_param: float = 4.0) -> float:
    """Storage footprint of a full-precision state dict."""
    return float(sum(value.size for value in state.values()) * bytes_per_param)


def quantized_nbytes(quantized: Dict[str, QuantizedArray]) -> float:
    """Storage footprint of a quantized state dict."""
    return float(sum(q.nbytes for q in quantized.values()))
