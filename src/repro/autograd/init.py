"""Parameter initialisation helpers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming/He uniform initialisation keyed on fan-in (the last dimension)."""
    rng = rng or np.random.default_rng()
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation using fan-in + fan-out."""
    rng = rng or np.random.default_rng()
    fan_in = shape[-1]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def normal_(shape: Tuple[int, ...], mean: float = 0.0, std: float = 0.02,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gaussian initialisation with the given mean and standard deviation."""
    rng = rng or np.random.default_rng()
    return rng.normal(mean, std, size=shape)


def zeros_(shape) -> np.ndarray:
    """All-zeros initialisation."""
    return np.zeros(shape)


def ones_(shape) -> np.ndarray:
    """All-ones initialisation."""
    return np.ones(shape)
