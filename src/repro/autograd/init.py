"""Parameter initialisation helpers.

Every helper honours the tensor engine's default dtype (see
:func:`repro.autograd.set_default_dtype`).  Random draws always happen in
float64 and are cast afterwards, so a seeded model built under float32 has
bit-identically-rounded parameters of the float64 model built from the same
seed — the property the dispatch/dtype equivalence tests rely on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import get_default_dtype


def _cast(values: np.ndarray, dtype) -> np.ndarray:
    return values.astype(dtype or get_default_dtype(), copy=False)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                    dtype=None) -> np.ndarray:
    """Kaiming/He uniform initialisation keyed on fan-in (the last dimension)."""
    rng = rng or np.random.default_rng()
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation using fan-in + fan-out."""
    rng = rng or np.random.default_rng()
    fan_in = shape[-1]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def normal_(shape: Tuple[int, ...], mean: float = 0.0, std: float = 0.02,
            rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    """Gaussian initialisation with the given mean and standard deviation."""
    rng = rng or np.random.default_rng()
    return _cast(rng.normal(mean, std, size=shape), dtype)


def zeros_(shape, dtype=None) -> np.ndarray:
    """All-zeros initialisation."""
    return np.zeros(shape, dtype=dtype or get_default_dtype())


def ones_(shape, dtype=None) -> np.ndarray:
    """All-ones initialisation."""
    return np.ones(shape, dtype=dtype or get_default_dtype())
