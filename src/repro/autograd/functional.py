"""Functional building blocks on top of :class:`repro.autograd.Tensor`.

These helpers mirror ``torch.nn.functional`` for the operations the MoE
substrate needs: embedding lookup, cross-entropy loss, layer normalisation and
dropout.  Each function is differentiable with respect to its tensor inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, is_grad_enabled


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` selected by integer ``indices``.

    Parameters
    ----------
    weight:
        ``(vocab_size, dim)`` embedding matrix.
    indices:
        Integer array of arbitrary shape; the result has shape
        ``indices.shape + (dim,)``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]
    requires = is_grad_enabled() and weight.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(weight,) if requires else ())

    def _backward() -> None:
        if weight.requires_grad:
            grad = np.zeros_like(weight.data)
            np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, weight.data.shape[-1]))
            weight._accumulate(grad, owned=True)

    out._backward = _backward
    return out


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
    reduction: str = "mean",
) -> Tensor:
    """Cross-entropy loss over the last axis of ``logits``.

    Parameters
    ----------
    logits:
        ``(..., num_classes)`` unnormalised scores.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    ignore_index:
        Target value to exclude from the loss (e.g. padding tokens).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    safe_targets = np.where(mask, flat_targets, 0)

    log_probs = flat_logits.log_softmax(axis=-1)
    rows = np.arange(flat_targets.shape[0])
    picked = log_probs[rows, safe_targets]
    losses = -picked * Tensor(mask.astype(log_probs.data.dtype))

    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    denom = max(int(mask.sum()), 1)
    return losses.sum() * (1.0 / denom)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation across the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered / ((var + eps) ** 0.5)
    return normed * weight + bias


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square normalisation (LLaMA-style, no mean subtraction)."""
    mean_sq = (x * x).mean(axis=-1, keepdims=True)
    normed = x / ((mean_sq + eps) ** 0.5)
    return normed * weight


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` while training."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (thin wrapper kept for API parity)."""
    return x.softmax(axis=axis)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out
