"""NumPy-based automatic differentiation and neural-network substrate.

This package replaces PyTorch for the reproduction: a reverse-mode autograd
:class:`Tensor`, ``nn``-style modules, functional ops and optimisers.
"""

from . import functional
from .grad_utils import (
    apply_gradients,
    collect_gradients,
    flatten_parameters,
    gradient_norm,
    parameter_delta,
)
from .nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    RMSNorm,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    expand_rows,
    get_default_dtype,
    index_add,
    is_grad_enabled,
    no_grad,
    place_rows,
    scatter_rows,
    set_default_dtype,
    stack,
    take_rows,
    where,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "stack",
    "concatenate",
    "where",
    "scatter_rows",
    "index_add",
    "expand_rows",
    "take_rows",
    "place_rows",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "RMSNorm",
    "Dropout",
    "ModuleList",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "gradient_norm",
    "collect_gradients",
    "apply_gradients",
    "flatten_parameters",
    "parameter_delta",
]
