"""Minimal ``torch.nn``-style module system for the reproduction.

Provides :class:`Module` (parameter registration, ``state_dict``/``load_state_dict``,
train/eval modes) plus the concrete layers used by the MoE transformer:
:class:`Linear`, :class:`Embedding`, :class:`LayerNorm`, :class:`RMSNorm`,
:class:`Dropout`, and container types :class:`ModuleList` / :class:`Sequential`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .init import kaiming_uniform, normal_, ones_, zeros_
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: str = "") -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ----------------------------------------------------------- registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------- iteration
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------ state
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping from parameter names to copies of their data."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> List[str]:
        """Load parameter values from ``state``.

        Returns the list of missing keys (parameters present in the module but
        absent from ``state``).  With ``strict=True`` a missing or
        shape-mismatched key raises ``KeyError``/``ValueError``.
        """
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        if strict and missing:
            raise KeyError(f"missing parameters in state_dict: {missing}")
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                if strict:
                    raise ValueError(
                        f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                    )
                continue
            param.data[...] = value
        return missing

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        total = 0
        for param in self.parameters():
            if trainable_only and not param.requires_grad:
                continue
            total += param.data.size
        return total

    # ------------------------------------------------------------------ modes
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (no gradient accumulation)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------- call
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        self.weight = Parameter(kaiming_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(zeros_(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = rng or np.random.default_rng()
        self.weight = Parameter(normal_((num_embeddings, embedding_dim), std=0.02, rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class LayerNorm(Module):
    """Standard layer normalisation with learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(ones_(dim))
        self.bias = Parameter(zeros_(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class RMSNorm(Module):
    """RMS normalisation (no centering), as used in LLaMA-family models."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(ones_(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.rms_norm(x, self.weight, eps=self.eps)


class Dropout(Module):
    """Inverted dropout layer; a no-op in eval mode."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class ModuleList(Module):
    """A list of sub-modules registered in order."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __setitem__(self, index: int, module: Module) -> None:
        self._items[index] = module
        self._modules[str(index)] = module

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)


class Sequential(Module):
    """Feed-forward composition of modules."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            index = len(self._items)
            self._items.append(module)
            self._modules[str(index)] = module

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
