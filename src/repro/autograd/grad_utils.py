"""Utilities for inspecting and manipulating gradients of module trees."""

from __future__ import annotations

from typing import Dict

import numpy as np

from .nn import Module


def gradient_norm(module: Module) -> float:
    """Global L2 norm of all gradients currently stored in ``module``."""
    total = 0.0
    for param in module.parameters():
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    return float(np.sqrt(total))


def collect_gradients(module: Module) -> Dict[str, np.ndarray]:
    """Return a copy of every non-``None`` gradient keyed by parameter name."""
    grads: Dict[str, np.ndarray] = {}
    for name, param in module.named_parameters():
        if param.grad is not None:
            grads[name] = param.grad.copy()
    return grads


def apply_gradients(module: Module, grads: Dict[str, np.ndarray]) -> None:
    """Load externally computed gradients into the matching parameters."""
    for name, param in module.named_parameters():
        if name in grads:
            grad = np.asarray(grads[name])
            if grad.shape != param.data.shape:
                raise ValueError(f"gradient shape mismatch for {name}")
            param.grad = grad.copy()


def flatten_parameters(module: Module, trainable_only: bool = False) -> np.ndarray:
    """Concatenate all parameter values into a single 1-D vector."""
    chunks = []
    for param in module.parameters():
        if trainable_only and not param.requires_grad:
            continue
        chunks.append(param.data.reshape(-1))
    if not chunks:
        return np.zeros(0)
    return np.concatenate(chunks)


def parameter_delta(before: Dict[str, np.ndarray], after: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Per-parameter difference ``after - before`` for the shared keys."""
    return {name: after[name] - before[name] for name in after if name in before}
