"""Gradient-descent optimisers (SGD, Adam, AdamW) for the reproduction.

Each optimiser owns a list of parameters and implements ``step()`` /
``zero_grad()`` mirroring the ``torch.optim`` interface.  Parameters whose
``requires_grad`` flag is ``False`` or whose gradient is ``None`` are skipped,
which is how the federated clients implement expert-only / frozen-expert
updates.

``step()`` is fused: every update runs through ``np.multiply``/``np.add``
with ``out=`` into per-parameter scratch buffers, so a step allocates no
per-step temporaries after the first call.  The arithmetic evaluation order
matches the original out-of-place formulas, so results are bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .nn import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self._scratch: Dict[int, np.ndarray] = {}

    def _buf(self, param: Parameter, slot: int = 0) -> np.ndarray:
        """Per-parameter scratch array reused across steps (no per-step allocs)."""
        key = id(param) * 4 + slot
        buf = self._scratch.get(key)
        if buf is None or buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            buf = np.empty_like(param.data)
            self._scratch[key] = buf
        return buf

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            scratch = self._buf(param)
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=scratch)
                np.add(scratch, grad, out=scratch)
                grad = scratch
            if self.momentum:
                buf = self._velocity.get(id(param))
                if buf is None:
                    buf = np.zeros_like(param.data)
                    self._velocity[id(param)] = buf
                np.multiply(buf, self.momentum, out=buf)
                np.add(buf, grad, out=buf)
                grad = buf
            np.multiply(grad, self.lr, out=scratch)
            param.data -= scratch


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1 - self.beta1 ** self._t
        bias2 = 1 - self.beta2 ** self._t
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            s1 = self._buf(param, 0)
            s2 = self._buf(param, 1)
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=s1)
                np.add(s1, grad, out=s1)
                grad = s1
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
                self._m[id(param)] = m
                self._v[id(param)] = v
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1 - self.beta1, out=s2)
            np.add(m, s2, out=m)
            # v = beta2 * v + (1 - beta2) * grad**2
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=s2)
            np.multiply(s2, 1 - self.beta2, out=s2)
            np.add(v, s2, out=v)
            # param -= lr * m_hat / (sqrt(v_hat) + eps)
            np.divide(m, bias1, out=s1)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.multiply(s1, self.lr, out=s1)
            np.divide(s1, s2, out=s1)
            param.data -= s1


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.requires_grad and param.grad is not None:
                    scratch = self._buf(param)
                    np.multiply(param.data, self.lr * self.weight_decay, out=scratch)
                    param.data -= scratch
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm of ``params`` to ``max_norm``.

    Returns the norm before clipping, which callers use as the gradient
    magnitude signal for expert utility.
    """
    params = [p for p in params if p.requires_grad and p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
